//! Offline vendored subset of `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property
//! tests use — `proptest!`, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, `Just`, ranges, tuples, `prop::collection::vec`,
//! `prop::bool::ANY`, `prop::option::of` and `Strategy::prop_map` — on a
//! deterministic per-test RNG.
//!
//! Differences from the real crate, on purpose:
//!
//! * **No shrinking.** A failing case reports its inputs and panics; the
//!   deterministic seed (derived from the test name) makes reruns
//!   reproduce it exactly.
//! * **No persistence.** `.proptest-regressions` files are ignored.
//! * `prop_assert!` is plain `assert!` — failures panic immediately with
//!   the generated inputs printed by the harness in `proptest!`.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic xoshiro256++ generator seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from an arbitrary string (FNV-1a over the bytes, then
    /// SplitMix64 expansion), so each test gets a stable stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h)
    }

    /// Seed from a 64-bit value.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)` (Lemire debiased).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |rng| self.sample(rng)))
    }
}

/// Strategies borrowed through references (lets `&strategy` be reused).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Map adapter returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy (used by `prop_oneof!`).
#[derive(Clone)]
pub struct BoxedStrategy<V>(std::rc::Rc<dyn Fn(&mut TestRng) -> V>);

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Uniform choice among boxed alternatives (used by `prop_oneof!`).
pub struct Union<V> {
    alternatives: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over the given alternatives.
    pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
        Union { alternatives }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let k = rng.below(self.alternatives.len() as u64) as usize;
        self.alternatives[k].sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * ((rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64)
    }
}

macro_rules! int_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )+};
}

int_strategy!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

// ---------------------------------------------------------------------------
// Modules mirrored from the real crate's layout
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Debug, Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`].
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty length range");
            lo + rng.below((hi - lo) as u64 + 1) as usize
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element` and a length
    /// drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy for any boolean.
    pub const ANY: Any = Any;
}

pub mod option {
    use super::{Debug, Strategy, TestRng};

    /// `Option<T>` strategy: 80 % `Some`, mirroring the real crate's
    /// Some-heavy default weighting.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(5) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Config + macros
// ---------------------------------------------------------------------------

/// Runner configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Default config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declare property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random draws; on panic the failing
/// inputs are printed and the panic is re-raised.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( config = ($config:expr); ) => {};
    ( config = ($config:expr);
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        #[test]
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(
                ::std::module_path!(), "::", ::std::stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let inputs = ::std::vec![
                    $(::std::format!(
                        "  {} = {:?}", ::std::stringify!($arg), $arg
                    )),+
                ];
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| { $body })
                );
                if let ::std::result::Result::Err(panic) = outcome {
                    ::std::eprintln!(
                        "proptest case {}/{} of `{}` failed with inputs:\n{}",
                        case + 1, config.cases, ::std::stringify!($name),
                        inputs.join("\n")
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        fn ranges_in_bounds(x in 0.0..10.0, n in 1usize..5, flag in prop::bool::ANY) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..5).contains(&n));
            let _: bool = flag;
        }

        fn vec_lengths(v in prop::collection::vec(0u64..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        fn oneof_and_map(x in prop_oneof![Just(1u64), (10u64..20).prop_map(|v| v * 2)]) {
            prop_assert!(x == 1 || (20..40).contains(&x));
        }

        fn options_cover_both(o in prop::option::of(1.0f64..2.0)) {
            if let Some(v) = o {
                prop_assert!((1.0..2.0).contains(&v));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        fn config_is_honoured(_x in 0u32..10) {
            // Runs exactly 7 cases; nothing to assert beyond not panicking.
        }
    }
}
