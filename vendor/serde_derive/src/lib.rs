//! Offline vendored `serde_derive`, hand-rolled on the bare `proc_macro`
//! API (the offline crate set has neither `syn` nor `quote`).
//!
//! Supports exactly the item shapes and `#[serde(...)]` attributes this
//! workspace uses:
//!
//! * named-field structs (field attrs: `default`, `default = "path"`,
//!   `skip_serializing_if = "path"`),
//! * `#[serde(transparent)]` single-field tuple structs (newtypes),
//! * plain tuple structs (serialized as JSON arrays),
//! * unit-variant enums (externally tagged, serialized as strings),
//! * internally tagged enums: `#[serde(tag = "kind", rename_all =
//!   "snake_case")]` with unit or named-field variants.
//!
//! Anything outside that set fails the build with a clear message rather
//! than silently producing wrong serialization.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct ContainerAttrs {
    tag: Option<String>,
    rename_all: Option<String>,
    transparent: bool,
}

#[derive(Debug, Default)]
struct FieldAttrs {
    /// `None`: required. `Some(None)`: `#[serde(default)]`.
    /// `Some(Some(path))`: `#[serde(default = "path")]`.
    default: Option<Option<String>>,
    /// `#[serde(skip_serializing_if = "path")]`: omit the field from the
    /// serialized map when `path(&value)` is true.
    skip_serializing_if: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
struct Variant {
    name: String,
    /// `None` for unit variants, `Some(fields)` for named-field variants.
    fields: Option<Vec<Field>>,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        attrs: ContainerAttrs,
        kind: StructKind,
    },
    Enum {
        name: String,
        attrs: ContainerAttrs,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
enum StructKind {
    Named(Vec<Field>),
    Tuple(usize),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    let attrs = parse_attrs(&toks, &mut i);

    // Visibility: `pub`, `pub(crate)`, `pub(in ...)`.
    if matches!(&toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }

    let keyword = match &toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match &toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, got {other:?}"),
    };
    i += 1;

    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (vendored): generic types are not supported (item `{name}`)");
    }

    match keyword.as_str() {
        "struct" => match &toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                attrs,
                kind: StructKind::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
                name,
                attrs,
                kind: StructKind::Tuple(count_tuple_fields(g.stream())),
            },
            other => panic!("serde derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match &toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                attrs,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde derive: expected enum body for `{name}`, got {other:?}"),
        },
        kw => panic!("serde derive: unsupported item kind `{kw}`"),
    }
}

/// Consume leading `#[...]` attributes, folding `#[serde(...)]` contents
/// into the result and skipping everything else (docs, `#[default]`, ...).
fn parse_attrs(toks: &[TokenTree], i: &mut usize) -> ContainerAttrs {
    let mut attrs = ContainerAttrs::default();
    while matches!(&toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        let TokenTree::Group(g) = &toks[*i] else {
            panic!("serde derive: malformed attribute");
        };
        apply_serde_attr(g.stream(), &mut attrs, &mut FieldAttrs::default());
        *i += 1;
    }
    attrs
}

/// Like [`parse_attrs`] but for a field position, where only the field
/// attrs (`default`, `skip_serializing_if`) matter.
fn parse_field_attrs(toks: &[TokenTree], i: &mut usize) -> FieldAttrs {
    let mut field_attrs = FieldAttrs::default();
    while matches!(&toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        let TokenTree::Group(g) = &toks[*i] else {
            panic!("serde derive: malformed attribute");
        };
        apply_serde_attr(g.stream(), &mut ContainerAttrs::default(), &mut field_attrs);
        *i += 1;
    }
    field_attrs
}

/// If `attr_body` (the tokens inside `#[...]`) is a serde attribute, apply
/// its directives to `attrs` / `field_attrs`.
fn apply_serde_attr(
    attr_body: TokenStream,
    attrs: &mut ContainerAttrs,
    field_attrs: &mut FieldAttrs,
) {
    let toks: Vec<TokenTree> = attr_body.into_iter().collect();
    let is_serde = matches!(&toks.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
    if !is_serde {
        return;
    }
    let Some(TokenTree::Group(inner)) = &toks.get(1) else {
        panic!("serde derive: malformed #[serde] attribute");
    };
    let items: Vec<TokenTree> = inner.stream().into_iter().collect();
    let mut j = 0;
    while j < items.len() {
        let key = match &items[j] {
            TokenTree::Ident(id) => id.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => {
                j += 1;
                continue;
            }
            other => panic!("serde derive: unexpected token in #[serde(...)]: {other:?}"),
        };
        j += 1;
        let value = if matches!(&items.get(j), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            j += 1;
            let lit = match &items[j] {
                TokenTree::Literal(l) => unquote(&l.to_string()),
                other => panic!("serde derive: expected string after `{key} =`, got {other:?}"),
            };
            j += 1;
            Some(lit)
        } else {
            None
        };
        match (key.as_str(), value) {
            ("tag", Some(t)) => attrs.tag = Some(t),
            ("rename_all", Some(r)) => {
                assert!(
                    r == "snake_case",
                    "serde derive (vendored): only rename_all = \"snake_case\" is supported"
                );
                attrs.rename_all = Some(r);
            }
            ("transparent", None) => attrs.transparent = true,
            ("default", v) => field_attrs.default = Some(v),
            ("skip_serializing_if", Some(path)) => {
                field_attrs.skip_serializing_if = Some(path);
            }
            (k, v) => panic!("serde derive (vendored): unsupported serde attribute `{k}` = {v:?}"),
        }
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let attrs = parse_field_attrs(&toks, &mut i);
        if matches!(&toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match &toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive: expected field name, got {other:?}"),
        };
        i += 1;
        assert!(
            matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde derive: expected `:` after field `{name}`"
        );
        i += 1;
        // Skip the type: consume until a top-level comma. Generic angle
        // brackets contain no top-level commas at this token depth only if
        // we track `<`/`>` nesting.
        let mut angle = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(Field { name, attrs });
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => {}
        }
    }
    // Tolerate a trailing comma.
    if matches!(toks.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') && angle == 0 {
        count -= 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let _ = parse_field_attrs(&toks, &mut i); // skip #[default], docs, ...
        let name = match &toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let fields = match &toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!(
                    "serde derive (vendored): tuple enum variant `{name}` is not supported; \
                     use a named-field variant"
                )
            }
            _ => None,
        };
        // Skip a discriminant if ever present, then the separating comma.
        while i < toks.len() && !matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, fields });
    }
    variants
}

/// serde's RenameRule::SnakeCase.
fn snake_case(variant: &str) -> String {
    let mut out = String::with_capacity(variant.len() + 4);
    for (k, ch) in variant.chars().enumerate() {
        if ch.is_uppercase() && k > 0 {
            out.push('_');
        }
        out.extend(ch.to_lowercase());
    }
    out
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn field_missing_arm(owner: &str, f: &Field) -> String {
    match &f.attrs.default {
        None => format!(
            "return ::std::result::Result::Err(::serde::Error::custom(\
             \"{owner}: missing field `{}`\"))",
            f.name
        ),
        Some(None) => "::std::default::Default::default()".to_string(),
        Some(Some(path)) => format!("{path}()"),
    }
}

/// `__entries.push((name, value))` statement for one named field, honouring
/// `skip_serializing_if`. `value_expr` must evaluate to a reference.
fn field_push_stmt(f: &Field, value_expr: &str) -> String {
    let push = format!(
        "__entries.push((\"{n}\".to_string(), ::serde::Serialize::to_value({value_expr})));\n",
        n = f.name
    );
    match &f.attrs.skip_serializing_if {
        None => push,
        Some(path) => format!("if !{path}({value_expr}) {{ {push} }}\n"),
    }
}

/// `field: match __find(...) {{ ... }},` initializer for one named field.
fn field_init(owner: &str, f: &Field) -> String {
    format!(
        "{name}: match ::serde::__find(entries, \"{name}\") {{\n\
             ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
             ::std::option::Option::None => {missing},\n\
         }},\n",
        name = f.name,
        missing = field_missing_arm(owner, f)
    )
}

fn variant_wire_name(attrs: &ContainerAttrs, variant: &str) -> String {
    if attrs.rename_all.is_some() {
        snake_case(variant)
    } else {
        variant.to_string()
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, attrs, kind } => {
            let body = match kind {
                StructKind::Named(fields) => {
                    assert!(
                        !attrs.transparent,
                        "serde derive (vendored): transparent named structs unsupported"
                    );
                    let pushes: String = fields
                        .iter()
                        .map(|f| field_push_stmt(f, &format!("&self.{}", f.name)))
                        .collect();
                    format!(
                        "{{ let mut __entries: ::std::vec::Vec<(::std::string::String, \
                         ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Map(__entries) }}"
                    )
                }
                StructKind::Tuple(1) if attrs.transparent => {
                    "::serde::Serialize::to_value(&self.0)".to_string()
                }
                StructKind::Tuple(n) => {
                    let entries: String = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k}),"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{entries}])")
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum {
            name,
            attrs,
            variants,
        } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let wire = variant_wire_name(attrs, &v.name);
                    match (&attrs.tag, &v.fields) {
                        (None, None) => format!(
                            "{name}::{v} => ::serde::Value::Str(\"{wire}\".to_string()),\n",
                            v = v.name
                        ),
                        (None, Some(_)) => panic!(
                            "serde derive (vendored): externally tagged data variants \
                             unsupported (enum `{name}`); add #[serde(tag = ...)]"
                        ),
                        (Some(tag), None) => format!(
                            "{name}::{v} => ::serde::Value::Map(vec![\
                             (\"{tag}\".to_string(), ::serde::Value::Str(\"{wire}\".to_string()))]),\n",
                            v = v.name
                        ),
                        (Some(tag), Some(fields)) => {
                            let binds: String = fields
                                .iter()
                                .map(|f| format!("{},", f.name))
                                .collect();
                            let pushes: String = fields
                                .iter()
                                .map(|f| field_push_stmt(f, &f.name.clone()))
                                .collect();
                            format!(
                                "{name}::{v} {{ {binds} }} => {{\n\
                                 let mut __entries: ::std::vec::Vec<(::std::string::String, \
                                 ::serde::Value)> = vec![\
                                 (\"{tag}\".to_string(), ::serde::Value::Str(\"{wire}\".to_string()))];\n\
                                 {pushes}\
                                 ::serde::Value::Map(__entries) }}\n",
                                v = v.name
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, attrs, kind } => {
            let body = match kind {
                StructKind::Named(fields) => {
                    let inits: String = fields.iter().map(|f| field_init(name, f)).collect();
                    format!(
                        "let entries = v.as_map().ok_or_else(|| \
                             ::serde::Error::custom(\"{name}: expected object\"))?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})"
                    )
                }
                StructKind::Tuple(1) if attrs.transparent => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                StructKind::Tuple(n) => {
                    let inits: String = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?,"))
                        .collect();
                    format!(
                        "match v {{\n\
                             ::serde::Value::Seq(items) if items.len() == {n} => \
                                 ::std::result::Result::Ok({name}({inits})),\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                                 \"{name}: expected {n}-element array\")),\n\
                         }}"
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum {
            name,
            attrs,
            variants,
        } => {
            let body = match &attrs.tag {
                None => {
                    let arms: String = variants
                        .iter()
                        .map(|v| {
                            assert!(
                                v.fields.is_none(),
                                "serde derive (vendored): externally tagged data variants \
                                 unsupported (enum `{name}`)"
                            );
                            let wire = variant_wire_name(attrs, &v.name);
                            format!(
                                "\"{wire}\" => ::std::result::Result::Ok({name}::{v}),\n",
                                v = v.name
                            )
                        })
                        .collect();
                    format!(
                        "match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => ::std::result::Result::Err(::serde::Error::custom(\
                                     format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                             }},\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                                 \"{name}: expected string\")),\n\
                         }}"
                    )
                }
                Some(tag) => {
                    let arms: String = variants
                        .iter()
                        .map(|v| {
                            let wire = variant_wire_name(attrs, &v.name);
                            match &v.fields {
                                None => format!(
                                    "\"{wire}\" => ::std::result::Result::Ok({name}::{v}),\n",
                                    v = v.name
                                ),
                                Some(fields) => {
                                    let inits: String =
                                        fields.iter().map(|f| field_init(name, f)).collect();
                                    format!(
                                        "\"{wire}\" => ::std::result::Result::Ok(\
                                         {name}::{v} {{ {inits} }}),\n",
                                        v = v.name
                                    )
                                }
                            }
                        })
                        .collect();
                    format!(
                        "let entries = v.as_map().ok_or_else(|| \
                             ::serde::Error::custom(\"{name}: expected object\"))?;\n\
                         let kind = match ::serde::__find(entries, \"{tag}\") {{\n\
                             ::std::option::Option::Some(::serde::Value::Str(s)) => s.as_str(),\n\
                             _ => return ::std::result::Result::Err(::serde::Error::custom(\
                                 \"{name}: missing `{tag}` tag\")),\n\
                         }};\n\
                         match kind {{\n\
                             {arms}\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                         }}"
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde derive: generated invalid Deserialize impl")
}
