//! Offline vendored subset of the `rand` crate.
//!
//! The workspace pins exact-reproducibility seeds through `StdRng`, so the
//! only contract that matters is *determinism for a given seed*, not
//! statistical pedigree. This stub implements the xoshiro256++ generator
//! seeded through SplitMix64 (the same construction rand's `SmallRng` family
//! uses) behind the handful of APIs the workspace calls:
//!
//! * `rand::rngs::StdRng`
//! * `rand::SeedableRng::seed_from_u64`
//! * `rand::RngExt::{random, random_range}` for `f64`, integer ranges and
//!   inclusive float ranges.
//!
//! Anything else from the real crate is intentionally absent; add surface
//! here only when a caller needs it.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic 256-bit xoshiro256++ generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        /// Snapshot the 256-bit generator state for checkpointing.
        #[inline]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`Self::state`] snapshot; the restored
        /// generator continues the exact same output stream.
        #[inline]
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }

        #[inline]
        pub(crate) fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

/// Seeding constructor subset.
pub trait SeedableRng: Sized {
    /// Expand a 64-bit seed into the full generator state (SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Types drawable uniformly from the generator's native output.
pub trait Standard: Sized {
    fn from_rng(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn from_rng(rng: &mut StdRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn from_rng(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn from_rng(rng: &mut StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn from_rng(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `random_range`.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * f64::from_rng(rng)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty inclusive f64 range");
        // Scale the half-open unit draw onto [lo, hi]; the endpoint bias of
        // one ULP is irrelevant for simulation noise.
        lo + (hi - lo) * ((rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64)
    }
}

macro_rules! int_range {
    ($($t:ty),+) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                // Debiased via 128-bit multiply-shift (Lemire).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive integer range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return u64::from_rng(rng) as $t;
                }
                let span = (hi - lo) as u64 + 1;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + draw as $t
            }
        }
    )+};
}

int_range!(usize, u64, u32, i64, i32);

/// The method surface the workspace calls on `StdRng` (rand 0.9+ names).
pub trait RngExt {
    fn random<T: Standard>(&mut self) -> T;
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output;
}

impl RngExt for StdRng {
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    #[inline]
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Alias kept so `use rand::Rng` also works if future code prefers it.
pub use RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_draws_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.random_range(3.0..5.0);
            assert!((3.0..5.0).contains(&x));
            let y = r.random_range(0.0..=2.5);
            assert!((0.0..=2.5).contains(&y));
            let n = r.random_range(0..7usize);
            assert!(n < 7);
            let m = r.random_range(2..=4u64);
            assert!((2..=4).contains(&m));
        }
    }

    #[test]
    fn state_roundtrip_continues_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..57 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = StdRng::seed_from_u64(1234);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}
