//! Offline vendored subset of the `bytes` crate.
//!
//! The gateway only needs cheaply-cloneable, sliceable byte buffers for
//! payload-fidelity tests and DPI inspection: construction from owned
//! buffers, `len`, deref to `[u8]`, and zero-copy `split_to`. This stub
//! backs `Bytes` with an `Arc<[u8]>` plus a window, which gives exactly
//! those semantics (clones and splits share one allocation).

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap a static slice (no copy; the allocation is the static data's).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        // Arc<[u8]> requires ownership, so this copies once; callers only
        // use this for small test fixtures.
        Self::from_vec(bytes.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }

    /// Bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    /// Both halves share the original allocation.
    ///
    /// # Panics
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// A sub-view of this buffer (zero copy).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self::from_vec(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from_vec(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from_vec(s.as_bytes().to_vec())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from_vec(s.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_shares_data() {
        let mut b = Bytes::from("hello world");
        let head = b.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&b[..], b" world");
        assert_eq!(head.len() + b.len(), 11);
    }

    #[test]
    fn take_leaves_empty() {
        let mut b = Bytes::from(vec![1u8, 2, 3]);
        let taken = std::mem::take(&mut b);
        assert_eq!(taken.len(), 3);
        assert!(b.is_empty());
    }

    #[test]
    fn slice_and_eq() {
        let b = Bytes::from_static(b"abcdef");
        assert_eq!(b.slice(2..4), Bytes::from("cd"));
        assert_eq!(format!("{:?}", Bytes::from("a\n")), "b\"a\\n\"");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn split_past_end_panics() {
        let mut b = Bytes::from("xy");
        let _ = b.split_to(3);
    }
}
