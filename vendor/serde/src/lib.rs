//! Offline vendored subset of `serde`.
//!
//! The workspace uses serde exclusively to round-trip scenario configs and
//! result records through JSON (`serde_json::{to_string, to_string_pretty,
//! from_str}`). Instead of the real crate's zero-copy visitor machinery,
//! this stub uses a concrete JSON-shaped [`Value`] tree as the data model:
//!
//! * [`Serialize`] renders a type into a [`Value`].
//! * [`Deserialize`] rebuilds a type from a borrowed [`Value`].
//!
//! The companion `serde_derive` proc-macro crate generates both impls for
//! the item shapes this workspace actually uses (named structs, transparent
//! newtype tuple structs, internally tagged enums, plain unit enums) and the
//! attribute subset `tag`/`rename_all = "snake_case"`/`default`/
//! `transparent`. Everything here is deterministic: maps preserve insertion
//! order, so serialize → parse → serialize is a fixed point.

pub use serde_derive::{Deserialize, Serialize};

/// The JSON-shaped data model every type serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers (the common case for counts/ids).
    U64(u64),
    /// Negative integers.
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Look up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Error raised while rebuilding a type from a [`Value`].
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// An error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` into the JSON-shaped data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from the JSON-shaped data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Find `key` in map entries (helper the derive expansion calls).
pub fn __find<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error::custom(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )+};
}

macro_rules! ser_int {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match v {
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range")))?,
                    Value::I64(n) => *n,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )+};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident . $idx:tt),+))+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arity = [$(stringify!($idx)),+].len();
                match v {
                    Value::Seq(items) if items.len() == arity => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected {arity}-tuple, got {other:?}"
                    ))),
                }
            }
        }
    )+};
}

tuple_impls! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
