//! Offline vendored subset of `criterion`.
//!
//! Keeps the bench sources' API shape (`benchmark_group`,
//! `bench_with_input`, `BenchmarkId`, `criterion_group!`/`criterion_main!`)
//! but replaces the statistical machinery with a plain
//! warmup-then-measure loop: each benchmark is auto-calibrated to roughly
//! `measurement_time`, and the mean time per iteration is printed as
//!
//! ```text
//! group/function/param    time: 12.345 µs/iter (n = 8192)
//! ```
//!
//! A substring filter can be passed on the command line the way cargo
//! forwards it (`cargo bench -- ema`), which is the only CLI option
//! honoured.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            default_sample_size: 50,
            measurement: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Read the substring filter from `std::env::args` (the non-flag
    /// argument cargo forwards after `--`).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let sample_size = self.default_sample_size;
        self.run_one(id.to_string(), sample_size, &mut f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, label: String, sample_size: usize, f: &mut F) {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            measurement: self.measurement,
            min_samples: sample_size,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some((total, iters)) => {
                let per_iter = total.as_secs_f64() / iters as f64;
                println!(
                    "{label:<50} time: {} /iter (n = {iters})",
                    format_seconds(per_iter)
                );
            }
            None => println!("{label:<50} (no measurement: b.iter was never called)"),
        }
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Lower bound on measured iterations (kept for API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmark `f` with an input value, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion
            .run_one(label, sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmark `f`, labelled by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        let label = format!("{}/{}", self.name, id.label);
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(label, sample_size, &mut f);
        self
    }

    /// End the group (printing happens per-benchmark; this is a no-op kept
    /// for API compatibility).
    pub fn finish(&mut self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` labelling.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only labelling.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher {
    measurement: Duration,
    min_samples: usize,
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time `routine`, auto-scaling the iteration count: first a short
    /// calibration pass, then enough iterations to fill the measurement
    /// window (at least `min_samples`).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: one timed call.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));

        let fit = (self.measurement.as_secs_f64() / once.as_secs_f64()).ceil() as u64;
        let iters = fit.clamp(self.min_samples as u64, 10_000_000);

        let t1 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        let total = t1.elapsed();
        self.result = Some((total, iters));
    }
}

/// Re-export for benches that import `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures() {
        let mut c = Criterion {
            filter: None,
            default_sample_size: 10,
            measurement: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        group.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            ..Criterion::default()
        };
        // Must not run the closure at all.
        c.bench_function("other", |_b| panic!("filtered benchmark ran"));
    }

    #[test]
    fn labels_format() {
        let id = BenchmarkId::new("f", 42);
        assert_eq!(id.label, "f/42");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(format_seconds(2.0), "2.000 s");
        assert_eq!(format_seconds(0.0025), "2.500 ms");
        assert_eq!(format_seconds(2.5e-6), "2.500 µs");
        assert_eq!(format_seconds(3.0e-9), "3.0 ns");
    }
}
