//! Offline vendored `serde_json` subset: `to_string`, `to_string_pretty`
//! and `from_str` over the vendored serde [`Value`] data model.
//!
//! Floats print via Rust's shortest-round-trip `{:?}` formatting, so
//! serialize → parse → serialize is a fixed point and scenario files
//! survive exact round trips (asserted by the workspace's end-to-end
//! tests). Non-finite floats serialize as `null`, matching real
//! serde_json's behaviour.

use serde::{Deserialize, Serialize, Value};

/// JSON (de)serialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.0)
    }
}

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as human-readable two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_seq(out, items, indent, depth),
        Value::Map(entries) => write_map(out, entries, indent, depth),
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // Debug formatting is the shortest representation that round-trips,
        // and always keeps a `.0`/exponent so the value re-parses as F64.
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_seq(out: &mut String, items: &[Value], indent: Option<usize>, depth: usize) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_value(out, item, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push(']');
}

fn write_map(out: &mut String, entries: &[(String, Value)], indent: Option<usize>, depth: usize) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_string(out, k);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(out, v, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push('}');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(&mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::new(format!(
                "trailing characters at byte {}",
                self.pos
            )));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|n| Value::I64(-(n as i64)))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&3.5f64).unwrap(), "3.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<f64>("3.5").unwrap(), 3.5);
        assert_eq!(from_str::<f64>("7").unwrap(), 7.0);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.5f64, 2.0, -0.25];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&s).unwrap(), v);
        let opt: Option<Vec<f64>> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<Vec<f64>>>("null").unwrap(), None);
        let pair = (1.0f64, 2.5f64);
        assert_eq!(
            from_str::<(f64, f64)>(&to_string(&pair).unwrap()).unwrap(),
            pair
        );
    }

    #[test]
    fn pretty_parses_back() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::U64(1)),
            (
                "b".to_string(),
                Value::Seq(vec![Value::F64(0.5), Value::Null]),
            ),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_and_escapes() {
        let s = "héllo \"wörld\" \u{1F600}".to_string();
        let round: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(round, s);
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<f64>("[1,").is_err());
        assert!(from_str::<f64>("nope").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<bool>("1").is_err());
    }

    #[test]
    fn shortest_float_formatting_round_trips() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e-12, 6.02214076e23, -273.15] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "via {s}");
        }
    }
}
