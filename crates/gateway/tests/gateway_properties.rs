//! Property-based tests for the gateway components.

use jmso_gateway::collector::RawUserState;
use jmso_gateway::{
    Allocation, CollectorSpec, DataReceiver, DataTransmitter, InformationCollector, OriginModel,
    SlotContext, UnitParams, UserSnapshot,
};
use jmso_radio::rrc::RrcState;
use jmso_radio::{Dbm, KbPerSec, LinearRssiThroughput, ThroughputModel};
use proptest::prelude::*;

fn snapshot(id: usize, link_cap: u64, remaining_kb: f64) -> UserSnapshot {
    UserSnapshot {
        id,
        signal: Dbm(-80.0),
        rate_kbps: 450.0,
        buffer_s: 0.0,
        remaining_kb,
        active: true,
        link_cap_units: link_cap,
        idle_s: 0.0,
        rrc_state: RrcState::Dch,
    }
}

proptest! {
    /// Unit arithmetic: floor/ceil bracket the exact quotient and scale
    /// exactly with δ.
    #[test]
    fn unit_arithmetic(kb in 0.0f64..1e7, delta in 1.0f64..500.0) {
        let u = UnitParams::new(delta);
        let fl = u.units_floor(kb);
        let ce = u.units_ceil(kb);
        prop_assert!(u.kb(fl) <= kb + 1e-6);
        prop_assert!(u.kb(ce) + 1e-6 >= kb);
        prop_assert!(ce - fl <= 1);
    }

    /// Eq. (1)/(2) caps are monotone in throughput/τ and consistent with
    /// each other.
    #[test]
    fn caps_monotone(v in 0.0f64..10_000.0, tau in 0.1f64..4.0, delta in 1.0f64..200.0) {
        let u = UnitParams::new(delta);
        let cap = u.link_cap_units(KbPerSec(v), tau);
        let cap_more = u.link_cap_units(KbPerSec(v + 100.0), tau);
        prop_assert!(cap_more >= cap);
        prop_assert!(u.kb(cap) <= v * tau + 1e-6);
    }

    /// The transmitter never over-delivers: per-user ≤ link cap KB + δ
    /// (partial last frame), aggregate ≤ BS cap, and never more than the
    /// receiver had.
    #[test]
    fn transmitter_respects_all_bounds(
        caps in proptest::collection::vec(0u64..50, 1..10),
        requests in proptest::collection::vec(0u64..50, 1..10),
        bs_cap in 0u64..200,
        backlog_kbps in 1.0f64..5_000.0,
    ) {
        let n = caps.len().min(requests.len());
        let users: Vec<UserSnapshot> =
            (0..n).map(|i| snapshot(i, caps[i], 1e9)).collect();
        let alloc = Allocation(
            (0..n)
                // Clamp requests into validity; the transmitter re-checks.
                .map(|i| requests[i].min(caps[i]))
                .scan(bs_cap, |budget, want| {
                    let grant = want.min(*budget);
                    *budget -= grant;
                    Some(grant)
                })
                .collect(),
        );
        let ctx = SlotContext {
            slot: 0,
            tau: 1.0,
            delta_kb: 50.0,
            bs_cap_units: bs_cap,
            users: &users, soa: None,
        };
        let mut rx = DataReceiver::new(n, OriginModel::RateLimited { kbps: backlog_kbps }, 1.0);
        rx.ingest_slot(0);
        let mut tx = DataTransmitter::new();
        let deliveries = tx.transmit(&ctx, &alloc, &mut rx);
        let mut total_units = 0;
        for (d, u) in deliveries.iter().zip(&users) {
            prop_assert!(d.kb <= (u.link_cap_units as f64) * 50.0 + 1e-6);
            prop_assert!(d.kb <= backlog_kbps + 1e-6, "cannot exceed backlog");
            total_units += d.units;
        }
        let _ = total_units;
        let total_kb: f64 = deliveries.iter().map(|d| d.kb).sum();
        prop_assert!(total_kb <= bs_cap as f64 * 50.0 + 1e-6);
    }

    /// Collector: snapshots preserve ids, rates and buffers exactly; the
    /// reported link cap always equals the Eq. (1) cap of the *reported*
    /// signal.
    #[test]
    fn collector_consistency(
        sigs in proptest::collection::vec(-110.0f64..-50.0, 1..20),
        staleness in 0u64..6,
        noise in 0.0f64..6.0,
        seed in 0u64..100,
    ) {
        let n = sigs.len();
        let spec = CollectorSpec { staleness_slots: staleness, signal_noise_std_db: noise };
        let units = UnitParams::new(50.0);
        let thru = LinearRssiThroughput::paper();
        let mut c = InformationCollector::new(spec, thru, units, 1.0, n, seed);
        for slot in 0..8 {
            let raw: Vec<RawUserState> = sigs
                .iter()
                .map(|&s| RawUserState {
                    signal: Dbm(s),
                    rate_kbps: 450.0,
                    buffer_s: 2.0,
                    remaining_kb: 100.0,
                    active: true,
                    idle_s: 0.5,
                    rrc_state: RrcState::Dch,
                })
                .collect();
            let snaps = c.snapshot(slot, &raw);
            for (i, s) in snaps.iter().enumerate() {
                prop_assert_eq!(s.id, i);
                prop_assert_eq!(s.rate_kbps, 450.0);
                prop_assert_eq!(s.buffer_s, 2.0);
                let expect_cap = units.link_cap_units(thru.throughput(s.signal), 1.0);
                prop_assert_eq!(s.link_cap_units, expect_cap);
            }
        }
    }

    /// Receiver conservation: dequeued KB never exceed ingested KB, and
    /// backlog equals ingested − dequeued.
    #[test]
    fn receiver_conserves_bytes(
        rate in 1.0f64..1_000.0,
        takes in proptest::collection::vec(0.0f64..500.0, 1..30),
    ) {
        let mut rx = DataReceiver::new(1, OriginModel::RateLimited { kbps: rate }, 1.0);
        let mut ingested = 0.0;
        let mut dequeued = 0.0;
        for (slot, take) in takes.iter().enumerate() {
            rx.ingest_slot(slot as u64);
            ingested += rate;
            let (got, _) = rx.dequeue_kb(0, *take);
            prop_assert!(got <= *take + 1e-9);
            dequeued += got;
            prop_assert!((rx.backlog_kb(0) - (ingested - dequeued)).abs() < 1e-6);
        }
    }
}
