//! DPI middlebox — extracting video metadata from client requests.
//!
//! The paper's Information Collector obtains each flow's required data
//! rate from "DPI middleboxes that are part of existing cellular networks"
//! (§III-A, citing Sandvine). This module implements that middlebox for
//! the HTTP streaming protocols the paper names: it parses client request
//! bytes off the wire, classifies the flow (video vs background), and
//! extracts the declared bitrate and requested byte range.
//!
//! The wire format is the de-facto segment-request shape of HTTP video
//! players: a `GET` for a media path (`.mp4`, `.ts`, `.m4s`, …) carrying
//! the manifest-declared bitrate in an `X-Video-Bitrate-KBps` header and
//! resume offsets in a standard `Range` header. [`format_segment_request`]
//! produces exactly that shape so clients and tests can synthesize
//! traffic; [`DpiClassifier::inspect`] is byte-level and tolerant of
//! header reordering, case and stray whitespace, since middleboxes cannot
//! assume tidy clients.

use crate::receiver::FlowClass;
use bytes::Bytes;

/// What DPI learned about one request.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowInfo {
    /// Video or background traffic.
    pub class: FlowClass,
    /// Declared media bitrate, KB/s (video flows only).
    pub bitrate_kbps: Option<f64>,
    /// Requested resume offset in KB, from the `Range` header.
    pub range_start_kb: Option<f64>,
    /// The request path.
    pub path: String,
}

/// Why a request could not be inspected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DpiError {
    /// Not valid UTF-8 / not HTTP-shaped.
    Malformed(&'static str),
    /// HTTP, but an unsupported method for media delivery.
    UnsupportedMethod(String),
}

impl std::fmt::Display for DpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DpiError::Malformed(why) => write!(f, "malformed request: {why}"),
            DpiError::UnsupportedMethod(m) => write!(f, "unsupported method {m}"),
        }
    }
}

/// File extensions classified as video segments.
const VIDEO_EXTENSIONS: &[&str] = &[".mp4", ".m4s", ".ts", ".webm", ".m3u8", ".mpd"];

/// Build the canonical segment request a streaming client would send.
pub fn format_segment_request(
    video_id: &str,
    segment: u64,
    bitrate_kbps: f64,
    range_start_kb: Option<f64>,
) -> Bytes {
    let mut req = format!(
        "GET /videos/{video_id}/seg{segment}.m4s HTTP/1.1\r\n\
         Host: cdn.example.net\r\n\
         X-Video-Bitrate-KBps: {bitrate_kbps}\r\n\
         User-Agent: jmso-player/1.0\r\n"
    );
    if let Some(kb) = range_start_kb {
        let bytes = (kb * 1024.0) as u64;
        req.push_str(&format!("Range: bytes={bytes}-\r\n"));
    }
    req.push_str("\r\n");
    Bytes::from(req)
}

/// The DPI middlebox.
#[derive(Debug, Clone, Default)]
pub struct DpiClassifier {
    inspected: u64,
    video_flows: u64,
}

impl DpiClassifier {
    /// A fresh classifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests inspected so far.
    pub fn inspected(&self) -> u64 {
        self.inspected
    }

    /// Requests classified as video so far.
    pub fn video_flows(&self) -> u64 {
        self.video_flows
    }

    /// Inspect one request and classify the flow.
    pub fn inspect(&mut self, wire: &Bytes) -> Result<FlowInfo, DpiError> {
        self.inspected += 1;
        let text = std::str::from_utf8(wire).map_err(|_| DpiError::Malformed("not UTF-8"))?;
        let mut lines = text.split("\r\n");
        let request_line = lines.next().ok_or(DpiError::Malformed("empty request"))?;
        let mut parts = request_line.split_whitespace();
        let method = parts.next().ok_or(DpiError::Malformed("missing method"))?;
        let path = parts
            .next()
            .ok_or(DpiError::Malformed("missing path"))?
            .to_string();
        let version = parts.next().ok_or(DpiError::Malformed("missing version"))?;
        if !version.starts_with("HTTP/") {
            return Err(DpiError::Malformed("bad HTTP version"));
        }
        if !method.eq_ignore_ascii_case("GET") {
            return Err(DpiError::UnsupportedMethod(method.to_string()));
        }

        let mut bitrate_kbps = None;
        let mut range_start_kb = None;
        for line in lines {
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                continue; // middleboxes skip junk they don't understand
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            match name.as_str() {
                "x-video-bitrate-kbps" => {
                    bitrate_kbps = value.parse::<f64>().ok().filter(|b| *b > 0.0);
                }
                "range" => {
                    // "bytes=START-" or "bytes=START-END"
                    range_start_kb = value
                        .strip_prefix("bytes=")
                        .and_then(|r| r.split('-').next())
                        .and_then(|s| s.trim().parse::<u64>().ok())
                        .map(|b| b as f64 / 1024.0);
                }
                _ => {}
            }
        }

        let lower = path.to_ascii_lowercase();
        let looks_like_video =
            VIDEO_EXTENSIONS.iter().any(|ext| lower.ends_with(ext)) || bitrate_kbps.is_some();
        let class = if looks_like_video {
            self.video_flows += 1;
            FlowClass::Video
        } else {
            FlowClass::Background
        };
        Ok(FlowInfo {
            class,
            bitrate_kbps: if class == FlowClass::Video {
                bitrate_kbps
            } else {
                None
            },
            range_start_kb,
            path,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_segment_request() {
        let mut dpi = DpiClassifier::new();
        let wire = format_segment_request("v123", 7, 450.0, Some(2048.0));
        let info = dpi.inspect(&wire).unwrap();
        assert_eq!(info.class, FlowClass::Video);
        assert_eq!(info.bitrate_kbps, Some(450.0));
        assert_eq!(info.range_start_kb, Some(2048.0));
        assert_eq!(info.path, "/videos/v123/seg7.m4s");
        assert_eq!(dpi.inspected(), 1);
        assert_eq!(dpi.video_flows(), 1);
    }

    #[test]
    fn background_traffic_classified() {
        let mut dpi = DpiClassifier::new();
        let wire = Bytes::from(
            "GET /api/profile.json HTTP/1.1\r\nHost: app.example.net\r\n\r\n".to_string(),
        );
        let info = dpi.inspect(&wire).unwrap();
        assert_eq!(info.class, FlowClass::Background);
        assert_eq!(info.bitrate_kbps, None);
        assert_eq!(dpi.video_flows(), 0);
    }

    #[test]
    fn video_by_extension_without_bitrate_header() {
        let mut dpi = DpiClassifier::new();
        let wire = Bytes::from("GET /movies/clip.mp4 HTTP/1.1\r\n\r\n".to_string());
        let info = dpi.inspect(&wire).unwrap();
        assert_eq!(info.class, FlowClass::Video);
        assert_eq!(info.bitrate_kbps, None, "no declared rate to extract");
    }

    #[test]
    fn header_case_and_ordering_tolerated() {
        let mut dpi = DpiClassifier::new();
        let wire = Bytes::from(
            "GET /v/a.ts HTTP/1.1\r\n\
             RANGE: bytes=1024-\r\n\
             x-video-bitrate-kbps:  600 \r\n\
             Weird-Header without colon is skipped\r\n\r\n"
                .to_string(),
        );
        let info = dpi.inspect(&wire).unwrap();
        assert_eq!(info.bitrate_kbps, Some(600.0));
        assert_eq!(info.range_start_kb, Some(1.0));
    }

    #[test]
    fn malformed_requests_rejected() {
        let mut dpi = DpiClassifier::new();
        assert_eq!(
            dpi.inspect(&Bytes::from_static(b"\xff\xfe garbage")),
            Err(DpiError::Malformed("not UTF-8"))
        );
        assert!(matches!(
            dpi.inspect(&Bytes::from("POST /upload HTTP/1.1\r\n\r\n".to_string())),
            Err(DpiError::UnsupportedMethod(_))
        ));
        assert!(matches!(
            dpi.inspect(&Bytes::from("GET /x NOTHTTP\r\n\r\n".to_string())),
            Err(DpiError::Malformed(_))
        ));
        assert_eq!(dpi.inspected(), 3, "errors still count as inspections");
    }

    #[test]
    fn negative_or_zero_bitrate_ignored() {
        let mut dpi = DpiClassifier::new();
        let wire =
            Bytes::from("GET /v/a.m4s HTTP/1.1\r\nX-Video-Bitrate-KBps: -5\r\n\r\n".to_string());
        let info = dpi.inspect(&wire).unwrap();
        assert_eq!(info.bitrate_kbps, None);
        assert_eq!(info.class, FlowClass::Video, "extension still classifies");
    }

    #[test]
    fn error_display() {
        assert_eq!(DpiError::Malformed("x").to_string(), "malformed request: x");
        assert_eq!(
            DpiError::UnsupportedMethod("PUT".into()).to_string(),
            "unsupported method PUT"
        );
    }
}
