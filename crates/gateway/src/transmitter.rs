//! Data Transmitter — applies an allocation and moves bytes to users.
//!
//! The transmitter is the enforcement point for Eq. (1) and Eq. (2): a
//! scheduler's allocation is clamped to the per-user link bound, the BS
//! budget (first-come in user order), and the receiver backlog. Clamping
//! events are counted so tests can assert that well-formed policies never
//! trigger them.

use crate::receiver::DataReceiver;
use crate::scheduler::{Allocation, SlotContext};

/// Result of transmitting to one user in one slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// Units actually sent after clamping.
    pub units: u64,
    /// KB actually sent (`units · δ`, possibly reduced by backlog).
    pub kb: f64,
}

/// The transmitter component.
#[derive(Debug, Default)]
pub struct DataTransmitter {
    clamp_events: u64,
    /// Memoized `⌈δ·u / δ⌉` for the full-delivery fast path: `δ` is fixed
    /// for a whole run and the granted unit counts are small integers, so
    /// the per-user divide collapses to a table read on most slots. Each
    /// entry is computed with the exact expression the slow path uses, so
    /// the reported unit count is bit-identical.
    ceil_units: Vec<u64>,
    /// The `δ` the table was built for (rebuilt when it changes).
    ceil_delta_kb: f64,
}

impl DataTransmitter {
    /// A fresh transmitter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times an allocation had to be clamped to respect Eq. (1)/(2).
    pub fn clamp_events(&self) -> u64 {
        self.clamp_events
    }

    /// Overwrite the clamp counter (checkpoint restore).
    pub fn restore_clamp_events(&mut self, n: u64) {
        self.clamp_events = n;
    }

    /// Enforce constraints and move bytes out of the receiver queues,
    /// writing one [`Delivery`] per user into a caller-owned buffer (the
    /// engine's zero-allocation hot path).
    ///
    /// In debug builds an invalid allocation also trips a `debug_assert`,
    /// because schedulers are expected to respect the bounds themselves.
    pub fn transmit_into(
        &mut self,
        ctx: &SlotContext,
        alloc: &Allocation,
        receiver: &mut DataReceiver,
        out: &mut Vec<Delivery>,
    ) {
        debug_assert!(
            alloc.validate(ctx).is_ok(),
            "scheduler produced invalid allocation: {:?}",
            alloc.validate(ctx)
        );
        let mut budget = ctx.bs_cap_units;
        if ctx.delta_kb != self.ceil_delta_kb {
            self.ceil_units.clear();
            self.ceil_delta_kb = ctx.delta_kb;
        }
        out.clear();
        for (user, &want) in ctx.users.iter().zip(&alloc.0) {
            // Zero-grant fast path: neither clamp can fire (zero never
            // exceeds the link cap or the budget), a zero-KB dequeue
            // moves no bytes and pops no chunks, and ⌈0/δ⌉ = 0 — the
            // general path below is the identity, so skip its receiver
            // walk. Open-system cells spend most rows here: every
            // not-yet-arrived user is a zero grant.
            if want == 0 {
                out.push(Delivery { units: 0, kb: 0.0 });
                continue;
            }
            let mut units = want;
            if units > user.link_cap_units {
                units = user.link_cap_units;
                self.clamp_events += 1;
            }
            if units > budget {
                units = budget;
                self.clamp_events += 1;
            }
            budget -= units;
            let want_kb = ctx.delta_kb * units as f64;
            // The backlog may hold less than whole frames — most
            // importantly the short final frame of a stream. Physical
            // frames are padded, so the unit count (and hence the Eq. (2)
            // budget) stays at ⌈kb/δ⌉ while the payload is what was there.
            let (kb, _chunks) = receiver.dequeue_kb(user.id, want_kb);
            // Full deliveries (the common case) read the memo table; a
            // backlog shortfall or an oversized grant takes the divide.
            let out_units = if kb == want_kb && units < 4096 {
                let u = units as usize;
                if self.ceil_units.len() <= u {
                    let delta = ctx.delta_kb;
                    for x in self.ceil_units.len()..=u {
                        self.ceil_units
                            .push((delta * x as f64 / delta).ceil() as u64);
                    }
                }
                self.ceil_units[u]
            } else {
                (kb / ctx.delta_kb).ceil() as u64
            };
            out.push(Delivery {
                units: out_units,
                kb,
            });
        }
    }

    /// Enforce constraints and move bytes (allocating convenience wrapper
    /// over [`DataTransmitter::transmit_into`]).
    pub fn transmit(
        &mut self,
        ctx: &SlotContext,
        alloc: &Allocation,
        receiver: &mut DataReceiver,
    ) -> Vec<Delivery> {
        let mut out = Vec::with_capacity(ctx.users.len());
        self.transmit_into(ctx, alloc, receiver, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::OriginModel;
    use crate::scheduler::UserSnapshot;
    use jmso_radio::rrc::RrcState;
    use jmso_radio::Dbm;

    fn snap(id: usize, link_cap: u64) -> UserSnapshot {
        UserSnapshot {
            id,
            signal: Dbm(-80.0),
            rate_kbps: 450.0,
            buffer_s: 0.0,
            remaining_kb: 1e9,
            active: true,
            link_cap_units: link_cap,
            idle_s: 0.0,
            rrc_state: RrcState::Dch,
        }
    }

    fn ctx(users: &[UserSnapshot], bs_cap: u64) -> SlotContext<'_> {
        SlotContext {
            slot: 0,
            tau: 1.0,
            delta_kb: 50.0,
            bs_cap_units: bs_cap,
            users,
            soa: None,
        }
    }

    #[test]
    fn valid_allocation_delivers_fully() {
        let users = vec![snap(0, 10), snap(1, 10)];
        let mut rx = DataReceiver::new(2, OriginModel::Infinite, 1.0);
        rx.ingest_slot(0);
        let mut tx = DataTransmitter::new();
        let d = tx.transmit(&ctx(&users, 100), &Allocation(vec![4, 6]), &mut rx);
        assert_eq!(
            d[0],
            Delivery {
                units: 4,
                kb: 200.0
            }
        );
        assert_eq!(
            d[1],
            Delivery {
                units: 6,
                kb: 300.0
            }
        );
        assert_eq!(tx.clamp_events(), 0);
    }

    #[test]
    fn backlog_shortfall_delivers_partial_final_frame() {
        let users = vec![snap(0, 10)];
        // Only 120 KB at the gateway: 2 whole 50 KB frames + a short one.
        let mut rx = DataReceiver::new(1, OriginModel::RateLimited { kbps: 120.0 }, 1.0);
        rx.ingest_slot(0);
        let mut tx = DataTransmitter::new();
        let d = tx.transmit(&ctx(&users, 100), &Allocation(vec![5]), &mut rx);
        assert_eq!(d[0].kb, 120.0, "tail of the stream must not be stranded");
        assert_eq!(d[0].units, 3, "short final frame still occupies a frame");
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn release_mode_clamps_link_violations() {
        let users = vec![snap(0, 3)];
        let mut rx = DataReceiver::new(1, OriginModel::Infinite, 1.0);
        rx.ingest_slot(0);
        let mut tx = DataTransmitter::new();
        let d = tx.transmit(&ctx(&users, 100), &Allocation(vec![9]), &mut rx);
        assert_eq!(d[0].units, 3);
        assert_eq!(tx.clamp_events(), 1);
    }

    #[test]
    fn bs_budget_is_first_come_in_user_order() {
        let users = vec![snap(0, 10), snap(1, 10)];
        let mut rx = DataReceiver::new(2, OriginModel::Infinite, 1.0);
        rx.ingest_slot(0);
        let mut tx = DataTransmitter::new();
        // Total fits Eq. (2) here (validate passes), later users see the
        // remaining budget.
        let d = tx.transmit(&ctx(&users, 12), &Allocation(vec![8, 4]), &mut rx);
        assert_eq!(d[0].units + d[1].units, 12);
    }
}
