//! Base-station serving capacity `S(n)` (Eq. (2)).
//!
//! The paper fixes `S = 20 MB/s` for all slots; we also provide a recorded
//! trace and a diurnal (sinusoidal load) model so the sensitivity of the
//! schedulers to BS load variation can be studied.

use jmso_radio::KbPerSec;
use serde::{Deserialize, Serialize};

/// Serving capacity of the base station per slot.
pub trait CapacityModel: Send {
    /// Maximum aggregate throughput the BS can serve in slot `slot`.
    fn capacity(&mut self, slot: u64) -> KbPerSec;
}

/// Fixed capacity (the paper's 20 MB/s default).
#[derive(Debug, Clone, Copy)]
pub struct ConstantCapacity(pub KbPerSec);

impl CapacityModel for ConstantCapacity {
    fn capacity(&mut self, _slot: u64) -> KbPerSec {
        self.0
    }
}

/// Replay of a recorded capacity trace (cycling).
#[derive(Debug, Clone)]
pub struct TraceCapacity {
    values: Vec<f64>,
}

impl TraceCapacity {
    /// Wrap a non-empty trace of KB/s values.
    pub fn new(values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "capacity trace must not be empty");
        assert!(
            values.iter().all(|v| *v >= 0.0),
            "capacity must be non-negative"
        );
        Self { values }
    }
}

impl CapacityModel for TraceCapacity {
    fn capacity(&mut self, slot: u64) -> KbPerSec {
        KbPerSec(self.values[(slot % self.values.len() as u64) as usize])
    }
}

/// Sinusoidal load: capacity oscillates around a mean with the given
/// relative amplitude and period, modelling diurnal cell load.
#[derive(Debug, Clone, Copy)]
pub struct DiurnalCapacity {
    /// Mean capacity, KB/s.
    pub mean_kbps: f64,
    /// Relative amplitude in `[0, 1]`.
    pub rel_amplitude: f64,
    /// Period in slots.
    pub period_slots: f64,
}

impl CapacityModel for DiurnalCapacity {
    fn capacity(&mut self, slot: u64) -> KbPerSec {
        let angle = std::f64::consts::TAU * slot as f64 / self.period_slots;
        KbPerSec((self.mean_kbps * (1.0 + self.rel_amplitude * angle.sin())).max(0.0))
    }
}

/// Serializable capacity description used by scenario configs.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum CapacitySpec {
    /// Fixed capacity in KB/s.
    Constant {
        /// The capacity.
        kbps: f64,
    },
    /// Recorded trace in KB/s, cycled.
    Trace {
        /// Per-slot values.
        values_kbps: Vec<f64>,
    },
    /// Sinusoidal diurnal load.
    Diurnal {
        /// Mean capacity in KB/s.
        mean_kbps: f64,
        /// Relative amplitude in [0, 1].
        rel_amplitude: f64,
        /// Period in slots.
        period_slots: f64,
    },
    /// Periodic outage (failure injection): nominal capacity except for
    /// `outage_slots` of zero capacity at the start of every
    /// `period_slots`-slot cycle.
    Outage {
        /// Nominal capacity in KB/s.
        kbps: f64,
        /// Slots per cycle.
        period_slots: u64,
        /// Dead slots at the start of each cycle.
        outage_slots: u64,
    },
}

impl CapacitySpec {
    /// The paper's default: constant 20 MB/s.
    pub fn paper_default() -> Self {
        CapacitySpec::Constant { kbps: 20_000.0 }
    }

    /// Instantiate the model.
    pub fn build(&self) -> Box<dyn CapacityModel> {
        match self {
            CapacitySpec::Constant { kbps } => Box::new(ConstantCapacity(KbPerSec(*kbps))),
            CapacitySpec::Trace { values_kbps } => {
                Box::new(TraceCapacity::new(values_kbps.clone()))
            }
            CapacitySpec::Diurnal {
                mean_kbps,
                rel_amplitude,
                period_slots,
            } => Box::new(DiurnalCapacity {
                mean_kbps: *mean_kbps,
                rel_amplitude: *rel_amplitude,
                period_slots: *period_slots,
            }),
            CapacitySpec::Outage {
                kbps,
                period_slots,
                outage_slots,
            } => Box::new(OutageCapacity {
                kbps: *kbps,
                period_slots: *period_slots,
                outage_slots: *outage_slots,
            }),
        }
    }
}

/// Periodic-outage capacity for failure-injection tests: the BS serves
/// nothing during the first `outage_slots` of every `period_slots` cycle.
#[derive(Debug, Clone, Copy)]
pub struct OutageCapacity {
    /// Nominal capacity in KB/s.
    pub kbps: f64,
    /// Slots per cycle.
    pub period_slots: u64,
    /// Dead slots at the start of each cycle.
    pub outage_slots: u64,
}

impl CapacityModel for OutageCapacity {
    fn capacity(&mut self, slot: u64) -> KbPerSec {
        if self.period_slots > 0 && slot % self.period_slots < self.outage_slots {
            KbPerSec(0.0)
        } else {
            KbPerSec(self.kbps)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_capacity() {
        let mut c = ConstantCapacity(KbPerSec(20_000.0));
        assert_eq!(c.capacity(0).value(), 20_000.0);
        assert_eq!(c.capacity(9999).value(), 20_000.0);
    }

    #[test]
    fn trace_cycles() {
        let mut c = TraceCapacity::new(vec![1.0, 2.0]);
        assert_eq!(c.capacity(0).value(), 1.0);
        assert_eq!(c.capacity(1).value(), 2.0);
        assert_eq!(c.capacity(2).value(), 1.0);
    }

    #[test]
    fn diurnal_oscillates_nonnegative() {
        let mut c = DiurnalCapacity {
            mean_kbps: 10_000.0,
            rel_amplitude: 0.5,
            period_slots: 100.0,
        };
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for n in 0..100 {
            let v = c.capacity(n).value();
            assert!(v >= 0.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!((lo - 5_000.0).abs() < 30.0);
        assert!((hi - 15_000.0).abs() < 30.0);
    }

    #[test]
    fn spec_builds_and_roundtrips() {
        let spec = CapacitySpec::paper_default();
        let mut m = spec.build();
        assert_eq!(m.capacity(3).value(), 20_000.0);
        let j = serde_json::to_string(&spec).unwrap();
        assert_eq!(serde_json::from_str::<CapacitySpec>(&j).unwrap(), spec);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_trace_rejected() {
        TraceCapacity::new(vec![]);
    }

    #[test]
    fn outage_kills_capacity_periodically() {
        let mut c = OutageCapacity {
            kbps: 1_000.0,
            period_slots: 10,
            outage_slots: 3,
        };
        for n in 0..30u64 {
            let v = c.capacity(n).value();
            if n % 10 < 3 {
                assert_eq!(v, 0.0, "slot {n} should be dead");
            } else {
                assert_eq!(v, 1_000.0, "slot {n} should be nominal");
            }
        }
        // Spec variant builds and round-trips.
        let spec = CapacitySpec::Outage {
            kbps: 500.0,
            period_slots: 20,
            outage_slots: 5,
        };
        let mut m = spec.build();
        assert_eq!(m.capacity(0).value(), 0.0);
        assert_eq!(m.capacity(6).value(), 500.0);
        let j = serde_json::to_string(&spec).unwrap();
        assert_eq!(serde_json::from_str::<CapacitySpec>(&j).unwrap(), spec);
    }
}
