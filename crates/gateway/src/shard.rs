//! Data-shard / frame-unit arithmetic (Definitions 1–3, Eqs. (1)–(2)).
//!
//! The physical layer moves data in fixed-length frames of `δ` bytes; a
//! slot's allocation to user `i` is `φᵢ(n)` frames, i.e. `dᵢ(n) = φᵢ(n)·δ`
//! bytes. Throughout this workspace `δ` is expressed in KB (`delta_kb`) to
//! match the KB/s throughput and mJ/KB power fits.

use jmso_radio::KbPerSec;
use serde::{Deserialize, Serialize};

/// Frame-unit parameters: the physical-layer frame length `δ`.
///
/// ```
/// use jmso_gateway::UnitParams;
/// use jmso_radio::KbPerSec;
///
/// let units = UnitParams::new(50.0); // δ = 50 KB
/// // Eq. (1): at v(−80 dBm) = 2303 KB/s and τ = 1 s, ⌊2303/50⌋ = 46 frames.
/// assert_eq!(units.link_cap_units(KbPerSec(2303.0), 1.0), 46);
/// // Eq. (2): the paper's 20 MB/s BS serves 400 frames per slot.
/// assert_eq!(units.bs_cap_units(KbPerSec(20_000.0), 1.0), 400);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitParams {
    /// Frame length `δ` in KB.
    pub delta_kb: f64,
}

impl UnitParams {
    /// Construct with a positive `δ`.
    pub fn new(delta_kb: f64) -> Self {
        assert!(
            delta_kb > 0.0 && delta_kb.is_finite(),
            "δ must be positive and finite"
        );
        Self { delta_kb }
    }

    /// The workspace default: δ = 50 KB (see DESIGN.md §6 — the paper
    /// leaves δ to the spreading factor; 50 KB keeps the EMA DP tractable
    /// at paper scale while leaving 6–12 units of per-slot need per user).
    pub fn paper_default() -> Self {
        Self::new(50.0)
    }

    /// Largest whole number of units fitting in `kb` (used for capacity
    /// bounds — the `⌊·⌋` in Eqs. (1) and (2)).
    #[inline]
    pub fn units_floor(&self, kb: f64) -> u64 {
        if kb <= 0.0 {
            0
        } else {
            (kb / self.delta_kb).floor() as u64
        }
    }

    /// Smallest whole number of units covering `kb` (used for demand — the
    /// `⌈·⌉` in RTMA's `φ_need`).
    #[inline]
    pub fn units_ceil(&self, kb: f64) -> u64 {
        if kb <= 0.0 {
            0
        } else {
            (kb / self.delta_kb).ceil() as u64
        }
    }

    /// KB carried by `units` frames.
    #[inline]
    pub fn kb(&self, units: u64) -> f64 {
        units as f64 * self.delta_kb
    }

    /// Eq. (1): the per-user link bound `⌊τ·v(sigᵢ(n))/δ⌋`.
    #[inline]
    pub fn link_cap_units(&self, v: KbPerSec, tau: f64) -> u64 {
        self.units_floor(v.value() * tau)
    }

    /// Eq. (2): the BS serving bound `⌊τ·S(n)/δ⌋`.
    #[inline]
    pub fn bs_cap_units(&self, s: KbPerSec, tau: f64) -> u64 {
        self.units_floor(s.value() * tau)
    }
}

impl Default for UnitParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_and_ceil() {
        let u = UnitParams::new(50.0);
        assert_eq!(u.units_floor(0.0), 0);
        assert_eq!(u.units_floor(49.9), 0);
        assert_eq!(u.units_floor(50.0), 1);
        assert_eq!(u.units_floor(325.0), 6);
        assert_eq!(u.units_ceil(0.0), 0);
        assert_eq!(u.units_ceil(0.1), 1);
        assert_eq!(u.units_ceil(50.0), 1);
        assert_eq!(u.units_ceil(325.0), 7);
        assert_eq!(u.units_floor(-5.0), 0);
        assert_eq!(u.units_ceil(-5.0), 0);
    }

    #[test]
    fn kb_roundtrip() {
        let u = UnitParams::new(50.0);
        assert_eq!(u.kb(7), 350.0);
        assert_eq!(u.units_floor(u.kb(7)), 7);
    }

    #[test]
    fn caps_match_paper_formulas() {
        let u = UnitParams::new(50.0);
        // Eq. (1) with v(−80) = 2303 KB/s, τ=1: ⌊2303/50⌋ = 46.
        assert_eq!(u.link_cap_units(KbPerSec(2303.0), 1.0), 46);
        // Eq. (2) with S = 20 MB/s, τ=1: ⌊20000/50⌋ = 400.
        assert_eq!(u.bs_cap_units(KbPerSec(20_000.0), 1.0), 400);
        // τ scales linearly.
        assert_eq!(u.link_cap_units(KbPerSec(2303.0), 2.0), 92);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_delta_rejected() {
        UnitParams::new(0.0);
    }
}
