//! Gateway admission control for compiled-plan arrivals.
//!
//! The paper admits every session unconditionally; Bethanabhotla et al.
//! (utility-optimal scheduling *plus admission control*) point at the
//! missing knob. When the engine runs an open system (PR 7's compiled
//! churn plans), each planned arrival is put before an
//! [`AdmissionController`] at the end of the slot preceding it. The
//! controller compares a running feasibility estimate of the Lyapunov
//! performance bounds — Ω̂ (long-run rebuffering, Theorem 1's
//! `(B + V·E*)/ε`) and Φ̂ (long-run energy, `E* + B/V`) *as they would be
//! with the candidate admitted* — against configured budgets, and
//! admits, defers (retry next slot), or rejects the session.
//!
//! The controller itself is deliberately numeric-in/decision-out: the
//! simulator computes the bound estimates with `jmso_sched`'s Lyapunov
//! helpers (this crate sits *below* `jmso-sched` in the dependency
//! graph and cannot call them) and passes an [`AdmissionContext`] in.
//! [`AdmissionSpec::AlwaysAdmit`] is the identity controller: it admits
//! everything, records nothing, and is bit-identical to running without
//! admission control at all.

use serde::{Deserialize, Serialize};

/// Admission policy for open-system arrivals.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum AdmissionSpec {
    /// Admit every arrival (the paper's implicit policy). Bit-identical
    /// to running without a controller.
    AlwaysAdmit,
    /// Admit only while the Lyapunov bound estimates stay inside the
    /// configured budgets; defer up to `max_defer_slots`, then reject.
    Feasibility {
        /// Lyapunov trade-off weight `V` used in the bound estimates.
        v: f64,
        /// Budget on the per-user long-run rebuffering bound Ω̂/n,
        /// seconds per user-slot (`None` = unbudgeted).
        #[serde(default)]
        omega_s: Option<f64>,
        /// Budget on the per-user long-run energy bound Φ̂/n, mJ per
        /// user-slot (`None` = unbudgeted).
        #[serde(default)]
        phi_mj: Option<f64>,
        /// Slots a candidate may be deferred before it is rejected.
        #[serde(default = "default_max_defer_slots")]
        max_defer_slots: u64,
    },
}

fn default_max_defer_slots() -> u64 {
    30
}

impl AdmissionSpec {
    /// True for the identity controller.
    pub fn is_always_admit(&self) -> bool {
        matches!(self, AdmissionSpec::AlwaysAdmit)
    }

    /// Parameter checks.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            AdmissionSpec::AlwaysAdmit => Ok(()),
            AdmissionSpec::Feasibility {
                v, omega_s, phi_mj, ..
            } => {
                if !v.is_finite() || *v <= 0.0 {
                    return Err(format!("v {v} must be positive and finite"));
                }
                if let Some(w) = omega_s {
                    if !w.is_finite() || *w <= 0.0 {
                        return Err(format!("omega_s {w} must be positive and finite"));
                    }
                }
                if let Some(p) = phi_mj {
                    if !p.is_finite() || *p <= 0.0 {
                        return Err(format!("phi_mj {p} must be positive and finite"));
                    }
                }
                Ok(())
            }
        }
    }
}

/// Outcome of one admission consultation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum AdmissionDecision {
    /// Session starts at its planned slot.
    Admit,
    /// Arrival pushed one slot; the controller re-evaluates then.
    Defer,
    /// Session cancelled; the user never goes live.
    Reject,
}

/// Bound estimates for one candidate, computed by the caller with the
/// candidate counted among the active users.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionContext {
    /// Per-user service slack ε̂ = τ·(C/(n·r̄) − 1), seconds of playback
    /// headroom per slot. Non-positive slack means the cell cannot even
    /// sustain aggregate demand — Theorem 1's bound does not exist.
    pub eps_s: f64,
    /// Per-user long-run rebuffering bound Ω̂/n, s per user-slot
    /// (`f64::INFINITY` when `eps_s ≤ 0`).
    pub omega_hat_s: f64,
    /// Per-user long-run energy bound Φ̂/n, mJ per user-slot.
    pub phi_hat_mj: f64,
}

/// Tallies of every decision the controller has made.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AdmissionSummary {
    /// Sessions admitted.
    pub admitted: u64,
    /// Defer decisions issued (one session may accrue several).
    pub deferrals: u64,
    /// Sessions rejected.
    pub rejected: u64,
}

/// Per-run admission state: the policy plus per-user deferral counts.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionController {
    spec: AdmissionSpec,
    defer_counts: Vec<u64>,
    summary: AdmissionSummary,
}

impl AdmissionController {
    /// A controller over `n_users` planned sessions.
    pub fn new(spec: AdmissionSpec, n_users: usize) -> Self {
        Self {
            spec,
            defer_counts: vec![0; n_users],
            summary: AdmissionSummary::default(),
        }
    }

    /// The policy this controller runs.
    pub fn spec(&self) -> &AdmissionSpec {
        &self.spec
    }

    /// Decide `user`'s pending arrival given the bound estimates.
    pub fn decide(&mut self, user: usize, ctx: &AdmissionContext) -> AdmissionDecision {
        let decision = match &self.spec {
            AdmissionSpec::AlwaysAdmit => AdmissionDecision::Admit,
            AdmissionSpec::Feasibility {
                omega_s,
                phi_mj,
                max_defer_slots,
                ..
            } => {
                let omega_ok = omega_s.is_none_or(|w| ctx.omega_hat_s <= w);
                let phi_ok = phi_mj.is_none_or(|p| ctx.phi_hat_mj <= p);
                if ctx.eps_s > 0.0 && omega_ok && phi_ok {
                    AdmissionDecision::Admit
                } else if self.defer_counts[user] < *max_defer_slots {
                    AdmissionDecision::Defer
                } else {
                    AdmissionDecision::Reject
                }
            }
        };
        match decision {
            AdmissionDecision::Admit => self.summary.admitted += 1,
            AdmissionDecision::Defer => {
                self.defer_counts[user] += 1;
                self.summary.deferrals += 1;
            }
            AdmissionDecision::Reject => self.summary.rejected += 1,
        }
        decision
    }

    /// Decision tallies so far.
    pub fn summary(&self) -> AdmissionSummary {
        self.summary
    }

    /// Snapshot for a checkpoint.
    pub fn export_state(&self) -> AdmissionState {
        AdmissionState {
            defer_counts: self.defer_counts.clone(),
            summary: self.summary,
        }
    }

    /// Restore state captured by [`AdmissionController::export_state`].
    pub fn import_state(&mut self, state: &AdmissionState) -> Result<(), String> {
        if state.defer_counts.len() != self.defer_counts.len() {
            return Err(format!(
                "admission checkpoint has {} users, controller has {}",
                state.defer_counts.len(),
                self.defer_counts.len()
            ));
        }
        self.defer_counts.clone_from(&state.defer_counts);
        self.summary = state.summary;
        Ok(())
    }
}

/// Serializable snapshot of an [`AdmissionController`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionState {
    /// Per-user deferral counts.
    pub defer_counts: Vec<u64>,
    /// Decision tallies.
    pub summary: AdmissionSummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feasible_ctx() -> AdmissionContext {
        AdmissionContext {
            eps_s: 0.5,
            omega_hat_s: 0.01,
            phi_hat_mj: 500.0,
        }
    }

    fn infeasible_ctx() -> AdmissionContext {
        AdmissionContext {
            eps_s: -0.1,
            omega_hat_s: f64::INFINITY,
            phi_hat_mj: 500.0,
        }
    }

    #[test]
    fn always_admit_is_identity() {
        let mut c = AdmissionController::new(AdmissionSpec::AlwaysAdmit, 2);
        assert_eq!(c.decide(0, &infeasible_ctx()), AdmissionDecision::Admit);
        assert_eq!(c.decide(1, &feasible_ctx()), AdmissionDecision::Admit);
        assert_eq!(c.summary().admitted, 2);
        assert_eq!(c.summary().rejected, 0);
    }

    #[test]
    fn feasibility_admits_inside_budgets() {
        let spec = AdmissionSpec::Feasibility {
            v: 2.0,
            omega_s: Some(0.05),
            phi_mj: Some(1000.0),
            max_defer_slots: 3,
        };
        let mut c = AdmissionController::new(spec, 1);
        assert_eq!(c.decide(0, &feasible_ctx()), AdmissionDecision::Admit);
    }

    #[test]
    fn feasibility_defers_then_rejects() {
        let spec = AdmissionSpec::Feasibility {
            v: 2.0,
            omega_s: Some(0.05),
            phi_mj: None,
            max_defer_slots: 2,
        };
        let mut c = AdmissionController::new(spec, 1);
        assert_eq!(c.decide(0, &infeasible_ctx()), AdmissionDecision::Defer);
        assert_eq!(c.decide(0, &infeasible_ctx()), AdmissionDecision::Defer);
        assert_eq!(c.decide(0, &infeasible_ctx()), AdmissionDecision::Reject);
        let s = c.summary();
        assert_eq!((s.admitted, s.deferrals, s.rejected), (0, 2, 1));
    }

    #[test]
    fn budget_violations_block_even_with_slack() {
        let spec = AdmissionSpec::Feasibility {
            v: 2.0,
            omega_s: Some(0.05),
            phi_mj: Some(400.0),
            max_defer_slots: 0,
        };
        let mut c = AdmissionController::new(spec, 1);
        // Positive slack but the energy bound busts the budget.
        assert_eq!(c.decide(0, &feasible_ctx()), AdmissionDecision::Reject);
    }

    #[test]
    fn unbudgeted_feasibility_only_checks_slack() {
        let spec = AdmissionSpec::Feasibility {
            v: 1.0,
            omega_s: None,
            phi_mj: None,
            max_defer_slots: 0,
        };
        let mut c = AdmissionController::new(spec, 2);
        assert_eq!(c.decide(0, &feasible_ctx()), AdmissionDecision::Admit);
        assert_eq!(c.decide(1, &infeasible_ctx()), AdmissionDecision::Reject);
    }

    #[test]
    fn spec_validation() {
        assert!(AdmissionSpec::AlwaysAdmit.validate().is_ok());
        let ok = AdmissionSpec::Feasibility {
            v: 2.0,
            omega_s: Some(0.05),
            phi_mj: None,
            max_defer_slots: 10,
        };
        assert!(ok.validate().is_ok());
        let bad_v = AdmissionSpec::Feasibility {
            v: 0.0,
            omega_s: None,
            phi_mj: None,
            max_defer_slots: 10,
        };
        assert!(bad_v.validate().is_err());
        let bad_omega = AdmissionSpec::Feasibility {
            v: 1.0,
            omega_s: Some(-1.0),
            phi_mj: None,
            max_defer_slots: 10,
        };
        assert!(bad_omega.validate().is_err());
    }

    #[test]
    fn state_roundtrip() {
        let spec = AdmissionSpec::Feasibility {
            v: 2.0,
            omega_s: None,
            phi_mj: None,
            max_defer_slots: 5,
        };
        let mut c = AdmissionController::new(spec.clone(), 3);
        c.decide(1, &infeasible_ctx());
        c.decide(2, &feasible_ctx());
        let st = c.export_state();
        let mut fresh = AdmissionController::new(spec, 3);
        fresh.import_state(&st).unwrap();
        assert_eq!(fresh, c);
        // Mismatched population is rejected.
        let mut tiny = AdmissionController::new(AdmissionSpec::AlwaysAdmit, 1);
        assert!(tiny.import_state(&st).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let spec = AdmissionSpec::Feasibility {
            v: 2.0,
            omega_s: Some(0.1),
            phi_mj: Some(900.0),
            max_defer_slots: 7,
        };
        let j = serde_json::to_string(&spec).unwrap();
        let back: AdmissionSpec = serde_json::from_str(&j).unwrap();
        assert_eq!(back, spec);
        // Terse feasibility spec picks up defaults.
        let terse: AdmissionSpec =
            serde_json::from_str("{\"kind\":\"feasibility\",\"v\":1.5}").unwrap();
        match terse {
            AdmissionSpec::Feasibility {
                max_defer_slots, ..
            } => assert_eq!(max_defer_slots, 30),
            other => panic!("expected feasibility, got {other:?}"),
        }
    }
}
