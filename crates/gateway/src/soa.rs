//! Structure-of-arrays mirror of a slot's [`UserSnapshot`] buffer.
//!
//! The hottest scheduler loops (RTMA's tranche sweep, EMA-fast's slot-user
//! build, the Default baseline) iterate every user touching one or two
//! fields per pass. With the AoS `&[UserSnapshot]` layout each access
//! gathers from a ~90-byte struct; the [`SnapshotSoA`] keeps the fields
//! those loops read in contiguous `f64`/`u64` arrays instead, so the
//! passes stream cache lines and auto-vectorize.
//!
//! The SoA is strictly a *mirror*: every array is derived from the same
//! reported values the AoS snapshot carries (by the collector, in the same
//! per-user loop), plus two derived columns the schedulers would otherwise
//! recompute per slot:
//!
//! * `ceiling_units[i]` — [`UserSnapshot::usable_cap_units`] evaluated at
//!   the slot's `δ` (identical expression, so bit-identical);
//! * `need_units[i]` — RTMA's per-slot demand `⌈τ·pᵢ/δ⌉`.
//!
//! Schedulers receive the mirror through [`SlotContext::soa`] and must
//! treat it as read-only; when it is `None` (reference engine loop,
//! multicell serial path, tests) they fall back to the AoS fields, and
//! both paths must produce bit-identical allocations.
//!
//! [`SlotContext::soa`]: crate::scheduler::SlotContext::soa

use crate::scheduler::UserSnapshot;

/// Contiguous per-field arrays mirroring one slot's snapshots, indexed by
/// `UserSnapshot::id`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotSoA {
    /// Reported RSSI in dBm (`UserSnapshot::signal`).
    pub signal_dbm: Vec<f64>,
    /// Required data rate in KB/s.
    pub rate_kbps: Vec<f64>,
    /// Client buffer occupancy in seconds.
    pub buffer_s: Vec<f64>,
    /// KB still to fetch.
    pub remaining_kb: Vec<f64>,
    /// Radio idle time in seconds.
    pub idle_s: Vec<f64>,
    /// Eq. (1) link bound in units.
    pub link_cap_units: Vec<u64>,
    /// `usable_cap_units(δ)`: link bound ∩ remaining demand.
    pub ceiling_units: Vec<u64>,
    /// RTMA demand `⌈τ·pᵢ/δ⌉` in units.
    pub need_units: Vec<u64>,
    /// Still watching?
    pub active: Vec<bool>,
}

impl SnapshotSoA {
    /// An empty mirror; arrays grow on the first fill.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of users mirrored.
    pub fn len(&self) -> usize {
        self.signal_dbm.len()
    }

    /// True when no users are mirrored.
    pub fn is_empty(&self) -> bool {
        self.signal_dbm.is_empty()
    }

    /// Resize every column to `n` users (new entries zeroed/inactive).
    pub fn resize(&mut self, n: usize) {
        self.signal_dbm.resize(n, 0.0);
        self.rate_kbps.resize(n, 0.0);
        self.buffer_s.resize(n, 0.0);
        self.remaining_kb.resize(n, 0.0);
        self.idle_s.resize(n, 0.0);
        self.link_cap_units.resize(n, 0);
        self.ceiling_units.resize(n, 0);
        self.need_units.resize(n, 0);
        self.active.resize(n, false);
    }

    /// The three read-only input columns of EMA's batch cost kernel —
    /// `(signal_dbm, rate_kbps, idle_s)` — borrowed together so the
    /// kernel call sites stay one line.
    #[inline]
    pub fn curve_columns(&self) -> (&[f64], &[f64], &[f64]) {
        (&self.signal_dbm, &self.rate_kbps, &self.idle_s)
    }

    /// The two derived demand columns RTMA's batch clamp kernels consume
    /// — `(need_units, ceiling_units)` — borrowed together so the kernel
    /// call sites stay one line.
    #[inline]
    pub fn demand_columns(&self) -> (&[u64], &[u64]) {
        (&self.need_units, &self.ceiling_units)
    }

    /// Mirror one user's snapshot into row `snap.id`, deriving the ceiling
    /// and need columns with the exact expressions the schedulers use on
    /// the AoS path (`usable_cap_units` / `⌈τ·p/δ⌉`).
    #[inline]
    pub fn set_row(&mut self, snap: &UserSnapshot, tau: f64, delta_kb: f64) {
        let i = snap.id;
        self.signal_dbm[i] = snap.signal.value();
        self.rate_kbps[i] = snap.rate_kbps;
        self.buffer_s[i] = snap.buffer_s;
        self.remaining_kb[i] = snap.remaining_kb;
        self.idle_s[i] = snap.idle_s;
        self.link_cap_units[i] = snap.link_cap_units;
        self.ceiling_units[i] = snap.usable_cap_units(delta_kb);
        self.need_units[i] = ((tau * snap.rate_kbps) / delta_kb).ceil() as u64;
        self.active[i] = snap.active;
    }

    /// Rebuild the whole mirror from an AoS snapshot buffer (the full-pass
    /// counterpart of [`SnapshotSoA::set_row`]).
    pub fn fill_from(&mut self, snaps: &[UserSnapshot], tau: f64, delta_kb: f64) {
        self.resize(snaps.len());
        for snap in snaps {
            self.set_row(snap, tau, delta_kb);
        }
    }

    /// A raw per-row writer over this mirror's columns, for engines that
    /// partition users into disjoint shards refreshed by different
    /// threads within one lockstep phase (see [`SoaRows`]). The mirror
    /// must be sized to its final row count first; the writer is
    /// invalidated by any later resize.
    pub fn rows(&mut self) -> SoaRows {
        SoaRows {
            signal_dbm: self.signal_dbm.as_mut_ptr(),
            rate_kbps: self.rate_kbps.as_mut_ptr(),
            buffer_s: self.buffer_s.as_mut_ptr(),
            remaining_kb: self.remaining_kb.as_mut_ptr(),
            idle_s: self.idle_s.as_mut_ptr(),
            link_cap_units: self.link_cap_units.as_mut_ptr(),
            ceiling_units: self.ceiling_units.as_mut_ptr(),
            need_units: self.need_units.as_mut_ptr(),
            active: self.active.as_mut_ptr(),
            len: self.signal_dbm.len(),
        }
    }
}

/// Raw column pointers for shard-parallel row writes into a
/// [`SnapshotSoA`].
///
/// Handing each shard a `&mut SnapshotSoA` would alias; this writer
/// derives every store from the column base pointers, so no reference to
/// the mirror exists while shards write. Callers must uphold the shard
/// protocol: within a phase no two threads touch the same row, and no
/// `&`/`&mut` to the underlying mirror is live until the phase ends.
/// [`SoaRows::set_row`] keeps the exact store expressions of
/// [`SnapshotSoA::set_row`], so shard-refreshed mirrors stay
/// bit-identical to serially refreshed ones.
pub struct SoaRows {
    signal_dbm: *mut f64,
    rate_kbps: *mut f64,
    buffer_s: *mut f64,
    remaining_kb: *mut f64,
    idle_s: *mut f64,
    link_cap_units: *mut u64,
    ceiling_units: *mut u64,
    need_units: *mut u64,
    active: *mut bool,
    len: usize,
}

// SAFETY: the pointers target plain-old-data columns; cross-thread use is
// restricted by the documented disjoint-row protocol.
unsafe impl Send for SoaRows {}
unsafe impl Sync for SoaRows {}

impl SoaRows {
    /// Rows addressable by this writer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mirror had no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mirror one user's snapshot into row `snap.id`, exactly like
    /// [`SnapshotSoA::set_row`].
    ///
    /// # Safety
    /// `snap.id < len`, no other thread writes row `snap.id` in this
    /// phase, and no reference to the underlying [`SnapshotSoA`] is live.
    #[inline]
    pub unsafe fn set_row(&self, snap: &UserSnapshot, tau: f64, delta_kb: f64) {
        let i = snap.id;
        debug_assert!(i < self.len);
        *self.signal_dbm.add(i) = snap.signal.value();
        *self.rate_kbps.add(i) = snap.rate_kbps;
        *self.buffer_s.add(i) = snap.buffer_s;
        *self.remaining_kb.add(i) = snap.remaining_kb;
        *self.idle_s.add(i) = snap.idle_s;
        *self.link_cap_units.add(i) = snap.link_cap_units;
        *self.ceiling_units.add(i) = snap.usable_cap_units(delta_kb);
        *self.need_units.add(i) = ((tau * snap.rate_kbps) / delta_kb).ceil() as u64;
        *self.active.add(i) = snap.active;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmso_radio::rrc::RrcState;
    use jmso_radio::Dbm;

    fn snap(id: usize) -> UserSnapshot {
        UserSnapshot {
            id,
            signal: Dbm(-80.0 - id as f64),
            rate_kbps: 300.0 + 37.0 * id as f64,
            buffer_s: 1.5 * id as f64,
            remaining_kb: 120.0 + id as f64,
            active: id.is_multiple_of(2),
            link_cap_units: 40 + id as u64,
            idle_s: 0.25 * id as f64,
            rrc_state: RrcState::Dch,
        }
    }

    #[test]
    fn mirror_matches_aos_fields_and_derived_columns() {
        let snaps: Vec<UserSnapshot> = (0..5).map(snap).collect();
        let mut soa = SnapshotSoA::new();
        soa.fill_from(&snaps, 1.0, 50.0);
        assert_eq!(soa.len(), 5);
        for s in &snaps {
            let i = s.id;
            assert_eq!(soa.signal_dbm[i].to_bits(), s.signal.value().to_bits());
            assert_eq!(soa.rate_kbps[i], s.rate_kbps);
            assert_eq!(soa.remaining_kb[i], s.remaining_kb);
            assert_eq!(soa.ceiling_units[i], s.usable_cap_units(50.0));
            assert_eq!(
                soa.need_units[i],
                ((1.0 * s.rate_kbps) / 50.0).ceil() as u64
            );
            assert_eq!(soa.active[i], s.active);
        }
    }

    #[test]
    fn row_writer_matches_set_row_bitwise() {
        let snaps: Vec<UserSnapshot> = (0..6).map(snap).collect();
        let mut serial = SnapshotSoA::new();
        serial.fill_from(&snaps, 1.0, 50.0);

        let mut sharded = SnapshotSoA::new();
        sharded.resize(snaps.len());
        let rows = sharded.rows();
        // Interleaved "shards" writing disjoint rows.
        for s in snaps.iter().filter(|s| s.id % 2 == 0) {
            unsafe { rows.set_row(s, 1.0, 50.0) };
        }
        for s in snaps.iter().filter(|s| s.id % 2 == 1) {
            unsafe { rows.set_row(s, 1.0, 50.0) };
        }
        assert_eq!(serial, sharded);
    }

    #[test]
    fn resize_shrinks_and_grows() {
        let snaps: Vec<UserSnapshot> = (0..3).map(snap).collect();
        let mut soa = SnapshotSoA::new();
        soa.fill_from(&snaps, 1.0, 50.0);
        soa.resize(1);
        assert_eq!(soa.len(), 1);
        soa.resize(4);
        assert_eq!(soa.len(), 4);
        assert!(!soa.active[3], "grown rows start inactive");
        assert_eq!(soa.ceiling_units[3], 0);
    }
}
