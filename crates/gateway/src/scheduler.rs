//! The scheduler abstraction every allocation policy implements.
//!
//! A scheduler is called once per slot with a [`SlotContext`] — the
//! cross-layer snapshot assembled by the Information Collector — and must
//! return a per-user allocation in data units that respects the link bound
//! Eq. (1) (`alloc[i] ≤ users[i].link_cap_units`) and the BS bound Eq. (2)
//! (`Σ alloc[i] ≤ bs_cap_units`). The Data Transmitter re-checks both, so
//! a buggy policy cannot corrupt the simulation, but violations are
//! reported (and `debug_assert`ed) because they indicate a policy bug.

use jmso_radio::rrc::RrcState;
use jmso_radio::Dbm;
use serde::{Deserialize, Serialize};

/// Per-user cross-layer state visible to the gateway in one slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserSnapshot {
    /// Stable user index in `[0, N)`.
    pub id: usize,
    /// RSSI reported for this slot (`sigᵢ(n)`).
    pub signal: Dbm,
    /// Required data rate `pᵢ(n)` in KB/s.
    pub rate_kbps: f64,
    /// Client buffer occupancy `rᵢ(n)` in seconds, as known to the gateway.
    pub buffer_s: f64,
    /// KB still to be fetched for this user's video (0 ⇒ fetch complete).
    pub remaining_kb: f64,
    /// True while the user is still watching (`mᵢ(n) < Mᵢ`).
    pub active: bool,
    /// Eq. (1) bound for this slot, in units.
    pub link_cap_units: u64,
    /// Seconds since this user's radio last carried data.
    pub idle_s: f64,
    /// Current RRC state of the user's radio.
    pub rrc_state: RrcState,
}

impl UserSnapshot {
    /// Units this user could still usefully receive this slot: the link
    /// bound intersected with the bytes the session still needs.
    pub fn usable_cap_units(&self, delta_kb: f64) -> u64 {
        let need = (self.remaining_kb / delta_kb).ceil() as u64;
        self.link_cap_units.min(need)
    }
}

/// Everything a scheduler sees in one slot.
#[derive(Debug, Clone)]
pub struct SlotContext<'a> {
    /// Slot index `n`.
    pub slot: u64,
    /// Slot length τ in seconds.
    pub tau: f64,
    /// Frame length δ in KB.
    pub delta_kb: f64,
    /// Eq. (2) bound: `⌊τ·S(n)/δ⌋`.
    pub bs_cap_units: u64,
    /// Per-user snapshots, indexed by `UserSnapshot::id`.
    pub users: &'a [UserSnapshot],
    /// Optional structure-of-arrays mirror of `users` (same reported
    /// values, contiguous per-field columns — see [`crate::soa`]).
    /// Schedulers may index it instead of `users` for their hot loops;
    /// allocations must be bit-identical either way.
    pub soa: Option<&'a crate::soa::SnapshotSoA>,
}

impl SlotContext<'_> {
    /// Playback seconds carried by `units` frames at rate `p` KB/s
    /// (`tᵢ(n) = δ·φᵢ/pᵢ`).
    #[inline]
    pub fn playback_seconds(&self, units: u64, rate_kbps: f64) -> f64 {
        self.delta_kb * units as f64 / rate_kbps
    }
}

/// A per-user allocation in data units (`φᵢ(n)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation(pub Vec<u64>);

impl Allocation {
    /// The all-zero allocation for `n` users.
    pub fn zeros(n: usize) -> Self {
        Self(vec![0; n])
    }

    /// Reuse this allocation for a new slot: `n` zeroed entries, keeping
    /// the existing heap buffer whenever it is already big enough.
    pub fn reset(&mut self, n: usize) {
        self.0.clear();
        self.0.resize(n, 0);
    }

    /// Total units allocated.
    pub fn total_units(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Check Eq. (1) and Eq. (2) against a context; returns a description
    /// of the first violation found, if any.
    pub fn validate(&self, ctx: &SlotContext) -> Result<(), String> {
        if self.0.len() != ctx.users.len() {
            return Err(format!(
                "allocation has {} entries for {} users",
                self.0.len(),
                ctx.users.len()
            ));
        }
        for (alloc, user) in self.0.iter().zip(ctx.users) {
            if *alloc > user.link_cap_units {
                return Err(format!(
                    "user {} allocated {} units over link cap {} (Eq. 1)",
                    user.id, alloc, user.link_cap_units
                ));
            }
        }
        if self.total_units() > ctx.bs_cap_units {
            return Err(format!(
                "total {} units over BS cap {} (Eq. 2)",
                self.total_units(),
                ctx.bs_cap_units
            ));
        }
        Ok(())
    }
}

/// A graceful-degradation decision a scheduler took because its nominal
/// policy was infeasible under the slot's (possibly faulted) conditions.
///
/// Events are diagnostic: the allocation pipeline never reads them, but
/// the engine forwards them to the telemetry recorder so traces show when
/// and why a policy departed from its paper-exact behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum DegradationEvent {
    /// RTMA's Eq. (12) threshold left demand unserved under a degraded
    /// cap, and the policy re-ran a best-effort sweep ignoring the
    /// threshold.
    RtmaBestEffort {
        /// Slot on which the fallback fired.
        slot: u64,
        /// Units the threshold-respecting sweep left unallocated.
        units_recovered: u64,
    },
    /// EMA clamped a virtual queue `PCᵢ(n)` that exceeded the configured
    /// saturation bound under prolonged outage.
    QueueClamped {
        /// Slot on which the clamp fired.
        slot: u64,
        /// User whose queue was clamped.
        user: usize,
        /// The unclamped queue value.
        pc_before: f64,
        /// The bound it was clamped to.
        pc_after: f64,
    },
}

/// A per-slot allocation policy (the paper's Scheduler component).
///
/// Policies implement [`Scheduler::allocate_into`], writing into a
/// caller-owned [`Allocation`] so the per-slot hot path (the engine in
/// `jmso-sim`) performs no heap allocation in steady state. The
/// allocating [`Scheduler::allocate`] convenience wrapper is provided for
/// tests and one-shot callers.
pub trait Scheduler: Send {
    /// Short policy name used in reports and figure legends.
    fn name(&self) -> &'static str;

    /// Decide `φᵢ(n)` for every user, writing into `out`.
    ///
    /// Implementations must [`Allocation::reset`] `out` to
    /// `ctx.users.len()` entries themselves — `out` may arrive holding a
    /// previous slot's allocation (possibly of a different length).
    fn allocate_into(&mut self, ctx: &SlotContext, out: &mut Allocation);

    /// Decide `φᵢ(n)` for every user (allocating convenience wrapper).
    fn allocate(&mut self, ctx: &SlotContext) -> Allocation {
        let mut out = Allocation::zeros(ctx.users.len());
        self.allocate_into(ctx, &mut out);
        out
    }

    /// True when [`Scheduler::allocate_into`] reads [`SlotContext::soa`].
    ///
    /// Engines maintain the structure-of-arrays snapshot mirror only for
    /// policies that declare they consume it: keeping the columns in sync
    /// re-derives the unit quantities per live user every slot, which is
    /// pure overhead for policies that walk the [`UserSnapshot`] rows.
    /// Defaults to `false`. A policy overriding this must still handle
    /// `soa: None` — reference loops and external callers build contexts
    /// without the mirror, and the two layouts are interchangeable by
    /// contract.
    fn wants_soa(&self) -> bool {
        false
    }

    /// Per-user internal queue/backlog values after the latest
    /// [`Scheduler::allocate_into`] call, for observability layers.
    ///
    /// Lyapunov policies expose their virtual rebuffering queues `PCᵢ(n+1)`
    /// here; RTMA exposes its per-user need estimate. Stateless policies
    /// keep the default `None`, and callers must treat the values as
    /// diagnostic only — nothing in the allocation pipeline reads them.
    fn queue_values(&self) -> Option<&[f64]> {
        None
    }

    /// Degradation events emitted by the latest
    /// [`Scheduler::allocate_into`] call (cleared at the start of each
    /// call). Policies without fallback behaviour keep the default empty
    /// slice.
    fn degradations(&self) -> &[DegradationEvent] {
        &[]
    }

    /// Switch the policy into its degraded (cheaper, best-effort)
    /// operating mode, if it has one — the live service's `Degrade`
    /// overrun response. Returns `true` when the policy supports
    /// degradation (engaging is idempotent; repeated calls keep
    /// returning `true`). The default is `false`: nothing changes and
    /// the caller knows the policy cannot shed load.
    ///
    /// Implementations must emit their usual [`DegradationEvent`]s when
    /// the engaged mode actually alters an allocation, so the switch is
    /// observable in telemetry.
    fn engage_degraded(&mut self) -> bool {
        false
    }

    /// Serialize the policy's mutable state (virtual queues, …) for a
    /// checkpoint. Stateless policies return `Some(String::new())`; a
    /// policy that cannot be checkpointed returns `None`.
    fn export_state(&self) -> Option<String> {
        Some(String::new())
    }

    /// Restore state captured by [`Scheduler::export_state`].
    fn import_state(&mut self, state: &str) -> Result<(), String> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "scheduler {} holds no state but checkpoint carries some",
                self.name()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn snap(id: usize, link_cap: u64) -> UserSnapshot {
        UserSnapshot {
            id,
            signal: Dbm(-80.0),
            rate_kbps: 450.0,
            buffer_s: 0.0,
            remaining_kb: 1e9,
            active: true,
            link_cap_units: link_cap,
            idle_s: 0.0,
            rrc_state: RrcState::Dch,
        }
    }

    #[test]
    fn validate_catches_link_violation() {
        let users = vec![snap(0, 5), snap(1, 5)];
        let ctx = SlotContext {
            slot: 0,
            tau: 1.0,
            delta_kb: 50.0,
            bs_cap_units: 100,
            users: &users,
            soa: None,
        };
        assert!(Allocation(vec![5, 5]).validate(&ctx).is_ok());
        let err = Allocation(vec![6, 0]).validate(&ctx).unwrap_err();
        assert!(err.contains("Eq. 1"), "{err}");
    }

    #[test]
    fn validate_catches_bs_violation() {
        let users = vec![snap(0, 50), snap(1, 50)];
        let ctx = SlotContext {
            slot: 0,
            tau: 1.0,
            delta_kb: 50.0,
            bs_cap_units: 60,
            users: &users,
            soa: None,
        };
        let err = Allocation(vec![40, 40]).validate(&ctx).unwrap_err();
        assert!(err.contains("Eq. 2"), "{err}");
    }

    #[test]
    fn validate_catches_length_mismatch() {
        let users = vec![snap(0, 5)];
        let ctx = SlotContext {
            slot: 0,
            tau: 1.0,
            delta_kb: 50.0,
            bs_cap_units: 10,
            users: &users,
            soa: None,
        };
        assert!(Allocation(vec![1, 2]).validate(&ctx).is_err());
    }

    #[test]
    fn usable_cap_respects_remaining_bytes() {
        let mut u = snap(0, 40);
        u.remaining_kb = 120.0;
        assert_eq!(u.usable_cap_units(50.0), 3); // ceil(120/50)=3 < 40
        u.remaining_kb = 1e9;
        assert_eq!(u.usable_cap_units(50.0), 40);
        u.remaining_kb = 0.0;
        assert_eq!(u.usable_cap_units(50.0), 0);
    }

    #[test]
    fn playback_seconds_helper() {
        let users: Vec<UserSnapshot> = vec![];
        let ctx = SlotContext {
            slot: 0,
            tau: 1.0,
            delta_kb: 50.0,
            bs_cap_units: 0,
            users: &users,
            soa: None,
        };
        // 9 units × 50 KB / 450 KB/s = 1 s.
        assert!((ctx.playback_seconds(9, 450.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn allocation_totals() {
        let a = Allocation(vec![1, 2, 3]);
        assert_eq!(a.total_units(), 6);
        assert_eq!(Allocation::zeros(4).total_units(), 0);
    }
}
