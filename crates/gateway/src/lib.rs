//! Gateway framework — the paper's Fig. 1 deployed at the PDN gateway.
//!
//! Four components cooperate each slot:
//!
//! 1. the [`receiver::DataReceiver`] buffers downlink bytes per video flow
//!    (resource slicing separates video from background traffic);
//! 2. the [`collector::InformationCollector`] snapshots per-user cross-layer
//!    state (RSSI, required data rate, buffer occupancy, RRC idle time);
//! 3. a [`scheduler::Scheduler`] decides the per-user data-unit allocation
//!    `φᵢ(n)` under the link constraint Eq. (1) and BS constraint Eq. (2);
//! 4. the [`transmitter::DataTransmitter`] enforces those constraints and
//!    moves bytes from the receiver queues to the clients.
//!
//! [`shard`] holds the `δ`-sized data-unit arithmetic of Definitions 1–3 and
//! [`bs`] the serving-capacity model `S(n)`.

pub mod admission;
pub mod bs;
pub mod collector;
pub mod dpi;
pub mod protocol;
pub mod receiver;
pub mod scheduler;
pub mod shard;
pub mod soa;
pub mod transmitter;

pub use admission::{
    AdmissionContext, AdmissionController, AdmissionDecision, AdmissionSpec, AdmissionState,
    AdmissionSummary,
};
pub use bs::{CapacityModel, ConstantCapacity, DiurnalCapacity, OutageCapacity, TraceCapacity};
pub use collector::{CollectorSpec, CollectorState, InformationCollector};
pub use dpi::{format_segment_request, DpiClassifier, DpiError, FlowInfo};
pub use protocol::{
    declared_rate_from_request, parse_command, GwCommand, GwEvent, GwStatus, LiveEvent,
    ProtocolError, SvcState, MAX_LINE_BYTES,
};
pub use receiver::{DataReceiver, FlowClass, FlowState, OriginModel};
pub use scheduler::{Allocation, DegradationEvent, Scheduler, SlotContext, UserSnapshot};
pub use shard::UnitParams;
pub use soa::{SnapshotSoA, SoaRows};
pub use transmitter::{DataTransmitter, Delivery};
