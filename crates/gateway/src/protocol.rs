//! Wire protocol for the live gateway service (`jmso-gateway`).
//!
//! Line-delimited JSON on a Unix or TCP socket: each inbound line is one
//! [`GwCommand`], each outbound line one JSON reply or [`GwEvent`]. The
//! types live here in the gateway crate — next to the DPI middlebox
//! whose request parsing the `arrive` event reuses — so the service
//! binary and test harnesses share one definition.
//!
//! Robustness contract: a malformed line yields a typed
//! [`ProtocolError`] *reply on that line* and the connection lives on —
//! one bad event never kills a session, and the slot loop never sees
//! unvalidated input.

use crate::dpi::DpiClassifier;
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Hard cap on one protocol line, in bytes. Longer lines are rejected
/// with [`ProtocolError::LineTooLong`] before JSON parsing — bounded
/// memory per connection no matter what a client sends.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// One inbound command line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "cmd", rename_all = "snake_case")]
pub enum GwCommand {
    /// Stream telemetry ([`GwEvent`] lines) to this connection until it
    /// closes or falls behind (see the fan-out backpressure rules in
    /// DESIGN.md §13).
    Subscribe,
    /// Feed live session events into the slot schedule.
    Feed {
        /// Events to apply, in order.
        events: Vec<LiveEvent>,
    },
    /// One-line [`GwStatus`] snapshot.
    Status,
    /// Start the slot loop (required once when the service holds at
    /// slot 0 awaiting ingestion; a no-op when already running).
    Start,
    /// Graceful shutdown: drain subscribers, write a final checkpoint.
    Shutdown,
}

/// One live session event — the socket form of the batch
/// `ArrivalSpec::Declared` / `ChurnPlan` schedule entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum LiveEvent {
    /// User `user`'s session starts at `slot`.
    Arrive {
        /// Target user index.
        user: usize,
        /// Slot the session starts (must not have executed yet).
        slot: u64,
        /// Optional raw HTTP segment request; the DPI middlebox
        /// extracts the declared bitrate from it
        /// ([`declared_rate_from_request`]).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        request: Option<String>,
    },
    /// User `user` abandons playback at `slot`.
    Depart {
        /// Target user index.
        user: usize,
        /// Slot the session is abandoned.
        slot: u64,
    },
}

/// Why a protocol line was rejected. Serialized back to the client as
/// `{"ok":false,"error":{...}}`; the connection stays open.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ProtocolError {
    /// The line was not a valid [`GwCommand`].
    Parse {
        /// Parser diagnostic.
        reason: String,
    },
    /// The command parsed but was rejected by the engine (bad user
    /// index, slot already executed, …).
    Reject {
        /// Validation diagnostic.
        reason: String,
    },
    /// The line exceeded [`MAX_LINE_BYTES`].
    LineTooLong {
        /// The configured cap.
        limit: usize,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Parse { reason } => write!(f, "parse error: {reason}"),
            ProtocolError::Reject { reason } => write!(f, "rejected: {reason}"),
            ProtocolError::LineTooLong { limit } => {
                write!(f, "line exceeds {limit} byte limit")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Parse one inbound line into a [`GwCommand`], enforcing the line
/// length cap first.
pub fn parse_command(line: &str) -> Result<GwCommand, ProtocolError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(ProtocolError::LineTooLong {
            limit: MAX_LINE_BYTES,
        });
    }
    serde_json::from_str(line).map_err(|e| ProtocolError::Parse {
        reason: e.to_string(),
    })
}

/// Extract the declared media bitrate (KB/s) from a raw segment
/// request via the DPI middlebox — how a live `arrive` event carries a
/// gateway-side rate without the client declaring it out-of-band.
/// Returns a typed rejection when the bytes are not a video request
/// carrying a bitrate.
pub fn declared_rate_from_request(request: &str) -> Result<f64, ProtocolError> {
    let mut dpi = DpiClassifier::new();
    let info = dpi
        .inspect(&Bytes::from(request.as_bytes().to_vec()))
        .map_err(|e| ProtocolError::Reject {
            reason: format!("dpi: {e}"),
        })?;
    info.bitrate_kbps.ok_or_else(|| ProtocolError::Reject {
        reason: "request carries no declared bitrate".into(),
    })
}

/// Service lifecycle state, as reported in [`GwStatus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SvcState {
    /// Waiting at slot 0 for ingestion and a `start` command.
    Holding,
    /// Slot loop running.
    Running,
    /// Run finished; final trace written.
    Done,
    /// Draining for shutdown.
    Stopping,
}

/// One-line status snapshot returned for [`GwCommand::Status`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GwStatus {
    /// Lifecycle state.
    pub state: SvcState,
    /// Next slot the loop will execute.
    pub slot: u64,
    /// Configured horizon Γ.
    pub slots: u64,
    /// Users still fetching or watching.
    pub watching: usize,
    /// Active overrun policy (`stall` / `drop` / `degrade`).
    pub policy: String,
    /// Slots skipped by the `drop` overrun policy so far.
    pub dropped_slots: u64,
    /// Subscribers disconnected for falling behind.
    pub dropped_subscribers: u64,
    /// Slot of the last durable checkpoint, if any was written.
    pub last_checkpoint_slot: Option<u64>,
    /// Simulation warnings surfaced so far (`SimWarning` renderings
    /// plus service-level fallbacks such as a cold start after a
    /// corrupt checkpoint).
    pub warnings: Vec<String>,
}

/// One outbound telemetry/lifecycle event line. Subscribers receive the
/// raw JSONL `SlotTrace` records interleaved with these service events;
/// every service event carries `"event"` as its tag so consumers can
/// split the streams on one key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "event", rename_all = "snake_case")]
pub enum GwEvent {
    /// Service accepted the scenario and holds/runs from slot 0.
    Started {
        /// Configured horizon Γ.
        slots: u64,
    },
    /// Restart resumed from a durable checkpoint.
    Resumed {
        /// Slot execution resumed from.
        slot: u64,
    },
    /// Restart found no usable checkpoint and started cold.
    ColdStart {
        /// Why the checkpoint was unusable (corrupt, missing, …).
        reason: String,
    },
    /// A durable checkpoint was written.
    Checkpoint {
        /// Top-of-slot the checkpoint captures.
        slot: u64,
    },
    /// A slot missed its wall-clock budget and the overrun policy
    /// fired.
    DeadlineOverrun {
        /// The late slot.
        slot: u64,
        /// What the policy did (`stall` / `drop` / `degrade`).
        action: String,
    },
    /// A slow subscriber was disconnected instead of stalling the loop.
    SubscriberDropped {
        /// Total subscribers dropped so far.
        total: u64,
    },
    /// A simulation warning (e.g. `ShardFallback`) or service fallback.
    Warning {
        /// Human-readable warning text.
        message: String,
    },
    /// The scheduler was switched into degraded mode.
    Degraded {
        /// Slot the switch took effect.
        slot: u64,
    },
    /// The run completed; the final trace is on disk.
    Done {
        /// Slots executed.
        slots_run: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpi::format_segment_request;

    #[test]
    fn command_round_trip() {
        let cmds = vec![
            GwCommand::Subscribe,
            GwCommand::Feed {
                events: vec![
                    LiveEvent::Arrive {
                        user: 3,
                        slot: 17,
                        request: None,
                    },
                    LiveEvent::Depart { user: 3, slot: 40 },
                ],
            },
            GwCommand::Status,
            GwCommand::Start,
            GwCommand::Shutdown,
        ];
        for cmd in cmds {
            let line = serde_json::to_string(&cmd).expect("serialize");
            assert_eq!(parse_command(&line).expect("parse"), cmd);
        }
    }

    #[test]
    fn malformed_lines_yield_typed_errors() {
        assert!(matches!(
            parse_command("not json"),
            Err(ProtocolError::Parse { .. })
        ));
        assert!(matches!(
            parse_command(r#"{"cmd":"feed","events":[{"kind":"arrive"}]}"#),
            Err(ProtocolError::Parse { .. })
        ));
        assert!(matches!(
            parse_command(r#"{"cmd":"warp"}"#),
            Err(ProtocolError::Parse { .. })
        ));
        let long = format!(
            r#"{{"cmd":"status","pad":"{}"}}"#,
            "x".repeat(MAX_LINE_BYTES)
        );
        assert!(matches!(
            parse_command(&long),
            Err(ProtocolError::LineTooLong { .. })
        ));
    }

    #[test]
    fn dpi_rate_extraction() {
        let wire = format_segment_request("u7", 0, 450.0, None);
        let text = std::str::from_utf8(&wire).expect("utf8");
        assert_eq!(declared_rate_from_request(text).expect("rate"), 450.0);
        assert!(matches!(
            declared_rate_from_request("GET / HTTP/1.1\r\n\r\n"),
            Err(ProtocolError::Reject { .. })
        ));
        assert!(matches!(
            declared_rate_from_request("POST /x HTTP/1.1\r\n\r\n"),
            Err(ProtocolError::Reject { .. })
        ));
    }

    #[test]
    fn events_tagged_for_stream_splitting() {
        let ev = GwEvent::Checkpoint { slot: 25 };
        let line = serde_json::to_string(&ev).expect("serialize");
        assert!(line.contains(r#""event":"checkpoint""#), "{line}");
    }
}
