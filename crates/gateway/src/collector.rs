//! Information Collector — assembles the cross-layer snapshot.
//!
//! The collector turns ground-truth per-user state (as the simulator knows
//! it) into the [`UserSnapshot`]s a scheduler sees. Real deployments read
//! RSSI from UE measurement reports and the required rate from DPI
//! middleboxes, both of which can be stale or noisy, so the collector
//! supports a report staleness (signal refreshed every `staleness_slots`)
//! and Gaussian measurement noise on the reported RSSI. With the defaults
//! (no staleness, no noise) it is a faithful pass-through, matching the
//! paper's evaluation.
//!
//! The Eq. (1) link bound is computed from the *reported* signal — exactly
//! the information the gateway would act on.

use crate::scheduler::UserSnapshot;
use crate::shard::UnitParams;
use crate::soa::SnapshotSoA;
use jmso_radio::rrc::RrcState;
use jmso_radio::{Dbm, KbPerSec, LinearRssiThroughput, ThroughputModel};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Ground-truth per-user state the simulator hands to the collector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RawUserState {
    /// True RSSI this slot.
    pub signal: Dbm,
    /// Required data rate `pᵢ(n)`, KB/s.
    pub rate_kbps: f64,
    /// Client buffer occupancy, seconds.
    pub buffer_s: f64,
    /// KB still to fetch.
    pub remaining_kb: f64,
    /// Still watching?
    pub active: bool,
    /// Radio idle time, seconds.
    pub idle_s: f64,
    /// Radio RRC state.
    pub rrc_state: RrcState,
}

/// Serializable collector configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct CollectorSpec {
    /// Refresh the reported signal only every this many slots
    /// (0 or 1 = every slot).
    pub staleness_slots: u64,
    /// Gaussian noise added to the reported RSSI, dB std-dev.
    pub signal_noise_std_db: f64,
}

impl CollectorSpec {
    /// Perfect information (the paper's evaluation setting).
    pub fn perfect() -> Self {
        Self {
            staleness_slots: 0,
            signal_noise_std_db: 0.0,
        }
    }
}

impl Default for CollectorSpec {
    fn default() -> Self {
        Self::perfect()
    }
}

/// The collector component.
#[derive(Debug)]
pub struct InformationCollector {
    spec: CollectorSpec,
    thru: LinearRssiThroughput,
    units: UnitParams,
    tau: f64,
    /// Last reported signal per user (for staleness).
    cached_signal: Vec<Option<Dbm>>,
    rng: StdRng,
}

impl InformationCollector {
    /// Build a collector for `n_users`.
    pub fn new(
        spec: CollectorSpec,
        thru: LinearRssiThroughput,
        units: UnitParams,
        tau: f64,
        n_users: usize,
        seed: u64,
    ) -> Self {
        Self {
            spec,
            thru,
            units,
            tau,
            cached_signal: vec![None; n_users],
            rng: StdRng::seed_from_u64(seed ^ 0xC011_EC70_4F00_0000),
        }
    }

    fn reported_signal(&mut self, user: usize, slot: u64, truth: Dbm) -> Dbm {
        let refresh = self.spec.staleness_slots <= 1
            || slot.is_multiple_of(self.spec.staleness_slots)
            || self.cached_signal[user].is_none();
        if refresh {
            let noisy = if self.spec.signal_noise_std_db > 0.0 {
                let u1: f64 = self.rng.random::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = self.rng.random();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                Dbm(truth.value() + self.spec.signal_noise_std_db * z)
            } else {
                truth
            };
            self.cached_signal[user] = Some(noisy);
            return noisy;
        }
        // `refresh` covered the None case, so the cache is populated;
        // the fallback keeps this total without a panicking path.
        self.cached_signal[user].unwrap_or(truth)
    }

    /// Assemble snapshots for one slot into a caller-owned buffer (the
    /// engine's zero-allocation hot path).
    pub fn snapshot_into(&mut self, slot: u64, raw: &[RawUserState], out: &mut Vec<UserSnapshot>) {
        assert_eq!(raw.len(), self.cached_signal.len(), "user count mismatch");
        out.clear();
        for (id, r) in raw.iter().enumerate() {
            let signal = self.reported_signal(id, slot, r.signal);
            let v = self.thru.throughput(signal);
            out.push(UserSnapshot {
                id,
                signal,
                rate_kbps: r.rate_kbps,
                buffer_s: r.buffer_s,
                remaining_kb: r.remaining_kb,
                active: r.active,
                link_cap_units: self.units.link_cap_units(v, self.tau),
                idle_s: r.idle_s,
                rrc_state: r.rrc_state,
            });
        }
    }

    /// Assemble snapshots for one slot (allocating convenience wrapper
    /// over [`InformationCollector::snapshot_into`]).
    pub fn snapshot(&mut self, slot: u64, raw: &[RawUserState]) -> Vec<UserSnapshot> {
        let mut out = Vec::with_capacity(raw.len());
        self.snapshot_into(slot, raw, &mut out);
        out
    }

    /// True when snapshots must be rebuilt from every user's raw state
    /// every slot: reported-signal noise consumes one RNG draw per user
    /// per slot in user order, so refreshing only a subset would shift
    /// the noise stream of everyone behind them.
    pub fn needs_full_pass(&self) -> bool {
        self.spec.signal_noise_std_db > 0.0
    }

    /// True when the reported signal equals the ground truth on every
    /// slot — no staleness hold, no noise. Only then may a caller derive
    /// link caps ahead of time from raw signal blocks (the engine's
    /// precomputed cap tables): with staleness > 1 the report read this
    /// slot can be a *cached* signal, which no per-block table knows.
    ///
    /// Strictly stronger than `!needs_full_pass()`.
    pub fn is_pass_through(&self) -> bool {
        self.spec.staleness_slots <= 1 && self.spec.signal_noise_std_db == 0.0
    }

    /// Batch Eq. (1): `out[k] = ⌊τ·v(sigs[k])/δ⌋` via the vectorized
    /// throughput kernel. `v_scratch` receives the intermediate
    /// throughputs and must match `sigs` in length. Computed by the
    /// collector (not the caller) so the caps use the *same* `v`-fit,
    /// `δ` and `τ` as the per-slot snapshot path — bit-identical by
    /// construction.
    pub fn link_caps_into(&self, sigs: &[Dbm], v_scratch: &mut [f64], out: &mut [u64]) {
        assert_eq!(sigs.len(), out.len(), "cap table slice length mismatch");
        self.thru.throughput_into(sigs, v_scratch);
        for (o, &v) in out.iter_mut().zip(v_scratch.iter()) {
            *o = self.units.link_cap_units(KbPerSec(v), self.tau);
        }
    }

    /// [`InformationCollector::snapshot_into`] plus a rebuild of the
    /// structure-of-arrays mirror from the freshly written snapshots.
    pub fn snapshot_into_soa(
        &mut self,
        slot: u64,
        raw: &[RawUserState],
        out: &mut Vec<UserSnapshot>,
        soa: &mut SnapshotSoA,
    ) {
        self.snapshot_into(slot, raw, out);
        soa.fill_from(out, self.tau, self.units.delta_kb);
    }

    /// Refresh only the `live` users' snapshot entries in place, leaving
    /// the rest frozen — the engine's active-set hot path. A frozen entry
    /// belongs to a user whose session is over (`remaining_kb == 0`), so
    /// its stale fields cannot affect any allocation: the usable capacity
    /// it implies is zero.
    ///
    /// Requires a prior [`InformationCollector::snapshot_into`] pass to
    /// have populated `out`, and a noise-free spec (see
    /// [`InformationCollector::needs_full_pass`]).
    pub fn snapshot_refresh(
        &mut self,
        slot: u64,
        raw: &[RawUserState],
        live: &[usize],
        out: &mut [UserSnapshot],
    ) {
        debug_assert!(!self.needs_full_pass(), "noise needs the full pass");
        assert_eq!(raw.len(), self.cached_signal.len(), "user count mismatch");
        assert_eq!(out.len(), raw.len(), "snapshot buffer mismatch");
        for &id in live {
            let r = &raw[id];
            let signal = self.reported_signal(id, slot, r.signal);
            let v = self.thru.throughput(signal);
            out[id] = UserSnapshot {
                id,
                signal,
                rate_kbps: r.rate_kbps,
                buffer_s: r.buffer_s,
                remaining_kb: r.remaining_kb,
                active: r.active,
                link_cap_units: self.units.link_cap_units(v, self.tau),
                idle_s: r.idle_s,
                rrc_state: r.rrc_state,
            };
        }
    }

    /// [`InformationCollector::snapshot_refresh`] that optionally keeps a
    /// structure-of-arrays mirror in sync (frozen rows stay frozen in
    /// both layouts), optionally short-circuiting the per-user
    /// RSSI→throughput conversion with precomputed link caps.
    ///
    /// `caps`, when given, must hold the Eq. (1) bound for the *true*
    /// signal of every user id (the engine's per-block cap tables, built
    /// by [`InformationCollector::link_caps_into`]); it is only sound
    /// when [`InformationCollector::is_pass_through`] holds, because the
    /// reported signal is then the true signal by definition. The signal
    /// cache is still maintained so collector state (and checkpoints)
    /// never depend on which path ran.
    ///
    /// `soa` is `None` when the consuming scheduler never reads the
    /// mirror (`Scheduler::wants_soa` in this crate returns `false`):
    /// the column upkeep re-derives unit quantities per refreshed user,
    /// so skipping it is the engine's way of not charging row-walking
    /// policies for a layout they ignore.
    pub fn snapshot_refresh_soa(
        &mut self,
        slot: u64,
        raw: &[RawUserState],
        live: &[usize],
        caps: Option<&[u64]>,
        out: &mut [UserSnapshot],
        mut soa: Option<&mut SnapshotSoA>,
    ) {
        debug_assert!(!self.needs_full_pass(), "noise needs the full pass");
        assert_eq!(raw.len(), self.cached_signal.len(), "user count mismatch");
        assert_eq!(out.len(), raw.len(), "snapshot buffer mismatch");
        if let Some(soa) = &soa {
            assert_eq!(soa.len(), raw.len(), "SoA mirror mismatch");
        }
        let tau = self.tau;
        let delta_kb = self.units.delta_kb;
        match caps {
            Some(caps) => {
                debug_assert!(
                    self.is_pass_through(),
                    "cap tables need pass-through reports"
                );
                assert_eq!(caps.len(), raw.len(), "cap table length mismatch");
                for &id in live {
                    let r = &raw[id];
                    self.cached_signal[id] = Some(r.signal);
                    out[id] = UserSnapshot {
                        id,
                        signal: r.signal,
                        rate_kbps: r.rate_kbps,
                        buffer_s: r.buffer_s,
                        remaining_kb: r.remaining_kb,
                        active: r.active,
                        link_cap_units: caps[id],
                        idle_s: r.idle_s,
                        rrc_state: r.rrc_state,
                    };
                    if let Some(soa) = soa.as_deref_mut() {
                        soa.set_row(&out[id], tau, delta_kb);
                    }
                }
            }
            None => {
                for &id in live {
                    let r = &raw[id];
                    let signal = self.reported_signal(id, slot, r.signal);
                    let v = self.thru.throughput(signal);
                    out[id] = UserSnapshot {
                        id,
                        signal,
                        rate_kbps: r.rate_kbps,
                        buffer_s: r.buffer_s,
                        remaining_kb: r.remaining_kb,
                        active: r.active,
                        link_cap_units: self.units.link_cap_units(v, self.tau),
                        idle_s: r.idle_s,
                        rrc_state: r.rrc_state,
                    };
                    if let Some(soa) = soa.as_deref_mut() {
                        soa.set_row(&out[id], tau, delta_kb);
                    }
                }
            }
        }
    }

    /// Snapshot the collector's mutable state (signal cache + noise RNG)
    /// for a checkpoint.
    pub fn export_state(&self) -> CollectorState {
        let [a, b, c, d] = self.rng.state();
        CollectorState {
            cached_signal: self.cached_signal.clone(),
            rng: (a, b, c, d),
        }
    }

    /// Restore state captured by [`InformationCollector::export_state`].
    pub fn import_state(&mut self, state: &CollectorState) -> Result<(), String> {
        if state.cached_signal.len() != self.cached_signal.len() {
            return Err(format!(
                "collector checkpoint has {} users, collector has {}",
                state.cached_signal.len(),
                self.cached_signal.len()
            ));
        }
        self.cached_signal.clone_from(&state.cached_signal);
        let (a, b, c, d) = state.rng;
        self.rng = StdRng::from_state([a, b, c, d]);
        Ok(())
    }
}

/// Serializable snapshot of an [`InformationCollector`]'s mutable state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectorState {
    /// Last reported signal per user.
    pub cached_signal: Vec<Option<Dbm>>,
    /// Noise generator position (xoshiro256++ state words).
    pub rng: (u64, u64, u64, u64),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(sig: f64) -> RawUserState {
        RawUserState {
            signal: Dbm(sig),
            rate_kbps: 450.0,
            buffer_s: 3.0,
            remaining_kb: 1000.0,
            active: true,
            idle_s: 0.0,
            rrc_state: RrcState::Dch,
        }
    }

    fn collector(spec: CollectorSpec, n: usize) -> InformationCollector {
        InformationCollector::new(
            spec,
            LinearRssiThroughput::paper(),
            UnitParams::new(50.0),
            1.0,
            n,
            7,
        )
    }

    #[test]
    fn perfect_collector_passes_through() {
        let mut c = collector(CollectorSpec::perfect(), 2);
        let snaps = c.snapshot(0, &[raw(-80.0), raw(-60.0)]);
        assert_eq!(snaps[0].signal, Dbm(-80.0));
        assert_eq!(snaps[1].signal, Dbm(-60.0));
        // Eq. (1): ⌊2303/50⌋ = 46 at −80 dBm.
        assert_eq!(snaps[0].link_cap_units, 46);
        assert_eq!(snaps[0].id, 0);
        assert_eq!(snaps[1].id, 1);
        assert_eq!(snaps[0].rate_kbps, 450.0);
        assert_eq!(snaps[0].buffer_s, 3.0);
    }

    #[test]
    fn staleness_holds_old_reports() {
        let spec = CollectorSpec {
            staleness_slots: 5,
            signal_noise_std_db: 0.0,
        };
        let mut c = collector(spec, 1);
        let s0 = c.snapshot(0, &[raw(-80.0)])[0].signal;
        // Signal changed but report is held until slot 5.
        let s3 = c.snapshot(3, &[raw(-60.0)])[0].signal;
        assert_eq!(s0, s3);
        let s5 = c.snapshot(5, &[raw(-60.0)])[0].signal;
        assert_eq!(s5, Dbm(-60.0));
    }

    #[test]
    fn noise_perturbs_but_is_deterministic() {
        let spec = CollectorSpec {
            staleness_slots: 0,
            signal_noise_std_db: 4.0,
        };
        let report = |_| {
            let mut c = collector(spec, 1);
            (0..20)
                .map(|n| c.snapshot(n, &[raw(-80.0)])[0].signal.value())
                .collect::<Vec<_>>()
        };
        let a = report(());
        let b = report(());
        assert_eq!(a, b, "same seed ⇒ same reports");
        assert!(a.iter().any(|s| (s - -80.0).abs() > 0.1), "noise applied");
    }

    #[test]
    #[should_panic(expected = "user count mismatch")]
    fn wrong_user_count_panics() {
        let mut c = collector(CollectorSpec::perfect(), 2);
        c.snapshot(0, &[raw(-80.0)]);
    }

    /// The SoA-maintaining refresh must agree with the plain refresh on
    /// the AoS buffer, keep the mirror in sync, and produce identical
    /// results whether caps come from the batch table or the per-user
    /// conversion.
    #[test]
    fn soa_refresh_matches_plain_refresh_and_cap_tables() {
        let spec = CollectorSpec::perfect();
        assert!(collector(spec, 1).is_pass_through());
        let mut plain = collector(spec, 3);
        let mut tabled = collector(spec, 3);
        let mut computed = collector(spec, 3);
        let mut truth = [raw(-80.0), raw(-70.0), raw(-60.0)];
        let mut snaps_plain = plain.snapshot(0, &truth);
        let mut snaps_tab = Vec::new();
        let mut soa_tab = SnapshotSoA::new();
        tabled.snapshot_into_soa(0, &truth, &mut snaps_tab, &mut soa_tab);
        let mut snaps_cmp = Vec::new();
        let mut soa_cmp = SnapshotSoA::new();
        computed.snapshot_into_soa(0, &truth, &mut snaps_cmp, &mut soa_cmp);
        assert_eq!(snaps_plain, snaps_tab);
        for slot in 1..6 {
            truth[0].signal = Dbm(-80.0 - slot as f64);
            truth[2].signal = Dbm(-60.0 + 0.5 * slot as f64);
            let live = [0usize, 2];
            plain.snapshot_refresh(slot, &truth, &live, &mut snaps_plain);
            // Batch cap table over the true signals, as the engine does.
            let sigs: Vec<Dbm> = truth.iter().map(|r| r.signal).collect();
            let mut vs = vec![0.0; sigs.len()];
            let mut caps = vec![0u64; sigs.len()];
            tabled.link_caps_into(&sigs, &mut vs, &mut caps);
            tabled.snapshot_refresh_soa(
                slot,
                &truth,
                &live,
                Some(&caps),
                &mut snaps_tab,
                Some(&mut soa_tab),
            );
            computed.snapshot_refresh_soa(
                slot,
                &truth,
                &live,
                None,
                &mut snaps_cmp,
                Some(&mut soa_cmp),
            );
            assert_eq!(snaps_plain, snaps_tab, "table path diverged at {slot}");
            assert_eq!(snaps_plain, snaps_cmp, "computed path diverged at {slot}");
            let mut mirror = SnapshotSoA::new();
            mirror.fill_from(&snaps_plain, 1.0, 50.0);
            assert_eq!(soa_tab, mirror, "SoA mirror drifted at {slot}");
            assert_eq!(soa_cmp, mirror);
        }
        assert_eq!(tabled.export_state(), plain.export_state());
        assert_eq!(computed.export_state(), plain.export_state());
    }

    /// The partial refresh must agree with the full pass on refreshed
    /// entries and leave the rest untouched, including under staleness.
    #[test]
    fn refresh_matches_full_pass_for_live_users() {
        let spec = CollectorSpec {
            staleness_slots: 3,
            signal_noise_std_db: 0.0,
        };
        let mut full = collector(spec, 3);
        let mut part = collector(spec, 3);
        let mut truth = [raw(-80.0), raw(-70.0), raw(-60.0)];
        let mut snaps = part.snapshot(0, &truth);
        let mut expect = full.snapshot(0, &truth);
        assert_eq!(snaps, expect);
        // User 1 finishes: its raw entry freezes while 0 and 2 evolve.
        for slot in 1..8 {
            truth[0].signal = Dbm(-80.0 - slot as f64);
            truth[2].signal = Dbm(-60.0 + slot as f64);
            expect = full.snapshot(slot, &truth);
            part.snapshot_refresh(slot, &truth, &[0, 2], &mut snaps);
            assert_eq!(snaps[0], expect[0]);
            assert_eq!(snaps[2], expect[2]);
            assert_eq!(snaps[1].signal, Dbm(-70.0), "frozen entry untouched");
        }
        assert!(!part.needs_full_pass());
        let noisy = CollectorSpec {
            staleness_slots: 0,
            signal_noise_std_db: 2.0,
        };
        assert!(collector(noisy, 1).needs_full_pass());
    }
}
