//! Information Collector — assembles the cross-layer snapshot.
//!
//! The collector turns ground-truth per-user state (as the simulator knows
//! it) into the [`UserSnapshot`]s a scheduler sees. Real deployments read
//! RSSI from UE measurement reports and the required rate from DPI
//! middleboxes, both of which can be stale or noisy, so the collector
//! supports a report staleness (signal refreshed every `staleness_slots`)
//! and Gaussian measurement noise on the reported RSSI. With the defaults
//! (no staleness, no noise) it is a faithful pass-through, matching the
//! paper's evaluation.
//!
//! The Eq. (1) link bound is computed from the *reported* signal — exactly
//! the information the gateway would act on.

use crate::scheduler::UserSnapshot;
use crate::shard::UnitParams;
use jmso_radio::rrc::RrcState;
use jmso_radio::{Dbm, LinearRssiThroughput, ThroughputModel};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Ground-truth per-user state the simulator hands to the collector.
#[derive(Debug, Clone, Copy)]
pub struct RawUserState {
    /// True RSSI this slot.
    pub signal: Dbm,
    /// Required data rate `pᵢ(n)`, KB/s.
    pub rate_kbps: f64,
    /// Client buffer occupancy, seconds.
    pub buffer_s: f64,
    /// KB still to fetch.
    pub remaining_kb: f64,
    /// Still watching?
    pub active: bool,
    /// Radio idle time, seconds.
    pub idle_s: f64,
    /// Radio RRC state.
    pub rrc_state: RrcState,
}

/// Serializable collector configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct CollectorSpec {
    /// Refresh the reported signal only every this many slots
    /// (0 or 1 = every slot).
    pub staleness_slots: u64,
    /// Gaussian noise added to the reported RSSI, dB std-dev.
    pub signal_noise_std_db: f64,
}

impl CollectorSpec {
    /// Perfect information (the paper's evaluation setting).
    pub fn perfect() -> Self {
        Self {
            staleness_slots: 0,
            signal_noise_std_db: 0.0,
        }
    }
}

impl Default for CollectorSpec {
    fn default() -> Self {
        Self::perfect()
    }
}

/// The collector component.
#[derive(Debug)]
pub struct InformationCollector {
    spec: CollectorSpec,
    thru: LinearRssiThroughput,
    units: UnitParams,
    tau: f64,
    /// Last reported signal per user (for staleness).
    cached_signal: Vec<Option<Dbm>>,
    rng: StdRng,
}

impl InformationCollector {
    /// Build a collector for `n_users`.
    pub fn new(
        spec: CollectorSpec,
        thru: LinearRssiThroughput,
        units: UnitParams,
        tau: f64,
        n_users: usize,
        seed: u64,
    ) -> Self {
        Self {
            spec,
            thru,
            units,
            tau,
            cached_signal: vec![None; n_users],
            rng: StdRng::seed_from_u64(seed ^ 0xC011_EC70_4F00_0000),
        }
    }

    fn reported_signal(&mut self, user: usize, slot: u64, truth: Dbm) -> Dbm {
        let refresh = self.spec.staleness_slots <= 1
            || slot.is_multiple_of(self.spec.staleness_slots)
            || self.cached_signal[user].is_none();
        if refresh {
            let noisy = if self.spec.signal_noise_std_db > 0.0 {
                let u1: f64 = self.rng.random::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = self.rng.random();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                Dbm(truth.value() + self.spec.signal_noise_std_db * z)
            } else {
                truth
            };
            self.cached_signal[user] = Some(noisy);
        }
        self.cached_signal[user].expect("populated above")
    }

    /// Assemble snapshots for one slot into a caller-owned buffer (the
    /// engine's zero-allocation hot path).
    pub fn snapshot_into(&mut self, slot: u64, raw: &[RawUserState], out: &mut Vec<UserSnapshot>) {
        assert_eq!(raw.len(), self.cached_signal.len(), "user count mismatch");
        out.clear();
        for (id, r) in raw.iter().enumerate() {
            let signal = self.reported_signal(id, slot, r.signal);
            let v = self.thru.throughput(signal);
            out.push(UserSnapshot {
                id,
                signal,
                rate_kbps: r.rate_kbps,
                buffer_s: r.buffer_s,
                remaining_kb: r.remaining_kb,
                active: r.active,
                link_cap_units: self.units.link_cap_units(v, self.tau),
                idle_s: r.idle_s,
                rrc_state: r.rrc_state,
            });
        }
    }

    /// Assemble snapshots for one slot (allocating convenience wrapper
    /// over [`InformationCollector::snapshot_into`]).
    pub fn snapshot(&mut self, slot: u64, raw: &[RawUserState]) -> Vec<UserSnapshot> {
        let mut out = Vec::with_capacity(raw.len());
        self.snapshot_into(slot, raw, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(sig: f64) -> RawUserState {
        RawUserState {
            signal: Dbm(sig),
            rate_kbps: 450.0,
            buffer_s: 3.0,
            remaining_kb: 1000.0,
            active: true,
            idle_s: 0.0,
            rrc_state: RrcState::Dch,
        }
    }

    fn collector(spec: CollectorSpec, n: usize) -> InformationCollector {
        InformationCollector::new(
            spec,
            LinearRssiThroughput::paper(),
            UnitParams::new(50.0),
            1.0,
            n,
            7,
        )
    }

    #[test]
    fn perfect_collector_passes_through() {
        let mut c = collector(CollectorSpec::perfect(), 2);
        let snaps = c.snapshot(0, &[raw(-80.0), raw(-60.0)]);
        assert_eq!(snaps[0].signal, Dbm(-80.0));
        assert_eq!(snaps[1].signal, Dbm(-60.0));
        // Eq. (1): ⌊2303/50⌋ = 46 at −80 dBm.
        assert_eq!(snaps[0].link_cap_units, 46);
        assert_eq!(snaps[0].id, 0);
        assert_eq!(snaps[1].id, 1);
        assert_eq!(snaps[0].rate_kbps, 450.0);
        assert_eq!(snaps[0].buffer_s, 3.0);
    }

    #[test]
    fn staleness_holds_old_reports() {
        let spec = CollectorSpec {
            staleness_slots: 5,
            signal_noise_std_db: 0.0,
        };
        let mut c = collector(spec, 1);
        let s0 = c.snapshot(0, &[raw(-80.0)])[0].signal;
        // Signal changed but report is held until slot 5.
        let s3 = c.snapshot(3, &[raw(-60.0)])[0].signal;
        assert_eq!(s0, s3);
        let s5 = c.snapshot(5, &[raw(-60.0)])[0].signal;
        assert_eq!(s5, Dbm(-60.0));
    }

    #[test]
    fn noise_perturbs_but_is_deterministic() {
        let spec = CollectorSpec {
            staleness_slots: 0,
            signal_noise_std_db: 4.0,
        };
        let report = |_| {
            let mut c = collector(spec, 1);
            (0..20)
                .map(|n| c.snapshot(n, &[raw(-80.0)])[0].signal.value())
                .collect::<Vec<_>>()
        };
        let a = report(());
        let b = report(());
        assert_eq!(a, b, "same seed ⇒ same reports");
        assert!(a.iter().any(|s| (s - -80.0).abs() > 0.1), "noise applied");
    }

    #[test]
    #[should_panic(expected = "user count mismatch")]
    fn wrong_user_count_panics() {
        let mut c = collector(CollectorSpec::perfect(), 2);
        c.snapshot(0, &[raw(-80.0)]);
    }
}
