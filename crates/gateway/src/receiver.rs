//! Data Receiver — per-flow downlink queues at the gateway.
//!
//! The receiver buffers bytes arriving from origin servers before the
//! scheduler forwards them to users, and slices video flows apart from
//! background traffic so that only video is scheduled (the paper's
//! "resource slicing" after CellSlice \[26\]).
//!
//! Origin behaviour is pluggable: an [`OriginModel::Infinite`] origin (the
//! paper's implicit assumption — content is always available at the
//! gateway), a rate-limited origin modelling a constrained CDN leg, or a
//! bursty origin. When payload carriage is enabled the queues hold real
//! [`bytes::Bytes`] chunks so end-to-end byte movement can be asserted in
//! tests; by default only byte counts are tracked, which is what the
//! simulator needs.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Traffic class of a flow (video is scheduled; background is sliced off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowClass {
    /// A video stream managed by the scheduler.
    Video,
    /// Any other downlink traffic; bypasses the scheduler.
    Background,
}

/// How the origin server feeds a flow's queue each slot.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum OriginModel {
    /// Content always available (the paper's assumption).
    Infinite,
    /// The origin leg delivers at most `kbps` KB per second.
    RateLimited {
        /// Origin-side rate limit, KB/s.
        kbps: f64,
    },
    /// The origin alternates `on_slots` of `kbps` delivery with
    /// `off_slots` of silence.
    Bursty {
        /// Delivery rate while on, KB/s.
        kbps: f64,
        /// Slots delivering.
        on_slots: u64,
        /// Slots silent.
        off_slots: u64,
    },
}

impl OriginModel {
    /// KB this origin makes available during slot `slot` of length `tau`.
    fn arrival_kb(&self, slot: u64, tau: f64) -> f64 {
        match self {
            OriginModel::Infinite => f64::INFINITY,
            OriginModel::RateLimited { kbps } => kbps * tau,
            OriginModel::Bursty {
                kbps,
                on_slots,
                off_slots,
            } => {
                let cycle = on_slots + off_slots;
                if cycle == 0 || slot % cycle < *on_slots {
                    kbps * tau
                } else {
                    0.0
                }
            }
        }
    }
}

/// One flow's queue state.
#[derive(Debug)]
struct FlowQueue {
    class: FlowClass,
    origin: OriginModel,
    /// KB buffered at the gateway and ready to forward.
    backlog_kb: f64,
    /// KB the whole flow will ever carry (`None` = unbounded).
    remaining_source_kb: Option<f64>,
    /// Optional real payload chunks (tests / fidelity mode).
    payload: Option<VecDeque<Bytes>>,
}

/// The gateway's downlink buffer across all flows.
#[derive(Debug)]
pub struct DataReceiver {
    flows: Vec<FlowQueue>,
    tau: f64,
    carry_payload: bool,
}

impl DataReceiver {
    /// A receiver with `n_users` video flows fed by `origin`, plus
    /// slot length `tau`.
    pub fn new(n_users: usize, origin: OriginModel, tau: f64) -> Self {
        assert!(tau > 0.0);
        let flows = (0..n_users)
            .map(|_| FlowQueue {
                class: FlowClass::Video,
                origin: origin.clone(),
                backlog_kb: 0.0,
                remaining_source_kb: None,
                payload: None,
            })
            .collect();
        Self {
            flows,
            tau,
            carry_payload: false,
        }
    }

    /// Enable real payload carriage (each queued KB is backed by a
    /// [`Bytes`] chunk). Used by tests asserting end-to-end byte movement.
    pub fn with_payload(mut self) -> Self {
        self.carry_payload = true;
        for f in &mut self.flows {
            f.payload = Some(VecDeque::new());
        }
        self
    }

    /// Bound the total volume flow `user` will ever receive from its
    /// origin (the video size), so the queue drains at end of session.
    pub fn set_source_volume_kb(&mut self, user: usize, kb: f64) {
        self.flows[user].remaining_source_kb = Some(kb);
    }

    /// Adjust flow `user`'s total source volume by `delta_kb` (an ABR rung
    /// switch re-prices the unfetched remainder of the video). Growth goes
    /// to the undelivered source remainder when the origin still owes
    /// bytes, else to the gateway backlog (the origin already shipped
    /// everything, as an [`OriginModel::Infinite`] origin does on first
    /// ingest); shrinkage drains the source remainder first and then the
    /// backlog, flooring both at zero. No-op for unbounded flows.
    pub fn adjust_source_volume_kb(&mut self, user: usize, delta_kb: f64) {
        let f = &mut self.flows[user];
        let Some(rem) = f.remaining_source_kb.as_mut() else {
            return;
        };
        if delta_kb >= 0.0 {
            if *rem > 0.0 {
                *rem += delta_kb;
            } else {
                f.backlog_kb += delta_kb;
            }
        } else {
            let from_rem = (-delta_kb).min(*rem);
            *rem -= from_rem;
            let from_backlog = (-delta_kb) - from_rem;
            f.backlog_kb = (f.backlog_kb - from_backlog).max(0.0);
        }
    }

    /// Reclassify a flow (video flows are scheduled, background is not).
    pub fn set_class(&mut self, user: usize, class: FlowClass) {
        self.flows[user].class = class;
    }

    /// Class of a flow.
    pub fn class(&self, user: usize) -> FlowClass {
        self.flows[user].class
    }

    /// Ingest one slot of origin arrivals for every flow.
    pub fn ingest_slot(&mut self, slot: u64) {
        for f in &mut self.flows {
            let mut arrive = f.origin.arrival_kb(slot, self.tau);
            if let Some(rem) = f.remaining_source_kb.as_mut() {
                arrive = arrive.min(*rem);
                *rem -= arrive;
            } else if arrive.is_infinite() {
                // Unbounded source with no volume bound: keep the backlog
                // topped up to a large watermark instead of growing it.
                f.backlog_kb = f.backlog_kb.max(1e12);
                continue;
            }
            if arrive > 0.0 {
                f.backlog_kb += arrive;
                if let Some(q) = f.payload.as_mut() {
                    q.push_back(Bytes::from(vec![0u8; (arrive * 1024.0) as usize]));
                }
            }
        }
    }

    /// KB buffered and forwardable for `user`.
    pub fn backlog_kb(&self, user: usize) -> f64 {
        self.flows[user].backlog_kb
    }

    /// Number of video flows.
    pub fn n_flows(&self) -> usize {
        self.flows.len()
    }

    /// Dequeue up to `kb` for `user`; returns the KB actually removed
    /// (and, in payload mode, the chunks carrying them).
    pub fn dequeue_kb(&mut self, user: usize, kb: f64) -> (f64, Vec<Bytes>) {
        let f = &mut self.flows[user];
        let take = kb.min(f.backlog_kb).max(0.0);
        f.backlog_kb -= take;
        let mut chunks = Vec::new();
        if let Some(q) = f.payload.as_mut() {
            let mut remaining_bytes = (take * 1024.0) as usize;
            while remaining_bytes > 0 {
                match q.pop_front() {
                    None => break,
                    Some(mut c) if c.len() <= remaining_bytes => {
                        remaining_bytes -= c.len();
                        chunks.push(std::mem::take(&mut c));
                    }
                    Some(mut c) => {
                        let head = c.split_to(remaining_bytes);
                        q.push_front(c);
                        remaining_bytes = 0;
                        chunks.push(head);
                    }
                }
            }
        }
        (take, chunks)
    }

    /// Snapshot every flow's queue state for a checkpoint. Payload chunks
    /// are not captured: payload mode is a test fixture, not a simulation
    /// mode, and resuming it would require shipping raw bytes.
    pub fn export_state(&self) -> Vec<FlowState> {
        self.flows
            .iter()
            .map(|f| FlowState {
                backlog_kb: f.backlog_kb,
                remaining_source_kb: f.remaining_source_kb,
            })
            .collect()
    }

    /// Restore queue state captured by [`DataReceiver::export_state`].
    pub fn import_state(&mut self, state: &[FlowState]) -> Result<(), String> {
        if state.len() != self.flows.len() {
            return Err(format!(
                "receiver checkpoint has {} flows, receiver has {}",
                state.len(),
                self.flows.len()
            ));
        }
        for (f, s) in self.flows.iter_mut().zip(state) {
            f.backlog_kb = s.backlog_kb;
            f.remaining_source_kb = s.remaining_source_kb;
        }
        Ok(())
    }
}

/// Serializable snapshot of one flow's queue state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowState {
    /// KB buffered at the gateway.
    pub backlog_kb: f64,
    /// KB the origin will still supply (`None` = unbounded).
    pub remaining_source_kb: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_origin_always_has_backlog() {
        let mut r = DataReceiver::new(2, OriginModel::Infinite, 1.0);
        r.ingest_slot(0);
        assert!(r.backlog_kb(0) >= 1e12);
        let (got, _) = r.dequeue_kb(0, 500.0);
        assert_eq!(got, 500.0);
    }

    #[test]
    fn rate_limited_origin_binds() {
        let mut r = DataReceiver::new(1, OriginModel::RateLimited { kbps: 100.0 }, 1.0);
        r.ingest_slot(0);
        assert_eq!(r.backlog_kb(0), 100.0);
        let (got, _) = r.dequeue_kb(0, 500.0);
        assert_eq!(got, 100.0);
        assert_eq!(r.backlog_kb(0), 0.0);
    }

    #[test]
    fn bursty_origin_cycles() {
        let mut r = DataReceiver::new(
            1,
            OriginModel::Bursty {
                kbps: 10.0,
                on_slots: 2,
                off_slots: 3,
            },
            1.0,
        );
        let mut arrivals = vec![];
        for n in 0..10 {
            let before = r.backlog_kb(0);
            r.ingest_slot(n);
            arrivals.push(r.backlog_kb(0) - before);
        }
        assert_eq!(
            arrivals,
            vec![10.0, 10.0, 0.0, 0.0, 0.0, 10.0, 10.0, 0.0, 0.0, 0.0]
        );
    }

    #[test]
    fn source_volume_bounds_total_arrivals() {
        let mut r = DataReceiver::new(1, OriginModel::Infinite, 1.0);
        r.set_source_volume_kb(0, 250.0);
        for n in 0..5 {
            r.ingest_slot(n);
        }
        assert_eq!(r.backlog_kb(0), 250.0);
    }

    #[test]
    fn payload_mode_moves_real_bytes() {
        let mut r =
            DataReceiver::new(1, OriginModel::RateLimited { kbps: 2.0 }, 1.0).with_payload();
        r.ingest_slot(0);
        r.ingest_slot(1);
        // 4 KB queued as two 2 KB chunks; take 3 KB → one whole + one split.
        let (kb, chunks) = r.dequeue_kb(0, 3.0);
        assert_eq!(kb, 3.0);
        let bytes: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(bytes, 3 * 1024);
        let (kb2, chunks2) = r.dequeue_kb(0, 10.0);
        assert_eq!(kb2, 1.0);
        assert_eq!(chunks2.iter().map(|c| c.len()).sum::<usize>(), 1024);
    }

    #[test]
    fn adjust_volume_grows_remainder_then_backlog() {
        let mut r = DataReceiver::new(1, OriginModel::RateLimited { kbps: 100.0 }, 1.0);
        r.set_source_volume_kb(0, 300.0);
        r.ingest_slot(0); // backlog 100, source remainder 200
        r.adjust_source_volume_kb(0, 50.0); // remainder 250
        let st = r.export_state();
        assert_eq!(st[0].remaining_source_kb, Some(250.0));
        assert_eq!(st[0].backlog_kb, 100.0);
        // Shrink past the remainder: drains it, then the backlog, floored.
        r.adjust_source_volume_kb(0, -400.0);
        let st = r.export_state();
        assert_eq!(st[0].remaining_source_kb, Some(0.0));
        assert_eq!(st[0].backlog_kb, 0.0);
    }

    #[test]
    fn adjust_volume_lands_in_backlog_once_origin_drained() {
        // Infinite origin + volume bound: the whole video is in the
        // backlog after the first ingest, so growth must go there.
        let mut r = DataReceiver::new(1, OriginModel::Infinite, 1.0);
        r.set_source_volume_kb(0, 500.0);
        r.ingest_slot(0);
        assert_eq!(r.backlog_kb(0), 500.0);
        r.adjust_source_volume_kb(0, 250.0);
        assert_eq!(r.backlog_kb(0), 750.0);
        r.adjust_source_volume_kb(0, -100.0);
        assert_eq!(r.backlog_kb(0), 650.0);
        // Unbounded flows ignore adjustments.
        let mut u = DataReceiver::new(1, OriginModel::RateLimited { kbps: 1.0 }, 1.0);
        u.adjust_source_volume_kb(0, 99.0);
        assert_eq!(u.backlog_kb(0), 0.0);
    }

    #[test]
    fn flow_classes() {
        let mut r = DataReceiver::new(2, OriginModel::Infinite, 1.0);
        assert_eq!(r.class(0), FlowClass::Video);
        r.set_class(1, FlowClass::Background);
        assert_eq!(r.class(1), FlowClass::Background);
        assert_eq!(r.n_flows(), 2);
    }

    #[test]
    fn dequeue_never_negative() {
        let mut r = DataReceiver::new(1, OriginModel::RateLimited { kbps: 1.0 }, 1.0);
        let (got, _) = r.dequeue_kb(0, -5.0);
        assert_eq!(got, 0.0);
    }
}
