//! `jmso-gateway` — the live gateway service.
//!
//! ```text
//! jmso-gateway template [N] [--slots S] [--out-dir D]
//!     write a matched scenario pack to D (default "."):
//!       scenario.live.json   scenario for `serve --ingest`
//!       scenario.batch.json  equivalent batch scenario (declared arrivals)
//!       feed.jsonl           the feed+start command lines for `send --file`
//!     Running the batch scenario with `jmso-sim run --trace` and the live
//!     one under `serve --ingest --policy stall` must produce byte-identical
//!     traces — the SVC=1 gate in scripts/check.sh pins exactly that.
//!
//! jmso-gateway serve <scenario.json> --listen unix:/path|tcp:host:port
//!     [--trace t.jsonl] [--trace-every N]
//!     [--ckpt c.json] [--ckpt-every K]
//!     [--policy stall|drop|degrade] [--slot-ms M]
//!     [--ingest] [--hold]
//!     [--max-restarts N] [--backoff-ms B] [--backoff-max-ms B]
//!     [--step-delay-ms D] [--fail-at SLOT]
//!     run the scenario as a long-lived service. --ingest defers every
//!     planned arrival and holds at slot 0 for socket-fed sessions plus a
//!     `start` command; --slot-ms paces the loop in real time (default: as
//!     fast as the hardware allows). If --ckpt exists at startup the run
//!     resumes from it (kill -9 recovery); an unreadable checkpoint logs a
//!     warning and cold-starts. SIGINT/SIGTERM shut down gracefully with a
//!     final checkpoint.
//!
//! jmso-gateway send <addr> <json-line>      one command, print the reply
//! jmso-gateway send <addr> --file f.jsonl   send each line, print replies
//! jmso-gateway watch <addr>                 subscribe and stream telemetry
//! ```
//!
//! Exit codes: 0 success (including graceful interruption), 1 runtime
//! failure (I/O, supervisor gave up, rejected command), 2 invalid input.

use jmso_gateway_svc::{
    spawn_listener, supervise, CommandBus, FanOut, ListenSpec, LivePolicy, Outcome, ServeConfig,
    SupervisedEnd, SupervisorConfig,
};
use jmso_sim::{ArrivalSpec, Scenario, SimError};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

enum CliError {
    Usage(String),
    Runtime(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Runtime(_) => 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Runtime(m) => f.write_str(m),
        }
    }
}

impl From<SimError> for CliError {
    fn from(e: SimError) -> Self {
        match e {
            SimError::Scenario(_) => CliError::Usage(e.to_string()),
            other => CliError::Runtime(other.to_string()),
        }
    }
}

impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Usage(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> Self {
        CliError::Usage(m.to_string())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("template") => cmd_template(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("send") => cmd_send(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        _ => {
            eprintln!(
                "usage: jmso-gateway template [N] [--slots S] [--out-dir D] | \
                 serve <scenario.json> --listen unix:/p|tcp:h:p [--trace t.jsonl] \
                 [--trace-every N] [--ckpt c.json] [--ckpt-every K] \
                 [--policy stall|drop|degrade] [--slot-ms M] [--ingest] [--hold] \
                 [--max-restarts N] [--backoff-ms B] [--backoff-max-ms B] \
                 [--step-delay-ms D] [--fail-at SLOT] | \
                 send <addr> <json-line | --file f.jsonl> | watch <addr>"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, CliError>
where
    T::Err: std::fmt::Display,
{
    match flag_value(args, flag) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|e| CliError::Usage(format!("bad {flag} {v:?}: {e}"))),
    }
}

// ---------------------------------------------------------------------------
// template
// ---------------------------------------------------------------------------

/// The deterministic schedule the pack shares between its live feed and
/// its declared batch plan: staggered arrivals, first user departs
/// mid-run.
fn pack_schedule(n: usize, slots: u64) -> (Vec<u64>, Vec<Option<u64>>) {
    let window = (slots / 3).max(1);
    let arrivals: Vec<u64> = (0..n as u64).map(|i| (i * 7) % window).collect();
    let mut departures: Vec<Option<u64>> = vec![None; n];
    if n > 1 && slots > 2 {
        departures[0] = Some((slots / 2).max(arrivals[0] + 1));
    }
    (arrivals, departures)
}

fn cmd_template(args: &[String]) -> Result<(), CliError> {
    let n: usize = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .map(|a| {
            a.parse()
                .map_err(|e| CliError::Usage(format!("bad user count {a:?}: {e}")))
        })
        .transpose()?
        .unwrap_or(6);
    if n == 0 {
        return Err("user count must be positive".to_string().into());
    }
    let slots: u64 = parse_flag(args, "--slots")?.unwrap_or(300);
    let dir = PathBuf::from(flag_value(args, "--out-dir").unwrap_or("."));

    // Quick-run sizing: small sessions that finish within a few hundred
    // slots, so crash/restart gates hit mid-run states quickly.
    let mut live = Scenario::paper_default(n);
    live.slots = slots;
    live.workload.size_range_kb = (500.0, 1500.0);
    live.record_series = false;

    let (arrivals, departures) = pack_schedule(n, slots);
    let mut batch = live.clone();
    batch.arrivals = ArrivalSpec::Declared {
        arrivals: arrivals.clone(),
        departures: departures.clone(),
    };

    let mut feed = String::new();
    let events: Vec<String> = arrivals
        .iter()
        .enumerate()
        .map(|(user, slot)| format!(r#"{{"kind":"arrive","user":{user},"slot":{slot}}}"#))
        .chain(departures.iter().enumerate().filter_map(|(user, d)| {
            d.map(|slot| format!(r#"{{"kind":"depart","user":{user},"slot":{slot}}}"#))
        }))
        .collect();
    feed.push_str(&format!(
        "{{\"cmd\":\"feed\",\"events\":[{}]}}\n",
        events.join(",")
    ));
    feed.push_str("{\"cmd\":\"start\"}\n");

    let write = |name: &str, text: &str| -> Result<(), CliError> {
        let path = dir.join(name);
        std::fs::write(&path, text)
            .map_err(|e| CliError::Runtime(format!("writing {}: {e}", path.display())))?;
        println!("wrote {}", path.display());
        Ok(())
    };
    let to_json = |s: &Scenario| {
        serde_json::to_string_pretty(s).map_err(|e| CliError::Runtime(format!("{e:?}")))
    };
    write("scenario.live.json", &format!("{}\n", to_json(&live)?))?;
    write("scenario.batch.json", &format!("{}\n", to_json(&batch)?))?;
    write("feed.jsonl", &feed)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------------

/// Process-wide signal flag: the handler can only touch a static.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `signal(2)` with a handler that only stores to an atomic
    // is async-signal-safe; both signals default to process death, so
    // any race during installation is benign.
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("serve: missing <scenario.json>")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Usage(format!("reading {path}: {e}")))?;
    let scenario: Scenario = serde_json::from_str(&text)
        .map_err(|e| CliError::Usage(format!("parsing {path}: {e:?}")))?;
    let listen: ListenSpec = flag_value(args, "--listen")
        .ok_or("serve: missing --listen unix:/path or tcp:host:port")?
        .parse()
        .map_err(CliError::Usage)?;

    let mut cfg = ServeConfig::new(scenario);
    cfg.trace_path = flag_value(args, "--trace").map(PathBuf::from);
    cfg.trace_every = parse_flag(args, "--trace-every")?.unwrap_or(1);
    cfg.ckpt_path = flag_value(args, "--ckpt").map(PathBuf::from);
    cfg.ckpt_every = parse_flag(args, "--ckpt-every")?.unwrap_or(0);
    cfg.policy = parse_flag::<LivePolicy>(args, "--policy")?.unwrap_or(LivePolicy::Stall);
    cfg.slot_ms = parse_flag(args, "--slot-ms")?;
    cfg.ingest = has_flag(args, "--ingest");
    cfg.hold = has_flag(args, "--hold");
    cfg.step_delay_ms = parse_flag(args, "--step-delay-ms")?.unwrap_or(0);
    cfg.fail_at = parse_flag(args, "--fail-at")?;
    let sup = SupervisorConfig {
        max_restarts: parse_flag(args, "--max-restarts")?.unwrap_or(3),
        backoff_base_ms: parse_flag(args, "--backoff-ms")?.unwrap_or(200),
        backoff_max_ms: parse_flag(args, "--backoff-max-ms")?.unwrap_or(5_000),
    };

    install_signal_handlers();
    let shutdown = Arc::new(AtomicBool::new(false));
    {
        // Bridge the async-signal-safe static into the service's flag.
        let shutdown = shutdown.clone();
        std::thread::spawn(move || loop {
            if SIGNALLED.load(Ordering::SeqCst) {
                shutdown.store(true, Ordering::SeqCst);
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        });
    }

    let bus = Arc::new(CommandBus::new(256));
    let fanout = Arc::new(FanOut::new());
    spawn_listener(&listen, bus.clone(), fanout.clone(), shutdown.clone())
        .map_err(|e| CliError::Runtime(format!("binding {listen}: {e}")))?;
    eprintln!("jmso-gateway: listening on {listen}");

    let end = supervise(&cfg, &sup, bus, fanout, shutdown)?;
    if let ListenSpec::Unix(p) = &listen {
        let _ = std::fs::remove_file(p);
    }
    match end {
        SupervisedEnd::Finished {
            outcome: Outcome::Done { slots_run },
            restarts,
        } => {
            eprintln!("jmso-gateway: done after {slots_run} slots ({restarts} restarts)");
            Ok(())
        }
        SupervisedEnd::Finished {
            outcome: Outcome::Interrupted { at_slot },
            ..
        } => {
            eprintln!("jmso-gateway: interrupted at slot {at_slot}; checkpoint written");
            Ok(())
        }
        SupervisedEnd::GaveUp { attempts } => Err(CliError::Runtime(format!(
            "engine kept panicking; gave up after {attempts} attempts"
        ))),
    }
}

// ---------------------------------------------------------------------------
// send / watch
// ---------------------------------------------------------------------------

enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    fn connect(spec: &ListenSpec) -> Result<Self, CliError> {
        let err = |e: std::io::Error| CliError::Runtime(format!("connecting {spec}: {e}"));
        match spec {
            ListenSpec::Unix(p) => UnixStream::connect(p).map(Conn::Unix).map_err(err),
            ListenSpec::Tcp(a) => TcpStream::connect(a.as_str()).map(Conn::Tcp).map_err(err),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

fn cmd_send(args: &[String]) -> Result<(), CliError> {
    let spec: ListenSpec = args
        .first()
        .ok_or("send: missing <addr>")?
        .parse()
        .map_err(CliError::Usage)?;
    let lines: Vec<String> = if let Some(f) = flag_value(args, "--file") {
        std::fs::read_to_string(f)
            .map_err(|e| CliError::Usage(format!("reading {f}: {e}")))?
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(String::from)
            .collect()
    } else {
        vec![args
            .get(1)
            .ok_or("send: missing <json-line> (or --file f.jsonl)")?
            .clone()]
    };
    let conn = Conn::connect(&spec)?;
    let mut reader = BufReader::new(conn);
    let mut all_ok = true;
    for line in lines {
        writeln!(reader.get_mut(), "{line}")
            .map_err(|e| CliError::Runtime(format!("sending: {e}")))?;
        let mut reply = String::new();
        reader
            .read_line(&mut reply)
            .map_err(|e| CliError::Runtime(format!("reading reply: {e}")))?;
        let reply = reply.trim_end();
        println!("{reply}");
        if !reply.contains(r#""ok":true"#) {
            all_ok = false;
        }
    }
    if all_ok {
        Ok(())
    } else {
        Err(CliError::Runtime("one or more commands rejected".into()))
    }
}

fn cmd_watch(args: &[String]) -> Result<(), CliError> {
    let spec: ListenSpec = args
        .first()
        .ok_or("watch: missing <addr>")?
        .parse()
        .map_err(CliError::Usage)?;
    let conn = Conn::connect(&spec)?;
    let mut reader = BufReader::new(conn);
    writeln!(reader.get_mut(), r#"{{"cmd":"subscribe"}}"#)
        .map_err(|e| CliError::Runtime(format!("sending: {e}")))?;
    let mut out = std::io::stdout().lock();
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()),
            Ok(_) => {
                if out.write_all(line.as_bytes()).is_err() {
                    return Ok(());
                }
                let _ = out.flush();
            }
            Err(e) => return Err(CliError::Runtime(format!("stream: {e}"))),
        }
    }
}
