//! Bounded command queue between socket handlers and the engine loop.
//!
//! Connection handlers push typed [`Command`]s; the engine loop drains
//! them at slot boundaries (or blocks on them while holding). The queue
//! is bounded — a flood of commands yields typed rejections at the
//! socket, never unbounded memory — and poison-proof: a panicked engine
//! task must not wedge the handlers that outlive it, so every lock
//! recovers the guard from a poisoned mutex (the queue holds plain
//! data, valid at every instruction boundary).

use jmso_gateway::{GwStatus, LiveEvent, ProtocolError};
use std::collections::VecDeque;
use std::sync::mpsc::SyncSender;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// One engine-loop request from a connection handler. Replies travel
/// over per-request rendezvous channels so handlers can time out
/// independently when the engine task is down between supervisor
/// attempts.
pub enum Command {
    /// Apply live session events to the slot schedule.
    Feed {
        /// Events, applied in order; the first rejection stops the batch.
        events: Vec<LiveEvent>,
        /// Outcome channel.
        reply: SyncSender<Result<(), ProtocolError>>,
    },
    /// Snapshot service status.
    Status {
        /// Outcome channel.
        reply: SyncSender<GwStatus>,
    },
    /// Leave the holding state and start the slot loop.
    Start {
        /// Outcome channel.
        reply: SyncSender<Result<(), ProtocolError>>,
    },
    /// Graceful shutdown: final checkpoint, drain, exit.
    Shutdown {
        /// Outcome channel.
        reply: SyncSender<Result<(), ProtocolError>>,
    },
}

/// Bounded MPSC queue with a condvar for the holding-state wait.
pub struct CommandBus {
    q: Mutex<VecDeque<Command>>,
    cv: Condvar,
    cap: usize,
}

impl CommandBus {
    /// A bus holding at most `cap` queued commands.
    pub fn new(cap: usize) -> Self {
        Self {
            q: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, VecDeque<Command>> {
        self.q.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueue a command; typed rejection when the queue is full.
    pub fn push(&self, cmd: Command) -> Result<(), ProtocolError> {
        let mut q = self.lock();
        if q.len() >= self.cap {
            return Err(ProtocolError::Reject {
                reason: format!("command queue full ({} pending)", q.len()),
            });
        }
        q.push_back(cmd);
        drop(q);
        self.cv.notify_all();
        Ok(())
    }

    /// Drain everything currently queued without blocking.
    pub fn drain(&self) -> Vec<Command> {
        self.lock().drain(..).collect()
    }

    /// Block up to `timeout` for at least one command, then drain.
    pub fn wait(&self, timeout: Duration) -> Vec<Command> {
        let q = self.lock();
        if q.is_empty() {
            let (mut q, _) = self
                .cv
                .wait_timeout(q, timeout)
                .unwrap_or_else(|e| e.into_inner());
            return q.drain(..).collect();
        }
        let mut q = q;
        q.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    #[test]
    fn push_bounded() {
        let bus = CommandBus::new(2);
        let (tx, _rx) = sync_channel(1);
        assert!(bus.push(Command::Start { reply: tx.clone() }).is_ok());
        assert!(bus.push(Command::Start { reply: tx.clone() }).is_ok());
        assert!(matches!(
            bus.push(Command::Start { reply: tx }),
            Err(ProtocolError::Reject { .. })
        ));
        assert_eq!(bus.drain().len(), 2);
        assert!(bus.drain().is_empty());
    }

    #[test]
    fn wait_times_out_empty() {
        let bus = CommandBus::new(4);
        assert!(bus.wait(Duration::from_millis(10)).is_empty());
    }
}
