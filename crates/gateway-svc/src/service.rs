//! The live service: a deadline-aware loop over [`jmso_sim::SlotDriver`].
//!
//! One [`LiveService`] instance is one supervisor attempt: it builds the
//! driver (resuming from a durable checkpoint when one is readable,
//! falling back to a cold start with a logged warning otherwise), then
//! runs the slot loop in real or accelerated time, draining socket
//! commands at slot boundaries, broadcasting telemetry through the
//! bounded fan-out, and writing periodic crash-safe checkpoints.
//!
//! Determinism contract: under [`LivePolicy::Stall`] with a scripted
//! feed, the trace file this service writes is byte-identical to the
//! batch run of the equivalent scenario (declared arrival plan), because
//! the batch loop and this loop step the exact same [`SlotDriver`].

use crate::bus::{Command, CommandBus};
use crate::fanout::FanOut;
use crate::policy::LivePolicy;
use jmso_gateway::{
    declared_rate_from_request, GwEvent, GwStatus, LiveEvent, ProtocolError, SvcState,
};
use jmso_sim::{
    DynFaults, EngineCheckpoint, Scenario, ScenarioError, SimError, SimWarning, SlotDriver,
    TraceRecorder,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything one service (and every supervisor rebuild of it) needs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The scenario to run.
    pub scenario: Scenario,
    /// Durable checkpoint sidecar; also the resume source on restart.
    pub ckpt_path: Option<PathBuf>,
    /// Checkpoint cadence in slots (0 = only the start/shutdown ones).
    pub ckpt_every: u64,
    /// Deadline overrun response.
    pub policy: LivePolicy,
    /// Wall-clock budget per slot, ms (`None` = accelerated, as fast as
    /// the hardware allows — no deadlines, so no overruns).
    pub slot_ms: Option<u64>,
    /// Final trace destination (written at completion, byte-identical
    /// to the batch trace of the equivalent run under `Stall`).
    pub trace_path: Option<PathBuf>,
    /// Trace downsampling window (1 = every slot).
    pub trace_every: u64,
    /// Live ingestion mode: defer every planned arrival and hold at
    /// slot 0 until sessions are fed over the socket and `start` is
    /// received.
    pub ingest: bool,
    /// Hold at slot 0 until a `start` command even without `--ingest`.
    pub hold: bool,
    /// Artificial per-slot work, ms — a load knob for demos and the
    /// deadline-overrun tests.
    pub step_delay_ms: u64,
    /// Fault-injection knob for the supervision tests: panic when the
    /// loop reaches this slot, on the first supervisor attempt only.
    pub fail_at: Option<u64>,
}

impl ServeConfig {
    /// A service around `scenario` with batch-like defaults: as-fast
    /// pacing, `Stall` policy, no sidecars, no holding.
    pub fn new(scenario: Scenario) -> Self {
        Self {
            scenario,
            ckpt_path: None,
            ckpt_every: 0,
            policy: LivePolicy::Stall,
            slot_ms: None,
            trace_path: None,
            trace_every: 1,
            ingest: false,
            hold: false,
            step_delay_ms: 0,
            fail_at: None,
        }
    }
}

/// How a service run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The run completed; the final trace (if configured) is on disk
    /// and the checkpoint sidecar was removed.
    Done {
        /// Slots executed.
        slots_run: u64,
    },
    /// Shutdown (signal or `shutdown` command) interrupted the run; a
    /// final checkpoint (if configured) is on disk for the next start.
    Interrupted {
        /// Next slot a resumed service will execute.
        at_slot: u64,
    },
}

/// One supervised attempt at running the scenario live.
pub struct LiveService {
    cfg: ServeConfig,
    bus: Arc<CommandBus>,
    fanout: Arc<FanOut>,
    shutdown: Arc<AtomicBool>,
    driver: SlotDriver<DynFaults>,
    rec: TraceRecorder,
    state: SvcState,
    stopping: bool,
    warnings: Vec<String>,
    dropped_slots: u64,
    degraded: bool,
    last_ckpt_slot: Option<u64>,
    record_watermark: usize,
    /// Deadline anchor: wall-clock instant at which `anchor.1` was due
    /// to start. `None` = re-anchor on the next paced slot.
    anchor: Option<(Instant, u64)>,
    startup_events: Vec<GwEvent>,
}

impl LiveService {
    /// Build one attempt: recorder, driver (resume or cold start), and
    /// the initial lifecycle state. `attempt` is the supervisor's
    /// restart counter — the `fail_at` fault fires only on attempt 0.
    pub fn build(
        cfg: ServeConfig,
        bus: Arc<CommandBus>,
        fanout: Arc<FanOut>,
        shutdown: Arc<AtomicBool>,
        attempt: u32,
    ) -> Result<Self, SimError> {
        let mut warnings = Vec::new();
        let mut startup_events = Vec::new();
        let fail_at = if attempt == 0 { cfg.fail_at } else { None };

        let mut rec = Self::fresh_recorder(&cfg);
        let resume_ck = match &cfg.ckpt_path {
            Some(p) if p.exists() => match EngineCheckpoint::read_file(p) {
                Ok(ck) => Some(ck),
                Err(e) => {
                    let w = SimWarning::CheckpointFallback {
                        reason: format!("{e}"),
                    };
                    warnings.push(w.to_string());
                    startup_events.push(GwEvent::ColdStart {
                        reason: w.to_string(),
                    });
                    None
                }
            },
            _ => None,
        };
        let (driver, resumed) = match resume_ck {
            Some(ck) => match cfg.scenario.driver(&mut rec, Some(&ck)) {
                Ok(d) => {
                    startup_events.push(GwEvent::Resumed {
                        slot: d.next_slot(),
                    });
                    (d, true)
                }
                Err(e) => {
                    // The sidecar parsed but did not restore (scenario
                    // drift, component mismatch): log, cold-start. The
                    // recorder may hold partially imported state — build
                    // a fresh one.
                    let w = SimWarning::CheckpointFallback {
                        reason: format!("{e}"),
                    };
                    warnings.push(w.to_string());
                    startup_events.push(GwEvent::ColdStart {
                        reason: w.to_string(),
                    });
                    rec = Self::fresh_recorder(&cfg);
                    (cfg.scenario.driver(&mut rec, None)?, false)
                }
            },
            None => (cfg.scenario.driver(&mut rec, None)?, false),
        };
        let mut driver = driver;
        let state = if resumed {
            // The fed schedule travels inside the checkpoint; no
            // holding, no re-feeding.
            SvcState::Running
        } else {
            if cfg.ingest {
                driver.defer_all_arrivals().map_err(SimError::Scenario)?;
            }
            if cfg.ingest || cfg.hold {
                SvcState::Holding
            } else {
                SvcState::Running
            }
        };
        if !resumed {
            startup_events.push(GwEvent::Started {
                slots: driver.horizon(),
            });
        }
        let record_watermark = rec.records().len();
        Ok(Self {
            cfg: ServeConfig { fail_at, ..cfg },
            bus,
            fanout,
            shutdown,
            driver,
            rec,
            state,
            stopping: false,
            warnings,
            dropped_slots: 0,
            degraded: false,
            last_ckpt_slot: None,
            record_watermark,
            anchor: None,
            startup_events,
        })
    }

    fn fresh_recorder(cfg: &ServeConfig) -> TraceRecorder {
        let mut rec = TraceRecorder::new().with_every(cfg.trace_every.max(1));
        // Ingest mode is an open-system workload by construction (live
        // arrivals); batch-equivalent declared plans carry the
        // live-population column too, so the bytes line up.
        if cfg.ingest || cfg.scenario.arrivals.is_open() {
            rec = rec.with_live_counts();
        }
        rec
    }

    /// Current status snapshot (also the `status` command reply).
    pub fn status(&self) -> GwStatus {
        GwStatus {
            state: self.state,
            slot: self.driver.next_slot(),
            slots: self.driver.horizon(),
            watching: self.driver.watching(),
            policy: self.cfg.policy.as_str().to_string(),
            dropped_slots: self.dropped_slots,
            dropped_subscribers: self.fanout.dropped(),
            last_checkpoint_slot: self.last_ckpt_slot,
            warnings: self.warnings.clone(),
        }
    }

    fn publish_event(&self, ev: &GwEvent) {
        if let Ok(line) = serde_json::to_string(ev) {
            self.fanout.broadcast(&line);
        }
    }

    /// Broadcast trace records accumulated since the last publication.
    /// `publish` false (a dropped slot) advances the watermark without
    /// broadcasting — the durable trace still carries the records.
    fn publish_new_records(&mut self, publish: bool) {
        let records = self.rec.records();
        if publish {
            for r in &records[self.record_watermark.min(records.len())..] {
                if let Ok(line) = serde_json::to_string(r) {
                    if self.fanout.broadcast(&line) > 0 {
                        self.publish_event(&GwEvent::SubscriberDropped {
                            total: self.fanout.dropped(),
                        });
                    }
                }
            }
        }
        self.record_watermark = records.len();
    }

    fn apply_events(&mut self, events: &[LiveEvent]) -> Result<(), ProtocolError> {
        let reject = |e: ScenarioError| ProtocolError::Reject {
            reason: e.to_string(),
        };
        for ev in events {
            match ev {
                LiveEvent::Arrive {
                    user,
                    slot,
                    request,
                } => {
                    if let Some(req) = request {
                        let rate = declared_rate_from_request(req)?;
                        self.driver.set_declared_rate(*user, rate).map_err(reject)?;
                    }
                    self.driver.set_arrival(*user, *slot).map_err(reject)?;
                }
                LiveEvent::Depart { user, slot } => {
                    self.driver.set_departure(*user, *slot).map_err(reject)?;
                }
            }
        }
        Ok(())
    }

    fn handle(&mut self, cmd: Command) {
        match cmd {
            Command::Feed { events, reply } => {
                let outcome = self.apply_events(&events);
                let _ = reply.send(outcome);
            }
            Command::Status { reply } => {
                let _ = reply.send(self.status());
            }
            Command::Start { reply } => {
                if self.state == SvcState::Holding {
                    self.state = SvcState::Running;
                    self.anchor = None;
                }
                let _ = reply.send(Ok(()));
            }
            Command::Shutdown { reply } => {
                self.stopping = true;
                let _ = reply.send(Ok(()));
            }
        }
    }

    fn write_checkpoint(&mut self) -> Result<(), SimError> {
        let Some(path) = self.cfg.ckpt_path.clone() else {
            return Ok(());
        };
        let ck = self
            .driver
            .checkpoint(&self.rec)
            .map_err(SimError::Checkpoint)?;
        ck.write_file(&path).map_err(SimError::Checkpoint)?;
        let slot = self.driver.next_slot();
        self.last_ckpt_slot = Some(slot);
        self.publish_event(&GwEvent::Checkpoint { slot });
        Ok(())
    }

    fn overrun(&mut self, slot: u64) -> bool {
        let action = self.cfg.policy.as_str().to_string();
        self.publish_event(&GwEvent::DeadlineOverrun { slot, action });
        match self.cfg.policy {
            LivePolicy::Stall => true,
            LivePolicy::DropSlots => {
                self.dropped_slots += 1;
                false
            }
            LivePolicy::Degrade => {
                if !self.degraded && self.driver.engage_degraded() {
                    self.degraded = true;
                    self.publish_event(&GwEvent::Degraded { slot });
                }
                true
            }
        }
    }

    /// Run the slot loop to completion, interruption, or panic (the
    /// supervisor catches the latter). Consumes the attempt — the
    /// supervisor builds a fresh one from the durable state on restart.
    pub fn run(mut self) -> Result<Outcome, SimError> {
        for ev in std::mem::take(&mut self.startup_events) {
            self.publish_event(&ev);
        }
        // In ingest mode the fed schedule exists only in memory until
        // the first checkpoint: anchor one at the running transition so
        // a crash at any executed slot resumes with the schedule.
        let mut start_ckpt_written = false;
        let pace = self.cfg.slot_ms.map(Duration::from_millis);
        loop {
            if self.shutdown.load(Ordering::SeqCst) || self.stopping {
                return self.interrupt();
            }
            if self.state == SvcState::Holding {
                for cmd in self.bus.wait(Duration::from_millis(100)) {
                    self.handle(cmd);
                }
                continue;
            }
            for cmd in self.bus.drain() {
                self.handle(cmd);
            }
            if self.stopping {
                return self.interrupt();
            }
            if self.driver.is_finished() {
                return self.complete();
            }
            let slot = self.driver.next_slot();
            if !start_ckpt_written {
                self.write_checkpoint()?;
                start_ckpt_written = true;
            } else if self.cfg.ckpt_every > 0
                && slot.is_multiple_of(self.cfg.ckpt_every)
                && self.last_ckpt_slot != Some(slot)
            {
                self.write_checkpoint()?;
            }
            let mut publish = true;
            if let Some(p) = pace {
                let now = Instant::now();
                let (t0, s0) = *self.anchor.get_or_insert((now, slot));
                let due = t0 + p.saturating_mul((slot - s0) as u32);
                if now < due {
                    std::thread::sleep(due - now);
                } else if now.duration_since(due) > p {
                    // More than one full budget late: the overrun
                    // policy decides, then the deadline clock
                    // re-anchors so lateness never compounds.
                    publish = self.overrun(slot);
                    self.anchor = Some((now, slot));
                }
            }
            if self.cfg.fail_at.is_some_and(|f| slot >= f) {
                // The one deliberate panic in this crate: the fault
                // injection knob the supervision tests use to exercise
                // catch_unwind + restart. Armed only via --fail-at.
                #[allow(clippy::panic)]
                {
                    panic!("injected failure at slot {slot}");
                }
            }
            if self.cfg.step_delay_ms > 0 {
                std::thread::sleep(Duration::from_millis(self.cfg.step_delay_ms));
            }
            self.driver.step(&mut self.rec);
            self.publish_new_records(publish);
        }
    }

    /// Graceful interruption: final checkpoint, drain, report.
    fn interrupt(mut self) -> Result<Outcome, SimError> {
        self.state = SvcState::Stopping;
        let at_slot = self.driver.next_slot();
        self.write_checkpoint()?;
        self.fanout.close();
        Ok(Outcome::Interrupted { at_slot })
    }

    /// Completion: settle the result, write the final trace, clear the
    /// checkpoint sidecar (the run is over; a restart must not resume
    /// it), surface simulation warnings, close the fan-out.
    fn complete(self) -> Result<Outcome, SimError> {
        let Self {
            cfg,
            fanout,
            driver,
            mut rec,
            ..
        } = self;
        let result = driver.finish(&mut rec);
        for w in &result.warnings {
            if let Ok(line) = serde_json::to_string(&GwEvent::Warning {
                message: w.to_string(),
            }) {
                fanout.broadcast(&line);
            }
        }
        let trace = rec.into_trace(&result.scheduler);
        if let Some(p) = &cfg.trace_path {
            trace.write_jsonl(p).map_err(SimError::Trace)?;
        }
        if let Some(p) = &cfg.ckpt_path {
            let _ = std::fs::remove_file(p);
        }
        if let Ok(line) = serde_json::to_string(&GwEvent::Done {
            slots_run: result.slots_run,
        }) {
            fanout.broadcast(&line);
        }
        fanout.close();
        Ok(Outcome::Done {
            slots_run: result.slots_run,
        })
    }
}
