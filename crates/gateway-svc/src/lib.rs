//! `jmso-gateway-svc` — the live gateway service (`jmso-gateway`
//! binary): a resilient long-lived front-end over the simulator core.
//!
//! Four layers (DESIGN.md §13):
//!
//! 1. **Ingestion** ([`net`], [`bus`]) — flow/session events as
//!    line-delimited JSON on a Unix/TCP socket, with per-connection
//!    read timeouts, a bounded command queue, and typed protocol errors
//!    that reject a malformed line without killing the session.
//! 2. **Deadline-aware slot loop** ([`service`], [`policy`]) — a
//!    real/accelerated-time driver over [`jmso_sim::SlotDriver`] that
//!    measures per-slot wall-clock budget and applies a configurable
//!    [`policy::LivePolicy`] on overrun instead of silently falling
//!    behind.
//! 3. **Telemetry fan-out with backpressure** ([`fanout`]) — JSONL
//!    slot records and service events to any number of subscribers
//!    over bounded channels; a slow consumer is dropped (counted,
//!    announced), never waited on.
//! 4. **Supervision and crash recovery** ([`supervisor`]) — periodic
//!    crash-safe checkpoints (CKPT v3 + `atomic_write`), automatic
//!    resume-on-restart with a cold-start fallback on corrupt sidecars,
//!    and a panic supervisor with bounded exponential backoff.
//!
//! Under [`policy::LivePolicy::Stall`] with a scripted feed, the trace
//! this service writes is byte-identical to the equivalent batch run —
//! the batch loop and the live loop step the same driver.

#![deny(missing_docs)]

pub mod bus;
pub mod fanout;
pub mod net;
pub mod policy;
pub mod service;
pub mod supervisor;

pub use bus::{Command, CommandBus};
pub use fanout::FanOut;
pub use net::{handle_connection, spawn_listener, ListenSpec};
pub use policy::LivePolicy;
pub use service::{LiveService, Outcome, ServeConfig};
pub use supervisor::{supervise, SupervisedEnd, SupervisorConfig};
