//! Supervision: restart a panicked engine task with bounded
//! exponential backoff.
//!
//! Each attempt is a fresh [`LiveService`] rebuilt from durable state
//! (the checkpoint sidecar), so a panic loses at most the slots since
//! the last checkpoint. The command bus and fan-out outlive attempts —
//! both recover poisoned locks — so connected clients keep their
//! sockets across a restart. After `max_restarts` failed recoveries the
//! supervisor gives up rather than loop forever.

use crate::bus::CommandBus;
use crate::fanout::FanOut;
use crate::service::{LiveService, Outcome, ServeConfig};
use jmso_gateway::GwEvent;
use jmso_sim::SimError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Restart policy.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Restarts attempted after a panic before giving up.
    pub max_restarts: u32,
    /// First backoff delay, ms; doubles per consecutive failure.
    pub backoff_base_ms: u64,
    /// Backoff ceiling, ms.
    pub backoff_max_ms: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_restarts: 3,
            backoff_base_ms: 200,
            backoff_max_ms: 5_000,
        }
    }
}

impl SupervisorConfig {
    /// Backoff before restart number `attempt` (1-based), exponential
    /// and capped.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let ms = self
            .backoff_base_ms
            .saturating_mul(1u64 << exp)
            .min(self.backoff_max_ms);
        Duration::from_millis(ms)
    }
}

/// How a supervised run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisedEnd {
    /// The service completed or was gracefully interrupted.
    Finished {
        /// The final attempt's outcome.
        outcome: Outcome,
        /// Panic recoveries performed along the way.
        restarts: u32,
    },
    /// The service kept panicking; the supervisor stopped retrying.
    GaveUp {
        /// Attempts made (initial run + restarts).
        attempts: u32,
    },
}

/// Run the service under supervision until it finishes, is interrupted,
/// exhausts its restart budget, or fails with a typed error (build and
/// I/O errors are not retried — they are deterministic, not crashes).
pub fn supervise(
    cfg: &ServeConfig,
    sup: &SupervisorConfig,
    bus: Arc<CommandBus>,
    fanout: Arc<FanOut>,
    shutdown: Arc<AtomicBool>,
) -> Result<SupervisedEnd, SimError> {
    let mut restarts = 0u32;
    loop {
        let svc = LiveService::build(
            cfg.clone(),
            bus.clone(),
            fanout.clone(),
            shutdown.clone(),
            restarts,
        )?;
        match catch_unwind(AssertUnwindSafe(move || svc.run())) {
            Ok(run_result) => {
                return run_result.map(|outcome| SupervisedEnd::Finished { outcome, restarts });
            }
            Err(panic) => {
                let what = panic_message(&panic);
                restarts += 1;
                if restarts > sup.max_restarts {
                    fanout.broadcast(
                        &serde_json::to_string(&GwEvent::Warning {
                            message: format!(
                                "engine task panicked ({what}); restart budget exhausted \
                                 after {} attempts",
                                restarts
                            ),
                        })
                        .unwrap_or_default(),
                    );
                    fanout.close();
                    return Ok(SupervisedEnd::GaveUp { attempts: restarts });
                }
                let delay = sup.backoff(restarts);
                fanout.broadcast(
                    &serde_json::to_string(&GwEvent::Warning {
                        message: format!(
                            "engine task panicked ({what}); restart {restarts}/{} in {}ms",
                            sup.max_restarts,
                            delay.as_millis()
                        ),
                    })
                    .unwrap_or_default(),
                );
                std::thread::sleep(delay);
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(SupervisedEnd::Finished {
                        outcome: Outcome::Interrupted { at_slot: 0 },
                        restarts,
                    });
                }
            }
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let sup = SupervisorConfig {
            max_restarts: 10,
            backoff_base_ms: 100,
            backoff_max_ms: 1_000,
        };
        assert_eq!(sup.backoff(1), Duration::from_millis(100));
        assert_eq!(sup.backoff(2), Duration::from_millis(200));
        assert_eq!(sup.backoff(3), Duration::from_millis(400));
        assert_eq!(sup.backoff(5), Duration::from_millis(1_000));
        assert_eq!(sup.backoff(20), Duration::from_millis(1_000));
    }
}
