//! Socket front-end: Unix / TCP listeners, per-connection line
//! protocol handlers.
//!
//! Each connection gets its own handler thread with a read timeout and
//! a bounded per-line buffer: an idle, slow, or hostile client costs
//! one thread and [`jmso_gateway::MAX_LINE_BYTES`] of memory, and a
//! malformed line gets a typed error reply without closing the
//! connection (an oversized line *does* close it — framing is lost).

use crate::bus::{Command, CommandBus};
use crate::fanout::FanOut;
use jmso_gateway::{parse_command, GwCommand, ProtocolError, MAX_LINE_BYTES};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError};
use std::sync::Arc;
use std::time::Duration;

/// Idle-connection read timeout.
const READ_TIMEOUT: Duration = Duration::from_secs(30);
/// How long a handler waits for the engine loop to answer a command
/// (covers supervisor backoff windows).
const REPLY_TIMEOUT: Duration = Duration::from_secs(10);
/// Telemetry lines buffered per subscriber before it is dropped.
const SUBSCRIBER_BUFFER: usize = 1024;

/// Where the service listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenSpec {
    /// `unix:/path/to.sock`
    Unix(PathBuf),
    /// `tcp:host:port`
    Tcp(String),
}

impl FromStr for ListenSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("empty unix socket path".into());
            }
            Ok(ListenSpec::Unix(PathBuf::from(path)))
        } else if let Some(addr) = s.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err("empty tcp address".into());
            }
            Ok(ListenSpec::Tcp(addr.to_string()))
        } else {
            Err(format!(
                "bad listen spec {s:?}: expected unix:/path or tcp:host:port"
            ))
        }
    }
}

impl std::fmt::Display for ListenSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListenSpec::Unix(p) => write!(f, "unix:{}", p.display()),
            ListenSpec::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// Bind the listener and spawn the accept loop. Returns once bound (so
/// callers can report readiness); accepted connections are served on
/// their own threads until the process exits or `shutdown` is set.
pub fn spawn_listener(
    spec: &ListenSpec,
    bus: Arc<CommandBus>,
    fanout: Arc<FanOut>,
    shutdown: Arc<AtomicBool>,
) -> io::Result<std::thread::JoinHandle<()>> {
    match spec {
        ListenSpec::Unix(path) => {
            // A previous run's socket file would make bind fail with
            // AddrInUse; the service owns the path, so replace it.
            if path.exists() {
                let _ = std::fs::remove_file(path);
            }
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            Ok(std::thread::spawn(move || {
                accept_loop(
                    || listener.accept().map(|(s, _)| s),
                    bus,
                    fanout,
                    shutdown,
                    |s| s.set_read_timeout(Some(READ_TIMEOUT)).map(|()| s),
                )
            }))
        }
        ListenSpec::Tcp(addr) => {
            let listener = TcpListener::bind(addr.as_str())?;
            listener.set_nonblocking(true)?;
            Ok(std::thread::spawn(move || {
                accept_loop(
                    || listener.accept().map(|(s, _)| s),
                    bus,
                    fanout,
                    shutdown,
                    |s| s.set_read_timeout(Some(READ_TIMEOUT)).map(|()| s),
                )
            }))
        }
    }
}

fn accept_loop<S, A, P>(
    mut accept: A,
    bus: Arc<CommandBus>,
    fanout: Arc<FanOut>,
    shutdown: Arc<AtomicBool>,
    prepare: P,
) where
    S: Read + Write + Send + 'static,
    A: FnMut() -> io::Result<S>,
    P: Fn(S) -> io::Result<S> + Copy + Send + 'static,
{
    while !shutdown.load(Ordering::SeqCst) {
        match accept() {
            Ok(stream) => {
                let bus = bus.clone();
                let fanout = fanout.clone();
                std::thread::spawn(move || {
                    if let Ok(stream) = prepare(stream) {
                        handle_connection(stream, &bus, &fanout);
                    }
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => break,
        }
    }
}

/// Read one newline-terminated line with a hard byte cap. `Ok(None)` is
/// EOF; `Err` of kind `WouldBlock`/`TimedOut` is the idle timeout.
fn read_line_bounded<R: BufRead>(r: &mut R) -> io::Result<Option<Result<String, ProtocolError>>> {
    let mut buf = Vec::new();
    let n = (&mut *r)
        .take(MAX_LINE_BYTES as u64 + 1)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') && buf.len() > MAX_LINE_BYTES {
        return Ok(Some(Err(ProtocolError::LineTooLong {
            limit: MAX_LINE_BYTES,
        })));
    }
    while matches!(buf.last(), Some(b'\n') | Some(b'\r')) {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(s) => Ok(Some(Ok(s))),
        Err(_) => Ok(Some(Err(ProtocolError::Parse {
            reason: "line is not valid UTF-8".into(),
        }))),
    }
}

fn reply_err(e: &ProtocolError) -> String {
    format!(
        r#"{{"ok":false,"error":{}}}"#,
        serde_json::to_string(e).unwrap_or_else(|_| "null".into())
    )
}

/// Serve one connection: read command lines, reply per line, and — on
/// `subscribe` — switch to streaming telemetry until the subscription
/// ends.
pub fn handle_connection<S: Read + Write>(stream: S, bus: &CommandBus, fanout: &FanOut) {
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_line_bounded(&mut reader) {
            Ok(Some(Ok(line))) => line,
            Ok(Some(Err(e))) => {
                // Typed rejection; LineTooLong loses framing, so that
                // one also closes the connection.
                let fatal = matches!(e, ProtocolError::LineTooLong { .. });
                let _ = writeln!(reader.get_mut(), "{}", reply_err(&e));
                if fatal {
                    return;
                }
                continue;
            }
            Ok(None) | Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let cmd = match parse_command(&line) {
            Ok(c) => c,
            Err(e) => {
                // Malformed line: reject it, keep the session.
                if writeln!(reader.get_mut(), "{}", reply_err(&e)).is_err() {
                    return;
                }
                continue;
            }
        };
        match cmd {
            GwCommand::Subscribe => {
                let rx = fanout.subscribe(SUBSCRIBER_BUFFER);
                if writeln!(reader.get_mut(), r#"{{"ok":true}}"#).is_err() {
                    return;
                }
                let w = reader.get_mut();
                // Stream until the service closes the fan-out, this
                // subscriber is dropped for falling behind, or the
                // client goes away.
                while let Ok(line) = rx.recv() {
                    if writeln!(w, "{line}").is_err() {
                        return;
                    }
                }
                return;
            }
            GwCommand::Feed { events } => {
                let (tx, rx) = sync_channel(1);
                let sent = bus.push(Command::Feed { events, reply: tx });
                if !write_roundtrip_reply(reader.get_mut(), sent, &rx) {
                    return;
                }
            }
            GwCommand::Start => {
                let (tx, rx) = sync_channel(1);
                let sent = bus.push(Command::Start { reply: tx });
                if !write_roundtrip_reply(reader.get_mut(), sent, &rx) {
                    return;
                }
            }
            GwCommand::Shutdown => {
                let (tx, rx) = sync_channel(1);
                let sent = bus.push(Command::Shutdown { reply: tx });
                if !write_roundtrip_reply(reader.get_mut(), sent, &rx) {
                    return;
                }
            }
            GwCommand::Status => {
                let (tx, rx) = sync_channel(1);
                let out = match bus.push(Command::Status { reply: tx }) {
                    Err(e) => reply_err(&e),
                    Ok(()) => match rx.recv_timeout(REPLY_TIMEOUT) {
                        Ok(status) => format!(
                            r#"{{"ok":true,"status":{}}}"#,
                            serde_json::to_string(&status).unwrap_or_else(|_| "null".into())
                        ),
                        Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                            reply_err(&ProtocolError::Reject {
                                reason: "service busy or restarting".into(),
                            })
                        }
                    },
                };
                if writeln!(reader.get_mut(), "{out}").is_err() {
                    return;
                }
            }
        }
    }
}

/// Await an engine-loop ack and write the reply line. Returns false
/// when the connection is gone.
fn write_roundtrip_reply<W: Write>(
    w: &mut W,
    sent: Result<(), ProtocolError>,
    rx: &std::sync::mpsc::Receiver<Result<(), ProtocolError>>,
) -> bool {
    let out = match sent {
        Err(e) => reply_err(&e),
        Ok(()) => match rx.recv_timeout(REPLY_TIMEOUT) {
            Ok(Ok(())) => r#"{"ok":true}"#.to_string(),
            Ok(Err(e)) => reply_err(&e),
            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                reply_err(&ProtocolError::Reject {
                    reason: "service busy or restarting".into(),
                })
            }
        },
    };
    writeln!(w, "{out}").is_ok()
}
