//! Telemetry fan-out with backpressure.
//!
//! The engine loop broadcasts JSONL lines (slot records and service
//! events) to every subscriber over bounded channels. The loop never
//! blocks on a consumer: a subscriber whose channel is full is dropped
//! on the spot — counted and announced — which is the live-mode
//! backpressure contract (shed the slow consumer, not the deadline).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Mutex, MutexGuard};

struct Subscriber {
    tx: SyncSender<String>,
}

/// Subscriber registry shared between socket handlers (register) and
/// the engine loop (broadcast). Poison-proof like the command bus: the
/// registry holds plain data and must survive a panicked engine task.
pub struct FanOut {
    subs: Mutex<Vec<Subscriber>>,
    dropped: AtomicU64,
}

impl FanOut {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            subs: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Vec<Subscriber>> {
        self.subs.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Register a subscriber; lines arrive on the returned receiver
    /// until it falls `capacity` lines behind (dropped) or the service
    /// closes the registry (stream ends).
    pub fn subscribe(&self, capacity: usize) -> Receiver<String> {
        let (tx, rx) = sync_channel(capacity.max(1));
        self.lock().push(Subscriber { tx });
        rx
    }

    /// Subscribers currently registered.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nobody is subscribed.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Subscribers dropped for falling behind, total.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Send one line to every subscriber. Full channels mean the
    /// consumer fell behind: the subscriber is removed and counted.
    /// Disconnected receivers are removed silently (the consumer left).
    /// Returns how many subscribers were dropped for falling behind by
    /// this call.
    pub fn broadcast(&self, line: &str) -> u64 {
        let mut subs = self.lock();
        let mut dropped_now = 0;
        subs.retain(|s| match s.tx.try_send(line.to_string()) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) => {
                dropped_now += 1;
                false
            }
            Err(TrySendError::Disconnected(_)) => false,
        });
        if dropped_now > 0 {
            self.dropped.fetch_add(dropped_now, Ordering::Relaxed);
        }
        dropped_now
    }

    /// Drop every subscriber sender, ending all streams (receivers see
    /// the channel close once they drain what was already queued).
    pub fn close(&self) {
        self.lock().clear();
    }
}

impl Default for FanOut {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_reaches_all() {
        let f = FanOut::new();
        let a = f.subscribe(8);
        let b = f.subscribe(8);
        assert_eq!(f.broadcast("x"), 0);
        assert_eq!(a.recv().expect("a"), "x");
        assert_eq!(b.recv().expect("b"), "x");
    }

    #[test]
    fn slow_subscriber_dropped_not_blocking() {
        let f = FanOut::new();
        let slow = f.subscribe(1);
        let fast = f.subscribe(16);
        assert_eq!(f.broadcast("1"), 0);
        // `slow` never drains: its channel (capacity 1) is now full, so
        // the next broadcast drops it instead of blocking.
        assert_eq!(f.broadcast("2"), 1);
        assert_eq!(f.dropped(), 1);
        assert_eq!(f.len(), 1);
        assert_eq!(fast.recv().expect("fast 1"), "1");
        assert_eq!(fast.recv().expect("fast 2"), "2");
        // The dropped subscriber still gets what was queued, then EOF.
        assert_eq!(slow.recv().expect("queued"), "1");
        assert!(slow.recv().is_err());
    }

    #[test]
    fn close_ends_streams() {
        let f = FanOut::new();
        let rx = f.subscribe(4);
        f.broadcast("tail");
        f.close();
        assert_eq!(rx.recv().expect("queued line"), "tail");
        assert!(rx.recv().is_err());
        assert_eq!(f.broadcast("after"), 0);
    }
}
