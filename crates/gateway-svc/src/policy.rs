//! Deadline overrun policy for the live slot loop.
//!
//! Live mode has different semantics than batch (the gst-plugins-rs
//! live-feed lesson): when a slot misses its wall-clock budget the loop
//! must decide between falling behind, shedding output, or shedding
//! work — silently spiralling is never an option. The policy is a
//! config knob; the loop re-anchors its deadline clock after every
//! overrun so one late slot never cascades into permanent lateness
//! arithmetic.

use std::str::FromStr;

/// What the live loop does when a slot overruns its wall-clock budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LivePolicy {
    /// Batch semantics: run every slot and fall behind wall-clock.
    /// Telemetry stays byte-identical to the batch run — the policy the
    /// `SVC=1` determinism gate pins.
    #[default]
    Stall,
    /// Skip the late slot's telemetry publication (the simulation still
    /// executes, so the durable trace stays complete) and account it in
    /// `dropped_slots`.
    DropSlots,
    /// Switch the scheduler into its degraded best-effort mode
    /// (latched; see `Scheduler::engage_degraded`) so subsequent slots
    /// cost less.
    Degrade,
}

impl LivePolicy {
    /// Wire/status label.
    pub fn as_str(&self) -> &'static str {
        match self {
            LivePolicy::Stall => "stall",
            LivePolicy::DropSlots => "drop",
            LivePolicy::Degrade => "degrade",
        }
    }
}

impl std::fmt::Display for LivePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for LivePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "stall" => Ok(LivePolicy::Stall),
            "drop" => Ok(LivePolicy::DropSlots),
            "degrade" => Ok(LivePolicy::Degrade),
            other => Err(format!(
                "unknown policy {other:?}: expected stall | drop | degrade"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        for p in [
            LivePolicy::Stall,
            LivePolicy::DropSlots,
            LivePolicy::Degrade,
        ] {
            assert_eq!(p.as_str().parse::<LivePolicy>(), Ok(p));
        }
        assert!("never".parse::<LivePolicy>().is_err());
    }
}
