//! Integration tests for the live gateway service: live ≡ batch byte
//! identity under `Stall`, crash recovery through the supervisor,
//! deadline-overrun policies that never stall the loop, slow-subscriber
//! eviction, and corrupt-checkpoint cold starts.

use jmso_gateway::LiveEvent;
use jmso_gateway_svc::{
    supervise, Command, CommandBus, FanOut, LivePolicy, LiveService, Outcome, ServeConfig,
    SupervisedEnd, SupervisorConfig,
};
use jmso_sim::{ArrivalSpec, Scenario, SchedulerSpec, WorkloadSpec};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::mpsc::sync_channel;
use std::sync::Arc;

fn quick(n: usize, slots: u64) -> Scenario {
    let mut s = Scenario::paper_default(n);
    s.slots = slots;
    s.workload = WorkloadSpec {
        size_range_kb: (500.0, 1500.0),
        rate_range_kbps: (300.0, 600.0),
        vbr_levels: None,
        vbr_segment_slots: 30,
    };
    s
}

/// The session schedule both sides share: staggered arrivals, user 0
/// departs mid-run.
fn schedule(n: usize, slots: u64) -> (Vec<u64>, Vec<Option<u64>>) {
    let arrivals: Vec<u64> = (0..n as u64).map(|i| i * 7).collect();
    let mut departures = vec![None; n];
    departures[0] = Some(slots / 2);
    (arrivals, departures)
}

fn feed_events(arrivals: &[u64], departures: &[Option<u64>]) -> Vec<LiveEvent> {
    let mut evs: Vec<LiveEvent> = arrivals
        .iter()
        .enumerate()
        .map(|(user, &slot)| LiveEvent::Arrive {
            user,
            slot,
            request: None,
        })
        .collect();
    evs.extend(
        departures
            .iter()
            .enumerate()
            .filter_map(|(user, d)| d.map(|slot| LiveEvent::Depart { user, slot })),
    );
    evs
}

fn tmp_path(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("jmso-gw-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Queue a feed + start ahead of the run; the holding loop drains them.
fn preload_feed(bus: &CommandBus, events: Vec<LiveEvent>) {
    let (tx, _rx) = sync_channel(1);
    bus.push(Command::Feed { events, reply: tx })
        .expect("queue feed");
    let (tx, _rx) = sync_channel(1);
    bus.push(Command::Start { reply: tx }).expect("queue start");
}

fn run_service(cfg: ServeConfig, bus: Arc<CommandBus>, fanout: Arc<FanOut>) -> Outcome {
    let shutdown = Arc::new(AtomicBool::new(false));
    let svc = LiveService::build(cfg, bus, fanout, shutdown, 0).expect("build service");
    svc.run().expect("run service")
}

fn golden_batch_trace(n: usize, slots: u64, path: &std::path::Path) {
    let (arrivals, departures) = schedule(n, slots);
    let mut batch = quick(n, slots);
    batch.arrivals = ArrivalSpec::Declared {
        arrivals,
        departures,
    };
    let (_result, trace) = batch.run_traced(1).expect("batch run");
    trace.write_jsonl(path).expect("write golden");
}

/// Tentpole determinism claim: a scripted live-ingest run under `Stall`
/// writes the exact bytes of the equivalent batch run with a declared
/// arrival plan.
#[test]
fn live_stall_trace_matches_batch_bytes() {
    let (n, slots) = (4, 240);
    let golden = tmp_path("stall-golden.jsonl");
    golden_batch_trace(n, slots, &golden);

    let live_trace = tmp_path("stall-live.jsonl");
    let mut cfg = ServeConfig::new(quick(n, slots));
    cfg.ingest = true;
    cfg.trace_path = Some(live_trace.clone());

    let bus = Arc::new(CommandBus::new(16));
    let (arrivals, departures) = schedule(n, slots);
    preload_feed(&bus, feed_events(&arrivals, &departures));
    let outcome = run_service(cfg, bus, Arc::new(FanOut::new()));
    assert!(matches!(outcome, Outcome::Done { .. }));

    let got = std::fs::read(&live_trace).expect("read live trace");
    let want = std::fs::read(&golden).expect("read golden trace");
    assert!(!want.is_empty());
    assert_eq!(
        got, want,
        "live Stall trace must be byte-identical to batch"
    );
    let _ = std::fs::remove_file(&golden);
    let _ = std::fs::remove_file(&live_trace);
}

/// Crash recovery: the engine task panics mid-run (attempt 0 only), the
/// supervisor restarts it, the restart resumes from the periodic
/// checkpoint, and the final trace still matches the uninterrupted
/// batch golden byte-for-byte.
#[test]
fn supervised_crash_resume_matches_golden() {
    let (n, slots) = (4, 240);
    let golden = tmp_path("crash-golden.jsonl");
    golden_batch_trace(n, slots, &golden);

    let live_trace = tmp_path("crash-live.jsonl");
    let ckpt = tmp_path("crash-ckpt.json");
    let mut cfg = ServeConfig::new(quick(n, slots));
    cfg.ingest = true;
    cfg.trace_path = Some(live_trace.clone());
    cfg.ckpt_path = Some(ckpt.clone());
    // The 4 quick sessions drain by ~slot 24: checkpoint often and
    // crash mid-drain so the restart genuinely resumes.
    cfg.ckpt_every = 8;
    cfg.fail_at = Some(12);

    let bus = Arc::new(CommandBus::new(16));
    let (arrivals, departures) = schedule(n, slots);
    preload_feed(&bus, feed_events(&arrivals, &departures));
    let sup = SupervisorConfig {
        max_restarts: 3,
        backoff_base_ms: 1,
        backoff_max_ms: 5,
    };
    let end = supervise(
        &cfg,
        &sup,
        bus,
        Arc::new(FanOut::new()),
        Arc::new(AtomicBool::new(false)),
    )
    .expect("supervised run");
    match end {
        SupervisedEnd::Finished {
            outcome: Outcome::Done { .. },
            restarts,
        } => assert_eq!(restarts, 1, "exactly one panic recovery expected"),
        other => panic!("unexpected end: {other:?}"),
    }

    let got = std::fs::read(&live_trace).expect("read live trace");
    let want = std::fs::read(&golden).expect("read golden trace");
    assert_eq!(got, want, "resumed trace must equal uninterrupted golden");
    assert!(
        !ckpt.exists(),
        "completion must clear the checkpoint sidecar"
    );
    let _ = std::fs::remove_file(&golden);
    let _ = std::fs::remove_file(&live_trace);
}

fn drain_lines(rx: &std::sync::mpsc::Receiver<String>) -> Vec<String> {
    rx.try_iter().collect()
}

/// DropSlots: with a 1ms budget and 5ms of forced work per slot, every
/// slot overruns — the loop must still complete the whole horizon,
/// skipping telemetry (not simulation) for the late slots.
#[test]
fn drop_slots_policy_never_stalls() {
    let mut cfg = ServeConfig::new(quick(3, 60));
    cfg.policy = LivePolicy::DropSlots;
    cfg.slot_ms = Some(1);
    cfg.step_delay_ms = 5;

    let fanout = Arc::new(FanOut::new());
    let rx = fanout.subscribe(4096);
    let outcome = run_service(cfg, Arc::new(CommandBus::new(4)), fanout);
    assert!(matches!(outcome, Outcome::Done { slots_run } if slots_run > 0));

    let lines = drain_lines(&rx);
    assert!(
        lines
            .iter()
            .any(|l| l.contains(r#""event":"deadline_overrun"#) && l.contains(r#""action":"drop"#)),
        "expected deadline_overrun events under DropSlots"
    );
    assert!(
        lines.iter().any(|l| l.contains(r#""event":"done"#)),
        "loop must reach completion"
    );
}

/// Degrade: overruns latch the scheduler into its degraded mode (RTMA →
/// best-effort) and the loop keeps meeting the horizon.
#[test]
fn degrade_policy_engages_scheduler_and_completes() {
    let mut cfg = ServeConfig::new(quick(3, 60).with_scheduler(SchedulerSpec::Rtma {
        phi_mj: 50.0,
        best_effort: false,
    }));
    cfg.policy = LivePolicy::Degrade;
    cfg.slot_ms = Some(1);
    cfg.step_delay_ms = 5;

    let fanout = Arc::new(FanOut::new());
    let rx = fanout.subscribe(4096);
    let outcome = run_service(cfg, Arc::new(CommandBus::new(4)), fanout);
    assert!(matches!(outcome, Outcome::Done { slots_run } if slots_run > 0));

    let lines = drain_lines(&rx);
    assert!(
        lines.iter().any(|l| l.contains(r#""event":"degraded"#)),
        "expected a degraded event under Degrade policy"
    );
    assert!(
        lines.iter().any(|l| l.contains(r#""event":"done"#)),
        "loop must reach completion"
    );
}

/// A subscriber that never drains its channel is evicted (and counted)
/// instead of stalling the slot loop.
#[test]
fn slow_subscriber_is_dropped_not_blocking() {
    let mut cfg = ServeConfig::new(quick(3, 120));
    cfg.trace_every = 1;

    let fanout = Arc::new(FanOut::new());
    // Capacity 1 and never drained: the second record evicts it.
    let _stuck = fanout.subscribe(1);
    let outcome = run_service(cfg, Arc::new(CommandBus::new(4)), fanout.clone());
    assert!(matches!(outcome, Outcome::Done { .. }));
    assert!(
        fanout.dropped() >= 1,
        "slow subscriber must be dropped and counted"
    );
    assert_eq!(fanout.len(), 0, "fan-out drained at completion");
}

/// A corrupt checkpoint sidecar must cold-start with a logged warning,
/// never panic, and still complete the run.
#[test]
fn corrupt_checkpoint_cold_starts_with_warning() {
    let ckpt = tmp_path("corrupt-ckpt.json");
    std::fs::write(&ckpt, b"{ this is not a checkpoint").expect("plant corrupt sidecar");

    let mut cfg = ServeConfig::new(quick(3, 60));
    cfg.ckpt_path = Some(ckpt.clone());

    let bus = Arc::new(CommandBus::new(4));
    let fanout = Arc::new(FanOut::new());
    let rx = fanout.subscribe(4096);
    let svc = LiveService::build(
        cfg,
        bus,
        fanout.clone(),
        Arc::new(AtomicBool::new(false)),
        0,
    )
    .expect("corrupt sidecar must not fail the build");
    let status = svc.status();
    assert!(
        status
            .warnings
            .iter()
            .any(|w| w.contains("checkpoint unusable, cold-started")),
        "expected a cold-start warning, got {:?}",
        status.warnings
    );
    let outcome = svc.run().expect("run after cold start");
    assert!(matches!(outcome, Outcome::Done { .. }));
    let lines = drain_lines(&rx);
    assert!(
        lines.iter().any(|l| l.contains(r#""event":"cold_start"#)),
        "cold_start event must be broadcast"
    );
    assert!(!ckpt.exists(), "completion clears the sidecar");
}
