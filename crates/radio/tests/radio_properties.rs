//! Property-based tests for the radio substrate.

use jmso_radio::rrc::tail_energy_between;
use jmso_radio::signal::SignalSpec;
use jmso_radio::{
    tail_energy, Dbm, KbPerSec, LinearRssiThroughput, MilliWatts, PowerModel, RrcConfig,
    RrcMachine, RssiPowerModel, ThroughputModel,
};
use proptest::prelude::*;

fn arb_rrc() -> impl Strategy<Value = RrcConfig> {
    (10.0f64..2000.0, 0.0f64..1000.0, 0.01f64..20.0, 0.0f64..20.0).prop_map(|(pd, pf, t1, t2)| {
        RrcConfig {
            p_dch: MilliWatts(pd),
            p_fach: MilliWatts(pf),
            t1,
            t2,
        }
    })
}

proptest! {
    /// Eq. (4) is monotone non-decreasing in t for any parameterisation.
    #[test]
    fn tail_energy_monotone(cfg in arb_rrc(), a in 0.0f64..50.0, b in 0.0f64..50.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(tail_energy(&cfg, hi).value() >= tail_energy(&cfg, lo).value() - 1e-9);
    }

    /// Eq. (4) saturates at Pd·T1 + Pf·T2.
    #[test]
    fn tail_energy_saturates(cfg in arb_rrc(), t in 0.0f64..100.0) {
        let cap = cfg.full_tail_energy().value();
        prop_assert!(tail_energy(&cfg, t).value() <= cap + 1e-9);
        prop_assert!((tail_energy(&cfg, cfg.full_tail_duration() + t).value() - cap).abs() < 1e-9);
    }

    /// The incremental machine equals the closed form regardless of how the
    /// idle interval is chopped into slots.
    #[test]
    fn machine_equals_closed_form(
        cfg in arb_rrc(),
        slots in proptest::collection::vec(0.01f64..3.0, 1..30),
    ) {
        let mut m = RrcMachine::new(cfg);
        let mut acc = 0.0;
        let mut t = 0.0;
        for dt in &slots {
            acc += m.on_idle(*dt).value();
            t += dt;
        }
        prop_assert!((acc - tail_energy(&cfg, t).value()).abs() < 1e-6);
    }

    /// Interval tail energy is additive: [a,b] + [b,c] = [a,c].
    #[test]
    fn tail_between_additive(cfg in arb_rrc(), a in 0.0f64..20.0, d1 in 0.0f64..10.0, d2 in 0.0f64..10.0) {
        let b = a + d1;
        let c = b + d2;
        let lhs = tail_energy_between(&cfg, a, b).value() + tail_energy_between(&cfg, b, c).value();
        let rhs = tail_energy_between(&cfg, a, c).value();
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    /// Throughput model is monotone and its inverse roundtrips above the floor.
    #[test]
    fn throughput_monotone_and_invertible(s1 in -110.0f64..-50.0, s2 in -110.0f64..-50.0) {
        let m = LinearRssiThroughput::paper();
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        prop_assert!(m.throughput(Dbm(hi)).value() >= m.throughput(Dbm(lo)).value());
        let v = m.throughput(Dbm(s1));
        prop_assert!((m.signal_for(v).value() - s1).abs() < 1e-6);
    }

    /// Per-byte power is positive and decreasing in signal over the paper range.
    #[test]
    fn power_positive_and_decreasing(s1 in -110.0f64..-50.0, s2 in -110.0f64..-50.0) {
        let m = RssiPowerModel::paper();
        prop_assert!(m.energy_per_kb(Dbm(s1)) > 0.0);
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        prop_assert!(m.energy_per_kb(Dbm(hi)) <= m.energy_per_kb(Dbm(lo)) + 1e-12);
    }

    /// Full-rate power inversion roundtrips.
    #[test]
    fn full_rate_power_roundtrip(v in 100.0f64..5000.0) {
        let m = RssiPowerModel::paper();
        let p = m.full_rate_power_at(KbPerSec(v));
        prop_assert!((m.throughput_for_power(p).value() - v).abs() < 1e-6);
    }

    /// Every signal spec yields samples within physical range and is
    /// deterministic per seed.
    #[test]
    fn signal_specs_bounded_and_deterministic(seed in 0u64..1000, idx in 0usize..40) {
        for spec in [
            SignalSpec::paper_default(),
            SignalSpec::Markov { min_dbm: -110.0, max_dbm: -50.0, levels: 16, move_prob: 0.3 },
        ] {
            let sample = |s: u64| -> Vec<f64> {
                let mut m = spec.build(idx, 40, s);
                (0..64).map(|n| m.sample(n).value()).collect()
            };
            let a = sample(seed);
            let b = sample(seed);
            prop_assert_eq!(&a, &b);
            for v in &a {
                prop_assert!((-110.0..=-50.0).contains(v));
            }
        }
    }
}
