//! Frame-level transmission — the physical layer beneath the slot model.
//!
//! The paper's transmission model (§III-B) rests on the physical layer
//! moving "frames with fixed length (denoted as δ) decided by the
//! spreading factor", then aggregates whole slots: a shard of `d` KB at
//! signal `sig` costs `P(sig)·d` (Eq. 3) and occupies `d/v(sig)` seconds.
//! This module simulates the transfer frame by frame, optionally with the
//! signal drifting *within* the slot (linear interpolation between the
//! slot-boundary samples), so the aggregation can be validated:
//!
//! * with a constant within-slot signal, the frame-level totals equal the
//!   slot-level closed forms exactly (up to the last partial frame);
//! * with a drifting signal, the slot model is a first-order
//!   approximation whose error this module quantifies (see the
//!   `abl_frames` ablation — fractions of a percent at the paper's slot
//!   length, which is why the slot model is sound).

use crate::power::{PowerModel, RssiPowerModel};
use crate::throughput::{LinearRssiThroughput, ThroughputModel};
use crate::types::{Dbm, MilliJoules};

/// Outcome of transferring one shard frame by frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameTransfer {
    /// Radio-active time for the shard, seconds.
    pub duration_s: f64,
    /// Transmission energy, mJ.
    pub energy: MilliJoules,
    /// Frames sent (the last may be partial).
    pub frames: u64,
}

/// Frame-by-frame transfer simulator.
#[derive(Debug, Clone, Copy)]
pub struct FrameLevelLink {
    /// Physical frame length, KB.
    pub frame_kb: f64,
    /// Throughput fit.
    pub throughput: LinearRssiThroughput,
    /// Power fit.
    pub power: RssiPowerModel,
}

impl FrameLevelLink {
    /// Build a link with the paper's fits and the given frame length.
    pub fn paper(frame_kb: f64) -> Self {
        assert!(frame_kb > 0.0, "frame length must be positive");
        Self {
            frame_kb,
            throughput: LinearRssiThroughput::paper(),
            power: RssiPowerModel::paper(),
        }
    }

    /// Transfer `kb` kilobytes while the signal drifts linearly from
    /// `sig_start` to `sig_end` over the course of the transfer. Each
    /// frame is billed at the signal in effect when it starts.
    pub fn transfer(&self, sig_start: Dbm, sig_end: Dbm, kb: f64) -> FrameTransfer {
        if kb <= 0.0 {
            return FrameTransfer {
                duration_s: 0.0,
                energy: MilliJoules(0.0),
                frames: 0,
            };
        }
        let n_frames = (kb / self.frame_kb).ceil() as u64;
        let mut sent_kb = 0.0;
        let mut duration = 0.0;
        let mut energy = 0.0;
        for f in 0..n_frames {
            let progress = if n_frames > 1 {
                f as f64 / (n_frames - 1) as f64
            } else {
                0.0
            };
            let sig = Dbm(sig_start.value() + (sig_end.value() - sig_start.value()) * progress);
            let frame_kb = self.frame_kb.min(kb - sent_kb);
            let v = self.throughput.throughput(sig).value();
            // A frame that cannot move at zero throughput would hang the
            // link; treat it as stalled for the full residual.
            if v <= f64::EPSILON {
                return FrameTransfer {
                    duration_s: f64::INFINITY,
                    energy: MilliJoules(energy),
                    frames: f,
                };
            }
            duration += frame_kb / v;
            energy += self.power.energy_per_kb(sig) * frame_kb;
            sent_kb += frame_kb;
        }
        FrameTransfer {
            duration_s: duration,
            energy: MilliJoules(energy),
            frames: n_frames,
        }
    }

    /// The slot-level closed forms for the same shard at a fixed signal:
    /// `(d/v(sig), P(sig)·d)` — what Eqs. (1)/(3) charge.
    pub fn slot_model(&self, sig: Dbm, kb: f64) -> (f64, MilliJoules) {
        let v = self.throughput.throughput(sig).value();
        (kb / v, MilliJoules(self.power.energy_per_kb(sig) * kb))
    }

    /// Relative error of the slot model's energy against the frame-level
    /// simulation for a shard transferred under a drifting signal.
    pub fn aggregation_error(&self, sig_start: Dbm, sig_end: Dbm, kb: f64) -> f64 {
        let fine = self.transfer(sig_start, sig_end, kb);
        // The slot model samples the signal once, at the slot boundary.
        let (_, coarse) = self.slot_model(sig_start, kb);
        if fine.energy.value() <= 0.0 {
            0.0
        } else {
            (coarse.value() - fine.energy.value()).abs() / fine.energy.value()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_matches_slot_model_exactly() {
        let link = FrameLevelLink::paper(50.0);
        for kb in [50.0, 500.0, 2300.0] {
            for sig in [-110.0, -80.0, -50.0] {
                let fine = link.transfer(Dbm(sig), Dbm(sig), kb);
                let (dur, energy) = link.slot_model(Dbm(sig), kb);
                assert!(
                    (fine.duration_s - dur).abs() < 1e-12,
                    "duration at {sig}/{kb}"
                );
                assert!(
                    (fine.energy.value() - energy.value()).abs() < 1e-9,
                    "energy at {sig}/{kb}"
                );
            }
        }
    }

    #[test]
    fn partial_last_frame_accounted() {
        let link = FrameLevelLink::paper(50.0);
        let t = link.transfer(Dbm(-80.0), Dbm(-80.0), 125.0);
        assert_eq!(t.frames, 3); // 50 + 50 + 25
        let (_, energy) = link.slot_model(Dbm(-80.0), 125.0);
        assert!((t.energy.value() - energy.value()).abs() < 1e-9);
    }

    #[test]
    fn drifting_signal_error_is_small_but_nonzero() {
        let link = FrameLevelLink::paper(50.0);
        // Worst within-slot drift of the paper's sine: amplitude 30 dB over
        // a 600-slot period moves at most 2π·30/600 ≈ 0.31 dB per slot.
        let err = link.aggregation_error(Dbm(-80.0), Dbm(-80.31), 2303.0);
        assert!(err > 0.0, "drift must produce some error");
        assert!(err < 0.01, "sub-percent at paper drift rates: {err}");
        // A catastrophic (unphysical) within-slot swing shows real error.
        let err_big = link.aggregation_error(Dbm(-50.0), Dbm(-110.0), 2303.0);
        assert!(err_big > 0.2, "60 dB swing must matter: {err_big}");
    }

    #[test]
    fn zero_volume_and_dead_link() {
        let link = FrameLevelLink::paper(50.0);
        let t = link.transfer(Dbm(-80.0), Dbm(-80.0), 0.0);
        assert_eq!(t.frames, 0);
        assert_eq!(t.duration_s, 0.0);
        // Below the throughput floor the transfer stalls forever.
        let dead = link.transfer(Dbm(-130.0), Dbm(-130.0), 100.0);
        assert!(dead.duration_s.is_infinite());
    }

    #[test]
    fn duration_increases_as_signal_worsens() {
        let link = FrameLevelLink::paper(50.0);
        let good = link.transfer(Dbm(-60.0), Dbm(-60.0), 1000.0);
        let bad = link.transfer(Dbm(-100.0), Dbm(-100.0), 1000.0);
        assert!(bad.duration_s > good.duration_s);
        assert!(bad.energy.value() > good.energy.value());
    }

    #[test]
    #[should_panic(expected = "frame length must be positive")]
    fn zero_frame_rejected() {
        FrameLevelLink::paper(0.0);
    }
}
