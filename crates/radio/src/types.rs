//! Unit newtypes used throughout the workspace.
//!
//! All quantities are `f64` internally; the wrappers exist so that a signal
//! strength can never be added to an energy by accident. Only the arithmetic
//! that is physically meaningful is implemented (e.g. `MilliWatts * seconds
//! = MilliJoules`).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit_newtype {
    ($(#[$doc:meta])* $name:ident, $suffix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(pub f64);

        impl $name {
            /// Raw numeric value.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Zero of this unit.
            pub const ZERO: Self = Self(0.0);

            /// Clamp into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Component-wise minimum.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Component-wise maximum.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// True when the value is finite (not NaN/∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.3} {}", self.0, $suffix)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|x| x.0).sum())
            }
        }
    };
}

unit_newtype!(
    /// Received signal strength in dBm (typically in `[-110, -50]` for the
    /// paper's scenarios; larger, i.e. less negative, is better).
    Dbm,
    "dBm"
);

unit_newtype!(
    /// Throughput in kilobytes per second (the paper's `v(sig)` unit).
    KbPerSec,
    "KB/s"
);

unit_newtype!(
    /// Energy in millijoules.
    MilliJoules,
    "mJ"
);

unit_newtype!(
    /// Power in milliwatts (equivalently mJ/s).
    MilliWatts,
    "mW"
);

impl MilliWatts {
    /// Energy accumulated by drawing this power for `seconds`.
    #[inline]
    pub fn over_seconds(self, seconds: f64) -> MilliJoules {
        MilliJoules(self.0 * seconds)
    }
}

impl KbPerSec {
    /// Kilobytes transferable in `seconds` at this rate.
    #[inline]
    pub fn kb_in(self, seconds: f64) -> f64 {
        self.0 * seconds
    }
}

impl MilliJoules {
    /// Convert to joules.
    #[inline]
    pub fn joules(self) -> f64 {
        self.0 / 1000.0
    }

    /// Convert to kilojoules.
    #[inline]
    pub fn kilojoules(self) -> f64 {
        self.0 / 1_000_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let p = MilliWatts(732.83);
        let e = p.over_seconds(3.29);
        assert!((e.value() - 2411.0107).abs() < 1e-6);
    }

    #[test]
    fn throughput_times_time_is_volume() {
        assert!((KbPerSec(2303.0).kb_in(2.0) - 4606.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = MilliJoules(2.0) + MilliJoules(3.0);
        assert_eq!(a, MilliJoules(5.0));
        let b = a - MilliJoules(1.0);
        assert_eq!(b, MilliJoules(4.0));
        let c = b * 2.0;
        assert_eq!(c, MilliJoules(8.0));
        let d = c / 4.0;
        assert_eq!(d, MilliJoules(2.0));
        assert_eq!(-d, MilliJoules(-2.0));
    }

    #[test]
    fn clamp_min_max() {
        let s = Dbm(-130.0).clamp(Dbm(-110.0), Dbm(-50.0));
        assert_eq!(s, Dbm(-110.0));
        assert_eq!(Dbm(-60.0).min(Dbm(-70.0)), Dbm(-70.0));
        assert_eq!(Dbm(-60.0).max(Dbm(-70.0)), Dbm(-60.0));
    }

    #[test]
    fn sum_of_units() {
        let total: MilliJoules = [MilliJoules(1.0), MilliJoules(2.5)].into_iter().sum();
        assert_eq!(total, MilliJoules(3.5));
    }

    #[test]
    fn unit_conversions() {
        assert!((MilliJoules(2500.0).joules() - 2.5).abs() < 1e-12);
        assert!((MilliJoules(3.0e6).kilojoules() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn serde_transparent_roundtrip() {
        let s = Dbm(-82.5);
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, "-82.5");
        let back: Dbm = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
