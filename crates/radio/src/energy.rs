//! Per-device energy accounting (Eqs. (5)–(6)).
//!
//! The paper splits a device's consumption into *transmission energy*
//! (Eq. (3), charged on slots where data is allocated) and *tail energy*
//! (Eq. (4), charged on idle slots while the RRC timers run down). The
//! evaluation figures report both the total and the tail share (Fig. 5b),
//! so the meter keeps them separate.

use crate::types::MilliJoules;
use serde::{Deserialize, Serialize};

/// Immutable snapshot of a meter.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Energy spent receiving data (Eq. (3)).
    pub transmission: MilliJoules,
    /// Energy spent in the RRC tail (Eq. (4)).
    pub tail: MilliJoules,
}

impl EnergyBreakdown {
    /// Total energy (Eq. (5) summed over slots).
    pub fn total(&self) -> MilliJoules {
        self.transmission + self.tail
    }

    /// Tail share of the total, in `[0, 1]`; zero when nothing was spent.
    pub fn tail_fraction(&self) -> f64 {
        let t = self.total().value();
        if t <= 0.0 {
            0.0
        } else {
            self.tail.value() / t
        }
    }
}

impl std::ops::Add for EnergyBreakdown {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            transmission: self.transmission + rhs.transmission,
            tail: self.tail + rhs.tail,
        }
    }
}

impl std::iter::Sum for EnergyBreakdown {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), |a, b| a + b)
    }
}

/// Accumulating per-device meter.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    acc: EnergyBreakdown,
    slots_transmitting: u64,
    slots_idle: u64,
}

impl EnergyMeter {
    /// A fresh, empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge transmission energy for one slot.
    pub fn record_transmission(&mut self, e: MilliJoules) {
        debug_assert!(e.value() >= 0.0, "negative transmission energy");
        self.acc.transmission += e;
        self.slots_transmitting += 1;
    }

    /// Charge tail energy for one idle slot.
    pub fn record_tail(&mut self, e: MilliJoules) {
        debug_assert!(e.value() >= 0.0, "negative tail energy");
        self.acc.tail += e;
        self.slots_idle += 1;
    }

    /// Account `n` idle slots whose tail energy is zero because the RRC
    /// tail has already saturated. Identical to `n` calls of
    /// `record_tail(MilliJoules(0.0))`; the simulation engine retires
    /// finished users from its slot loop and settles their trailing idle
    /// slots in one call here.
    pub fn record_saturated_idle_slots(&mut self, n: u64) {
        self.slots_idle += n;
    }

    /// Snapshot of the split so far.
    pub fn breakdown(&self) -> EnergyBreakdown {
        self.acc
    }

    /// Total energy so far.
    pub fn total(&self) -> MilliJoules {
        self.acc.total()
    }

    /// Slots on which transmission energy was charged.
    pub fn slots_transmitting(&self) -> u64 {
        self.slots_transmitting
    }

    /// Slots on which tail energy was charged (including zero-cost idle
    /// slots after the tail saturates).
    pub fn slots_idle(&self) -> u64 {
        self.slots_idle
    }

    /// Reset to empty.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_split() {
        let mut m = EnergyMeter::new();
        m.record_transmission(MilliJoules(100.0));
        m.record_transmission(MilliJoules(50.0));
        m.record_tail(MilliJoules(30.0));
        let b = m.breakdown();
        assert_eq!(b.transmission, MilliJoules(150.0));
        assert_eq!(b.tail, MilliJoules(30.0));
        assert_eq!(m.total(), MilliJoules(180.0));
        assert_eq!(m.slots_transmitting(), 2);
        assert_eq!(m.slots_idle(), 1);
    }

    #[test]
    fn saturated_idle_slots_match_zero_tail_records() {
        let mut a = EnergyMeter::new();
        let mut b = EnergyMeter::new();
        a.record_tail(MilliJoules(12.0));
        b.record_tail(MilliJoules(12.0));
        for _ in 0..5 {
            a.record_tail(MilliJoules(0.0));
        }
        b.record_saturated_idle_slots(5);
        assert_eq!(a.breakdown(), b.breakdown());
        assert_eq!(a.slots_idle(), b.slots_idle());
    }

    #[test]
    fn tail_fraction() {
        let b = EnergyBreakdown {
            transmission: MilliJoules(75.0),
            tail: MilliJoules(25.0),
        };
        assert!((b.tail_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(EnergyBreakdown::default().tail_fraction(), 0.0);
    }

    #[test]
    fn breakdown_sums() {
        let a = EnergyBreakdown {
            transmission: MilliJoules(1.0),
            tail: MilliJoules(2.0),
        };
        let b = EnergyBreakdown {
            transmission: MilliJoules(3.0),
            tail: MilliJoules(4.0),
        };
        let s: EnergyBreakdown = [a, b].into_iter().sum();
        assert_eq!(s.transmission, MilliJoules(4.0));
        assert_eq!(s.tail, MilliJoules(6.0));
        assert_eq!(s.total(), MilliJoules(10.0));
    }

    #[test]
    fn reset_clears() {
        let mut m = EnergyMeter::new();
        m.record_tail(MilliJoules(5.0));
        m.reset();
        assert_eq!(m.total(), MilliJoules(0.0));
        assert_eq!(m.slots_idle(), 0);
    }
}
