//! Radio Resource Control (RRC) state machine and tail energy (Eq. (4)).
//!
//! 3G devices demote `CELL_DCH → CELL_FACH → IDLE` on inactivity timers
//! `T1`/`T2`, drawing `Pd`/`Pf` in the two active states. The energy burned
//! while the timers run down after the last transmission is the *tail
//! energy*:
//!
//! ```text
//! E_tail(t) = Pd·t,                    0 ≤ t < T1
//!           = Pd·T1 + Pf·(t − T1),     T1 ≤ t < T1 + T2
//!           = Pd·T1 + Pf·T2,           t ≥ T1 + T2
//! ```
//!
//! LTE has a two-state machine (`RRC_CONNECTED → RRC_IDLE`); it is expressed
//! here as the degenerate case `Pf = 0, T2 = 0`, exactly as the paper notes
//! ("the RRC models of 3G and LTE are similar and only different in certain
//! parameters").
//!
//! Both a closed-form [`tail_energy`] and an incremental per-slot state
//! machine ([`RrcMachine`]) are provided; property tests assert they agree,
//! so the simulator can account tail energy slot-by-slot while the
//! schedulers reason with the closed form.

use crate::types::{MilliJoules, MilliWatts};
use serde::{Deserialize, Serialize};

/// RRC protocol state of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RrcState {
    /// High-power dedicated channel (3G `CELL_DCH` / LTE `RRC_CONNECTED`).
    Dch,
    /// Medium-power shared channel (3G `CELL_FACH`; unused in the LTE profile).
    Fach,
    /// Low-power idle (`CELL_IDLE` / `RRC_IDLE`); modeled as zero draw.
    Idle,
}

/// Timer and power parameters of the RRC state machine.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct RrcConfig {
    /// Power in the high state (`CELL_DCH`), mW.
    pub p_dch: MilliWatts,
    /// Power in the medium state (`CELL_FACH`), mW.
    pub p_fach: MilliWatts,
    /// Inactivity timer for DCH → FACH demotion, seconds.
    pub t1: f64,
    /// Inactivity timer for FACH → IDLE demotion, seconds.
    pub t2: f64,
}

impl RrcConfig {
    /// The paper's 3G parameters (from PerES \[29\]): `Pd = 732.83 mW`,
    /// `Pf = 388.88 mW`, `T1 = 3.29 s`, `T2 = 4.02 s`.
    pub fn umts_3g() -> Self {
        Self {
            p_dch: MilliWatts(732.83),
            p_fach: MilliWatts(388.88),
            t1: 3.29,
            t2: 4.02,
        }
    }

    /// An LTE profile: one connected state (~1210 mW continuous-reception
    /// tail, per Huang et al. MobiSys'12) demoting straight to idle after
    /// the ~11.5 s inactivity timer. Expressed as the `Pf = 0, T2 = 0`
    /// degenerate case of the 3-state machine.
    pub fn lte() -> Self {
        Self {
            p_dch: MilliWatts(1210.0),
            p_fach: MilliWatts(0.0),
            t1: 11.5,
            t2: 0.0,
        }
    }

    /// Total tail energy of a complete (uninterrupted) demotion:
    /// `Pd·T1 + Pf·T2`.
    pub fn full_tail_energy(&self) -> MilliJoules {
        MilliJoules(self.p_dch.value() * self.t1 + self.p_fach.value() * self.t2)
    }

    /// Time until the radio is fully idle after the last transmission.
    pub fn full_tail_duration(&self) -> f64 {
        self.t1 + self.t2
    }

    /// State after `idle` seconds without transmission.
    pub fn state_after_idle(&self, idle: f64) -> RrcState {
        if idle < self.t1 {
            RrcState::Dch
        } else if idle < self.t1 + self.t2 {
            RrcState::Fach
        } else {
            RrcState::Idle
        }
    }
}

impl Default for RrcConfig {
    fn default() -> Self {
        Self::umts_3g()
    }
}

/// Closed-form cumulative tail energy after `t` seconds of inactivity
/// (the paper's Eq. (4)).
///
/// ```
/// use jmso_radio::{tail_energy, RrcConfig};
///
/// let cfg = RrcConfig::umts_3g();
/// // One second in CELL_DCH costs Pd·1 = 732.83 mJ…
/// assert!((tail_energy(&cfg, 1.0).value() - 732.83).abs() < 1e-9);
/// // …and the tail saturates at Pd·T1 + Pf·T2 once both timers expire.
/// assert_eq!(tail_energy(&cfg, 100.0), cfg.full_tail_energy());
/// ```
pub fn tail_energy(cfg: &RrcConfig, t: f64) -> MilliJoules {
    let t = t.max(0.0);
    let pd = cfg.p_dch.value();
    let pf = cfg.p_fach.value();
    let e = if t < cfg.t1 {
        pd * t
    } else if t < cfg.t1 + cfg.t2 {
        pd * cfg.t1 + pf * (t - cfg.t1)
    } else {
        pd * cfg.t1 + pf * cfg.t2
    };
    MilliJoules(e)
}

/// Tail energy accrued over the idle interval `[from, to]` (both measured
/// from the last transmission). This is what one idle slot costs.
pub fn tail_energy_between(cfg: &RrcConfig, from: f64, to: f64) -> MilliJoules {
    debug_assert!(to >= from);
    tail_energy(cfg, to) - tail_energy(cfg, from)
}

/// Incremental per-device RRC state machine.
///
/// Drive it with [`RrcMachine::on_transmit`] on slots that carry data and
/// [`RrcMachine::on_idle`] on slots that do not; `on_idle` returns the tail
/// energy spent in that interval (accounting for demotions that happen
/// mid-interval).
///
/// ```
/// use jmso_radio::{RrcConfig, RrcMachine, RrcState};
///
/// let mut radio = RrcMachine::new(RrcConfig::umts_3g());
/// assert_eq!(radio.state(), RrcState::Dch);
/// let spent = radio.on_idle(5.0); // crosses the T1 = 3.29 s demotion
/// assert_eq!(radio.state(), RrcState::Fach);
/// assert!(spent.value() > 0.0);
/// radio.on_transmit(); // any data promotes straight back to DCH
/// assert_eq!(radio.state(), RrcState::Dch);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RrcMachine {
    cfg: RrcConfig,
    /// Seconds since the end of the last transmission.
    idle_s: f64,
}

impl RrcMachine {
    /// A machine that has just transmitted (idle clock at zero, in DCH).
    pub fn new(cfg: RrcConfig) -> Self {
        Self { cfg, idle_s: 0.0 }
    }

    /// A machine that has been idle long enough to be fully in IDLE.
    pub fn new_idle(cfg: RrcConfig) -> Self {
        let idle_s = cfg.full_tail_duration();
        Self { cfg, idle_s }
    }

    /// Parameters of this machine.
    pub fn config(&self) -> &RrcConfig {
        &self.cfg
    }

    /// Current protocol state.
    pub fn state(&self) -> RrcState {
        self.cfg.state_after_idle(self.idle_s)
    }

    /// Seconds since the last transmission.
    pub fn idle_seconds(&self) -> f64 {
        self.idle_s
    }

    /// Register a transmission: promote to DCH, reset the idle clock.
    /// (Promotion energy is charged as transmission energy by the power
    /// model, matching the paper's Eq. (5) dichotomy.)
    pub fn on_transmit(&mut self) {
        self.idle_s = 0.0;
    }

    /// Advance `dt` seconds without transmission; returns the tail energy
    /// burned in the interval.
    pub fn on_idle(&mut self, dt: f64) -> MilliJoules {
        debug_assert!(dt >= 0.0);
        let start = self.idle_s;
        self.idle_s += dt;
        tail_energy_between(&self.cfg, start, self.idle_s)
    }

    /// The tail energy the *next* `dt` idle seconds would cost, without
    /// advancing the machine. Schedulers use this to price `φᵢ(n) = 0`.
    pub fn peek_idle_cost(&self, dt: f64) -> MilliJoules {
        tail_energy_between(&self.cfg, self.idle_s, self.idle_s + dt)
    }

    /// [`RrcMachine::on_transmit`], firing `observer(from, to)` if the
    /// promotion actually changes the protocol state.
    pub fn on_transmit_observed<F: FnMut(RrcState, RrcState)>(&mut self, mut observer: F) {
        let from = self.state();
        self.on_transmit();
        let to = self.state();
        if from != to {
            observer(from, to);
        }
    }

    /// [`RrcMachine::on_idle`], firing `observer(from, to)` if a demotion
    /// timer expires inside the interval. A `dt` spanning both `T1` and
    /// `T2` reports the one net `Dch → Idle` transition, matching the
    /// slot-granular view the telemetry layer records.
    pub fn on_idle_observed<F: FnMut(RrcState, RrcState)>(
        &mut self,
        dt: f64,
        mut observer: F,
    ) -> MilliJoules {
        let from = self.state();
        let spent = self.on_idle(dt);
        let to = self.state();
        if from != to {
            observer(from, to);
        }
        spent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RrcConfig {
        RrcConfig::umts_3g()
    }

    #[test]
    fn eq4_pinned_values() {
        let c = cfg();
        // Region 1: Pd·t.
        assert!((tail_energy(&c, 1.0).value() - 732.83).abs() < 1e-9);
        // Boundary at T1: Pd·T1 = 2411.0107 mJ.
        assert!((tail_energy(&c, 3.29).value() - 732.83 * 3.29).abs() < 1e-9);
        // Region 2.
        let e = tail_energy(&c, 5.0).value();
        assert!((e - (732.83 * 3.29 + 388.88 * (5.0 - 3.29))).abs() < 1e-9);
        // Saturation: Pd·T1 + Pf·T2 ≈ 3974.3083 mJ.
        let sat = 732.83 * 3.29 + 388.88 * 4.02;
        assert!((tail_energy(&c, 7.31).value() - sat).abs() < 1e-9);
        assert!((tail_energy(&c, 100.0).value() - sat).abs() < 1e-9);
        assert_eq!(tail_energy(&c, 100.0), c.full_tail_energy());
    }

    #[test]
    fn eq4_monotone_and_continuous() {
        let c = cfg();
        let mut prev = 0.0;
        for i in 0..=1000 {
            let t = i as f64 * 0.01;
            let e = tail_energy(&c, t).value();
            assert!(e >= prev - 1e-12);
            prev = e;
        }
        // Continuity at the two breakpoints.
        for bp in [c.t1, c.t1 + c.t2] {
            let lo = tail_energy(&c, bp - 1e-9).value();
            let hi = tail_energy(&c, bp + 1e-9).value();
            assert!((hi - lo).abs() < 1e-5);
        }
    }

    #[test]
    fn negative_time_clamped() {
        assert_eq!(tail_energy(&cfg(), -5.0).value(), 0.0);
    }

    #[test]
    fn machine_matches_closed_form_over_slots() {
        let c = cfg();
        let mut m = RrcMachine::new(c);
        let tau = 1.0;
        let mut acc = 0.0;
        for k in 1..=12 {
            acc += m.on_idle(tau).value();
            let expect = tail_energy(&c, k as f64 * tau).value();
            assert!((acc - expect).abs() < 1e-9, "slot {k}");
        }
    }

    #[test]
    fn machine_states_follow_timers() {
        let c = cfg();
        let mut m = RrcMachine::new(c);
        assert_eq!(m.state(), RrcState::Dch);
        m.on_idle(3.3);
        assert_eq!(m.state(), RrcState::Fach);
        m.on_idle(4.1);
        assert_eq!(m.state(), RrcState::Idle);
        m.on_transmit();
        assert_eq!(m.state(), RrcState::Dch);
        assert_eq!(m.idle_seconds(), 0.0);
    }

    #[test]
    fn idle_machine_costs_nothing() {
        let mut m = RrcMachine::new_idle(cfg());
        assert_eq!(m.state(), RrcState::Idle);
        assert_eq!(m.on_idle(10.0).value(), 0.0);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut m = RrcMachine::new(cfg());
        let peeked = m.peek_idle_cost(1.0);
        assert_eq!(m.idle_seconds(), 0.0);
        let actual = m.on_idle(1.0);
        assert_eq!(peeked, actual);
    }

    #[test]
    fn lte_profile_is_two_state() {
        let c = RrcConfig::lte();
        assert_eq!(c.state_after_idle(0.0), RrcState::Dch);
        assert_eq!(c.state_after_idle(11.49), RrcState::Dch);
        assert_eq!(c.state_after_idle(11.5), RrcState::Idle);
        // Full tail = Pd·T1 only.
        assert!((c.full_tail_energy().value() - 1210.0 * 11.5).abs() < 1e-9);
    }

    #[test]
    fn observed_fires_only_on_change() {
        let c = cfg();
        let mut m = RrcMachine::new(c);
        let mut seen = Vec::new();
        // Within T1: no demotion, no callback, same energy as unobserved.
        let e = m.on_idle_observed(1.0, |f, t| seen.push((f, t)));
        assert_eq!(e, tail_energy_between(&c, 0.0, 1.0));
        assert!(seen.is_empty());
        // Crossing T1 fires Dch → Fach.
        m.on_idle_observed(3.0, |f, t| seen.push((f, t)));
        assert_eq!(seen, vec![(RrcState::Dch, RrcState::Fach)]);
        // Crossing T2 fires Fach → Idle.
        m.on_idle_observed(10.0, |f, t| seen.push((f, t)));
        assert_eq!(seen.last(), Some(&(RrcState::Fach, RrcState::Idle)));
        // Transmit from Idle promotes back to Dch…
        m.on_transmit_observed(|f, t| seen.push((f, t)));
        assert_eq!(seen.last(), Some(&(RrcState::Idle, RrcState::Dch)));
        // …and a second transmit from Dch is silent.
        let n = seen.len();
        m.on_transmit_observed(|f, t| seen.push((f, t)));
        assert_eq!(seen.len(), n);
    }

    #[test]
    fn observed_spanning_both_timers_reports_net_transition() {
        let mut m = RrcMachine::new(cfg());
        let mut seen = Vec::new();
        m.on_idle_observed(100.0, |f, t| seen.push((f, t)));
        assert_eq!(seen, vec![(RrcState::Dch, RrcState::Idle)]);
    }

    #[test]
    fn between_is_difference_of_cumulative() {
        let c = cfg();
        let e = tail_energy_between(&c, 2.0, 6.0).value();
        let expect = tail_energy(&c, 6.0).value() - tail_energy(&c, 2.0).value();
        assert!((e - expect).abs() < 1e-12);
    }
}
