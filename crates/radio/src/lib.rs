//! Cellular radio substrate for the jmso simulator.
//!
//! This crate implements every radio-layer model used by the paper
//! *Joint Media Streaming Optimization of Energy and Rebuffering Time in
//! Cellular Networks* (ICPP 2015):
//!
//! * [`signal`] — per-user received-signal-strength (RSSI) processes:
//!   the paper's sinusoid-plus-Gaussian-noise trace, a Gilbert–Elliott style
//!   Markov chain, trace replay, and constants.
//! * [`throughput`] — the linear RSSI→throughput fit `v(sig)` of Eq. (24).
//! * [`power`] — the per-byte power fit `P(sig)` of Eq. (24) and derived
//!   transmission-energy helpers (Eq. (3)).
//! * [`rrc`] — the 3G/LTE Radio Resource Control state machine with
//!   demotion timers, and the closed-form tail-energy function of Eq. (4).
//! * [`energy`] — per-device energy metering split into transmission and
//!   tail components (Eqs. (5)–(6)).
//! * [`types`] — light unit newtypes (`Dbm`, `KbPerSec`, `MilliJoules`,
//!   `MilliWatts`) so unit mistakes fail to compile.

pub mod energy;
pub mod frames;
pub mod power;
pub mod rrc;
pub mod signal;
pub mod throughput;
pub mod types;

pub use energy::{EnergyBreakdown, EnergyMeter};
pub use frames::{FrameLevelLink, FrameTransfer};
pub use power::{PowerModel, RssiPowerModel};
pub use rrc::{tail_energy, RrcConfig, RrcMachine, RrcState};
pub use signal::{
    ConstantSignal, MarkovSignal, SignalKind, SignalModel, SignalSpec, SineSignal, TraceSignal,
};
pub use throughput::{LinearRssiThroughput, ThroughputModel};
pub use types::{Dbm, KbPerSec, MilliJoules, MilliWatts};
