//! Per-user received-signal-strength (RSSI) processes.
//!
//! The paper drives each user's channel with a sinusoid spanning
//! `[-110, -50]` dBm plus white Gaussian noise, with a per-user phase shift
//! ([`SineSignal`]). We additionally provide a discretized Markov-chain
//! process ([`MarkovSignal`], in the spirit of the Markov channel models the
//! paper cites for related work), replay of recorded traces
//! ([`TraceSignal`]), and a constant channel ([`ConstantSignal`]) for tests.
//!
//! All models are deterministic for a fixed seed, which is what makes every
//! figure in the benchmark harness reproducible bit-for-bit.

use crate::types::Dbm;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::f64::consts::TAU;

/// The paper's signal floor (weakest signal considered).
pub const PAPER_SIG_MIN: Dbm = Dbm(-110.0);
/// The paper's signal ceiling (strongest signal considered).
pub const PAPER_SIG_MAX: Dbm = Dbm(-50.0);

/// A stochastic process producing one RSSI sample per slot.
///
/// Implementations must be deterministic given their construction
/// parameters (including any seed); `sample` is called exactly once per
/// slot, in slot order.
pub trait SignalModel: Send {
    /// RSSI for slot `slot`.
    fn sample(&mut self, slot: u64) -> Dbm;

    /// Fill `out` with the samples for slots
    /// `start_slot .. start_slot + out.len()`.
    ///
    /// Semantically identical to calling [`SignalModel::sample`] once per
    /// slot in order; implementations may override it to amortize
    /// per-call work across the block, but the produced sample stream
    /// (RNG draws included) must stay bit-for-bit the same.
    fn sample_into(&mut self, start_slot: u64, out: &mut [Dbm]) {
        for (k, o) in out.iter_mut().enumerate() {
            *o = self.sample(start_slot + k as u64);
        }
    }
}

/// Draw a standard normal via Box–Muller (rand_distr is not in the offline
/// crate set; two uniforms per call keeps the stream deterministic).
#[inline]
fn standard_normal(rng: &mut StdRng) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos()
}

/// The paper's sinusoid-plus-noise RSSI process.
///
/// `sig(n) = mean + amplitude·sin(2πn/period + phase) + N(0, noise_std²)`,
/// clamped to `[clamp_min, clamp_max]`.
#[derive(Debug)]
pub struct SineSignal {
    mean: f64,
    amplitude: f64,
    period_slots: f64,
    phase: f64,
    noise_std: f64,
    clamp_min: Dbm,
    clamp_max: Dbm,
    rng: StdRng,
}

impl SineSignal {
    /// Fully parameterised constructor.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        mean: Dbm,
        amplitude: f64,
        period_slots: f64,
        phase: f64,
        noise_std: f64,
        clamp_min: Dbm,
        clamp_max: Dbm,
        seed: u64,
    ) -> Self {
        assert!(period_slots > 0.0, "sine period must be positive");
        assert!(noise_std >= 0.0, "noise std must be non-negative");
        Self {
            mean: mean.value(),
            amplitude,
            period_slots,
            phase,
            noise_std,
            clamp_min,
            clamp_max,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The paper's §VI configuration for user `user_idx` of `n_users`:
    /// sine spanning −110..−50 dBm (mean −80, amplitude 30), per-user phase
    /// shift spreading users uniformly around the cycle, Gaussian noise of
    /// `noise_std` dB, 600-slot period.
    pub fn paper_default(user_idx: usize, n_users: usize, noise_std: f64, seed: u64) -> Self {
        let n = n_users.max(1) as f64;
        let phase = TAU * (user_idx as f64) / n;
        Self::new(
            Dbm(-80.0),
            30.0,
            600.0,
            phase,
            noise_std,
            PAPER_SIG_MIN,
            PAPER_SIG_MAX,
            seed,
        )
    }
}

impl SignalModel for SineSignal {
    fn sample(&mut self, slot: u64) -> Dbm {
        let angle = TAU * (slot as f64) / self.period_slots + self.phase;
        let noise = if self.noise_std > 0.0 {
            self.noise_std * standard_normal(&mut self.rng)
        } else {
            0.0
        };
        Dbm(self.mean + self.amplitude * angle.sin() + noise).clamp(self.clamp_min, self.clamp_max)
    }

    fn sample_into(&mut self, start_slot: u64, out: &mut [Dbm]) {
        // The noise branch is hoisted out of the per-sample loop; the
        // angle must stay the literal `2πn/period + phase` per sample (no
        // incremental stepping) so the block path reproduces `sample`'s
        // values exactly.
        if self.noise_std > 0.0 {
            for (k, o) in out.iter_mut().enumerate() {
                let slot = start_slot + k as u64;
                let angle = TAU * (slot as f64) / self.period_slots + self.phase;
                let noise = self.noise_std * standard_normal(&mut self.rng);
                *o = Dbm(self.mean + self.amplitude * angle.sin() + noise)
                    .clamp(self.clamp_min, self.clamp_max);
            }
        } else {
            for (k, o) in out.iter_mut().enumerate() {
                let slot = start_slot + k as u64;
                let angle = TAU * (slot as f64) / self.period_slots + self.phase;
                *o = Dbm(self.mean + self.amplitude * angle.sin())
                    .clamp(self.clamp_min, self.clamp_max);
            }
        }
    }
}

/// A birth–death Markov chain over equally spaced RSSI levels.
///
/// The chain has `levels` states spanning `[min, max]`; each slot it stays
/// with probability `1 - 2·move_prob` and steps up/down one level with
/// probability `move_prob` each (reflected at the edges).
#[derive(Debug)]
pub struct MarkovSignal {
    min: f64,
    step: f64,
    levels: usize,
    state: usize,
    move_prob: f64,
    rng: StdRng,
}

impl MarkovSignal {
    /// Build a chain over `levels` states in `[min, max]` starting from the
    /// middle state.
    pub fn new(min: Dbm, max: Dbm, levels: usize, move_prob: f64, seed: u64) -> Self {
        assert!(levels >= 2, "need at least two levels");
        assert!(max.value() > min.value(), "max must exceed min");
        assert!(
            (0.0..=0.5).contains(&move_prob),
            "move_prob must be in [0, 0.5]"
        );
        Self {
            min: min.value(),
            step: (max.value() - min.value()) / (levels - 1) as f64,
            levels,
            state: levels / 2,
            move_prob,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl SignalModel for MarkovSignal {
    fn sample(&mut self, _slot: u64) -> Dbm {
        let u: f64 = self.rng.random();
        if u < self.move_prob {
            self.state = self.state.saturating_sub(1);
        } else if u < 2.0 * self.move_prob && self.state + 1 < self.levels {
            self.state += 1;
        }
        Dbm(self.min + self.step * self.state as f64)
    }
}

/// Replays a recorded RSSI trace, cycling when it runs out of samples.
///
/// ```
/// use jmso_radio::signal::{SignalModel, TraceSignal};
///
/// let mut t = TraceSignal::new(vec![-60.0, -70.0, -80.0]);
/// assert_eq!(t.sample(1).value(), -70.0);
/// assert_eq!(t.sample(3).value(), -60.0); // wraps to the start
/// assert_eq!(t.sample(7).value(), -70.0); // 7 mod 3 == 1
/// assert_eq!(t.len(), 3);
/// assert!(!t.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct TraceSignal {
    samples: Vec<f64>,
}

impl TraceSignal {
    /// Wrap a non-empty trace of dBm samples.
    pub fn new(samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "trace must not be empty");
        Self { samples }
    }

    /// Number of samples before the trace repeats.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Always false — construction rejects empty traces — but derived
    /// from [`TraceSignal::len`] rather than restating that invariant.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SignalModel for TraceSignal {
    fn sample(&mut self, slot: u64) -> Dbm {
        Dbm(self.samples[(slot % self.samples.len() as u64) as usize])
    }
}

/// A constant channel, useful in unit tests and worked examples.
#[derive(Debug, Clone, Copy)]
pub struct ConstantSignal(pub Dbm);

impl SignalModel for ConstantSignal {
    fn sample(&mut self, _slot: u64) -> Dbm {
        self.0
    }

    fn sample_into(&mut self, _start_slot: u64, out: &mut [Dbm]) {
        out.fill(self.0);
    }
}

/// Enum dispatch over the built-in signal models — the simulation
/// engine's devirtualized sampling path.
///
/// The engine's per-slot sweep touches every live user's signal; through
/// a `Box<dyn SignalModel>` that is one virtual call (and one pointer
/// chase) per user per slot. `SignalKind` makes the dispatch a single
/// inlined `match` and, combined with [`SignalModel::sample_into`],
/// amortizes it over a whole block of slots. External [`SignalModel`]
/// implementations remain fully supported via [`SignalKind::Dyn`], which
/// simply pays the virtual call again.
pub enum SignalKind {
    /// The paper's sinusoid-plus-noise process.
    Sine(SineSignal),
    /// Birth–death Markov chain.
    Markov(MarkovSignal),
    /// Recorded-trace replay.
    Trace(TraceSignal),
    /// Constant channel.
    Constant(ConstantSignal),
    /// Any other [`SignalModel`] implementation, dispatched virtually.
    Dyn(Box<dyn SignalModel>),
}

impl SignalModel for SignalKind {
    #[inline]
    fn sample(&mut self, slot: u64) -> Dbm {
        match self {
            SignalKind::Sine(s) => s.sample(slot),
            SignalKind::Markov(m) => m.sample(slot),
            SignalKind::Trace(t) => t.sample(slot),
            SignalKind::Constant(c) => c.sample(slot),
            SignalKind::Dyn(d) => d.sample(slot),
        }
    }

    #[inline]
    fn sample_into(&mut self, start_slot: u64, out: &mut [Dbm]) {
        match self {
            SignalKind::Sine(s) => s.sample_into(start_slot, out),
            SignalKind::Markov(m) => m.sample_into(start_slot, out),
            SignalKind::Trace(t) => t.sample_into(start_slot, out),
            SignalKind::Constant(c) => c.sample_into(start_slot, out),
            SignalKind::Dyn(d) => d.sample_into(start_slot, out),
        }
    }
}

impl std::fmt::Debug for SignalKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SignalKind::Sine(s) => f.debug_tuple("Sine").field(s).finish(),
            SignalKind::Markov(m) => f.debug_tuple("Markov").field(m).finish(),
            SignalKind::Trace(t) => f.debug_tuple("Trace").field(t).finish(),
            SignalKind::Constant(c) => f.debug_tuple("Constant").field(c).finish(),
            SignalKind::Dyn(_) => f.write_str("Dyn(..)"),
        }
    }
}

impl From<SineSignal> for SignalKind {
    fn from(s: SineSignal) -> Self {
        SignalKind::Sine(s)
    }
}

impl From<MarkovSignal> for SignalKind {
    fn from(m: MarkovSignal) -> Self {
        SignalKind::Markov(m)
    }
}

impl From<TraceSignal> for SignalKind {
    fn from(t: TraceSignal) -> Self {
        SignalKind::Trace(t)
    }
}

impl From<ConstantSignal> for SignalKind {
    fn from(c: ConstantSignal) -> Self {
        SignalKind::Constant(c)
    }
}

impl From<Box<dyn SignalModel>> for SignalKind {
    fn from(d: Box<dyn SignalModel>) -> Self {
        SignalKind::Dyn(d)
    }
}

/// Serializable description of a signal model; the factory for per-user
/// [`SignalModel`] instances used by scenario configs.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum SignalSpec {
    /// The paper's sinusoid (+ Gaussian noise, per-user phase).
    Sine {
        /// Mean RSSI in dBm.
        mean_dbm: f64,
        /// Sine amplitude in dB.
        amplitude_db: f64,
        /// Period in slots.
        period_slots: f64,
        /// Gaussian noise standard deviation in dB.
        noise_std_db: f64,
    },
    /// Birth–death Markov chain.
    Markov {
        /// Weakest level in dBm.
        min_dbm: f64,
        /// Strongest level in dBm.
        max_dbm: f64,
        /// Number of levels.
        levels: usize,
        /// Per-slot probability of moving one level in each direction.
        move_prob: f64,
    },
    /// Constant channel.
    Constant {
        /// The RSSI in dBm.
        dbm: f64,
    },
    /// Recorded per-slot RSSI trace, replayed cyclically; user `i` starts
    /// `offset_per_user` samples into the trace so users are decorrelated.
    Trace {
        /// The samples in dBm.
        samples_dbm: Vec<f64>,
        /// Per-user phase offset into the trace, samples.
        offset_per_user: usize,
    },
}

impl SignalSpec {
    /// The paper's §VI setup with the noise level we calibrated (see
    /// DESIGN.md §3 on the "30 dBm noise" ambiguity).
    pub fn paper_default() -> Self {
        SignalSpec::Sine {
            mean_dbm: -80.0,
            amplitude_db: 30.0,
            period_slots: 600.0,
            noise_std_db: 8.0,
        }
    }

    /// Instantiate the model for one user as an enum-dispatched
    /// [`SignalKind`] (the engine's hot path). `user_idx`/`n_users` drive
    /// the per-user phase shift for the sine model; `seed` is mixed with
    /// the user index so users get independent noise streams.
    pub fn build_kind(&self, user_idx: usize, n_users: usize, seed: u64) -> SignalKind {
        let user_seed = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(user_idx as u64);
        match *self {
            SignalSpec::Sine {
                mean_dbm,
                amplitude_db,
                period_slots,
                noise_std_db,
            } => {
                let n = n_users.max(1) as f64;
                let phase = TAU * (user_idx as f64) / n;
                SignalKind::Sine(SineSignal::new(
                    Dbm(mean_dbm),
                    amplitude_db,
                    period_slots,
                    phase,
                    noise_std_db,
                    PAPER_SIG_MIN,
                    PAPER_SIG_MAX,
                    user_seed,
                ))
            }
            SignalSpec::Markov {
                min_dbm,
                max_dbm,
                levels,
                move_prob,
            } => SignalKind::Markov(MarkovSignal::new(
                Dbm(min_dbm),
                Dbm(max_dbm),
                levels,
                move_prob,
                user_seed,
            )),
            SignalSpec::Constant { dbm } => SignalKind::Constant(ConstantSignal(Dbm(dbm))),
            SignalSpec::Trace {
                ref samples_dbm,
                offset_per_user,
            } => {
                let mut rotated = samples_dbm.clone();
                let n = rotated.len().max(1);
                rotated.rotate_left((user_idx * offset_per_user) % n);
                SignalKind::Trace(TraceSignal::new(rotated))
            }
        }
    }

    /// [`SignalSpec::build_kind`] behind a trait object, for callers that
    /// want dynamic dispatch. Produces the identical sample stream.
    pub fn build(&self, user_idx: usize, n_users: usize, seed: u64) -> Box<dyn SignalModel> {
        Box::new(self.build_kind(user_idx, n_users, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sine_stays_in_clamp_range() {
        let mut s = SineSignal::paper_default(0, 40, 8.0, 42);
        for n in 0..5_000 {
            let v = s.sample(n).value();
            assert!((-110.0..=-50.0).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn sine_without_noise_is_exact() {
        let mut s = SineSignal::new(
            Dbm(-80.0),
            30.0,
            600.0,
            0.0,
            0.0,
            PAPER_SIG_MIN,
            PAPER_SIG_MAX,
            0,
        );
        // n = 150 is a quarter period: sin = 1 → −50 dBm.
        assert!((s.sample(150).value() - -50.0).abs() < 1e-9);
        // n = 450 is three quarters: sin = −1 → −110 dBm.
        assert!((s.sample(450).value() - -110.0).abs() < 1e-9);
        // n = 0 → mean.
        assert!((s.sample(0).value() - -80.0).abs() < 1e-9);
    }

    #[test]
    fn sine_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = SineSignal::paper_default(3, 40, 8.0, seed);
            (0..100).map(|n| s.sample(n).value()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn phase_shifts_differ_across_users() {
        let mut a = SineSignal::paper_default(0, 4, 0.0, 1);
        let mut b = SineSignal::paper_default(2, 4, 0.0, 1);
        // Half a cycle apart: opposite extremes at the quarter period.
        assert!((a.sample(150).value() - -50.0).abs() < 1e-9);
        assert!((b.sample(150).value() - -110.0).abs() < 1e-9);
    }

    #[test]
    fn markov_moves_only_one_level_per_slot() {
        let mut m = MarkovSignal::new(Dbm(-110.0), Dbm(-50.0), 13, 0.3, 11);
        let step = 60.0 / 12.0;
        let mut prev = m.sample(0).value();
        for n in 1..2_000 {
            let cur = m.sample(n).value();
            assert!((cur - prev).abs() <= step + 1e-9);
            assert!((-110.0..=-50.0).contains(&cur));
            prev = cur;
        }
    }

    #[test]
    fn markov_visits_multiple_levels() {
        let mut m = MarkovSignal::new(Dbm(-110.0), Dbm(-50.0), 7, 0.4, 3);
        let distinct: std::collections::BTreeSet<i64> =
            (0..2_000).map(|n| m.sample(n).value() as i64).collect();
        assert!(distinct.len() >= 4, "chain should mix: {distinct:?}");
    }

    #[test]
    fn trace_replays_and_wraps() {
        let mut t = TraceSignal::new(vec![-60.0, -70.0, -80.0]);
        assert_eq!(t.sample(0).value(), -60.0);
        assert_eq!(t.sample(1).value(), -70.0);
        assert_eq!(t.sample(2).value(), -80.0);
        assert_eq!(t.sample(3).value(), -60.0);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "trace must not be empty")]
    fn empty_trace_rejected() {
        TraceSignal::new(vec![]);
    }

    #[test]
    fn constant_is_constant() {
        let mut c = ConstantSignal(Dbm(-75.0));
        assert_eq!(c.sample(0), Dbm(-75.0));
        assert_eq!(c.sample(99), Dbm(-75.0));
    }

    #[test]
    fn spec_builds_all_variants() {
        for spec in [
            SignalSpec::paper_default(),
            SignalSpec::Markov {
                min_dbm: -110.0,
                max_dbm: -50.0,
                levels: 10,
                move_prob: 0.25,
            },
            SignalSpec::Constant { dbm: -65.0 },
        ] {
            let mut m = spec.build(0, 40, 99);
            let v = m.sample(0).value();
            assert!((-110.0..=-50.0).contains(&v));
        }
    }

    #[test]
    fn trace_spec_offsets_users() {
        let spec = SignalSpec::Trace {
            samples_dbm: vec![-60.0, -70.0, -80.0, -90.0],
            offset_per_user: 1,
        };
        let mut u0 = spec.build(0, 4, 0);
        let mut u2 = spec.build(2, 4, 0);
        assert_eq!(u0.sample(0).value(), -60.0);
        assert_eq!(u2.sample(0).value(), -80.0, "user 2 starts 2 samples in");
        assert_eq!(u2.sample(2).value(), -60.0, "wraps around");
        let j = serde_json::to_string(&spec).unwrap();
        assert_eq!(serde_json::from_str::<SignalSpec>(&j).unwrap(), spec);
    }

    /// `sample_into` must reproduce the per-slot `sample` stream exactly
    /// (RNG draws included) for every model, across arbitrary block cuts.
    #[test]
    fn block_sampling_matches_stream() {
        type MakeKind = fn() -> SignalKind;
        let kinds: [(&str, MakeKind); 6] = [
            ("sine+noise", || {
                SignalKind::Sine(SineSignal::paper_default(3, 40, 8.0, 42))
            }),
            ("sine noiseless", || {
                SignalKind::Sine(SineSignal::paper_default(1, 8, 0.0, 7))
            }),
            ("markov", || {
                SignalKind::Markov(MarkovSignal::new(Dbm(-110.0), Dbm(-50.0), 16, 0.3, 9))
            }),
            ("trace", || {
                SignalKind::Trace(TraceSignal::new(vec![-60.0, -75.0, -90.0]))
            }),
            ("constant", || {
                SignalKind::Constant(ConstantSignal(Dbm(-70.0)))
            }),
            ("dyn", || {
                SignalKind::Dyn(Box::new(SineSignal::paper_default(0, 4, 5.0, 1)))
            }),
        ];
        for (name, make) in kinds {
            let mut by_slot = make();
            let reference: Vec<Dbm> = (0..96).map(|n| by_slot.sample(n)).collect();
            for block in [1usize, 7, 32, 96] {
                let mut blocked = make();
                let mut got = vec![Dbm(0.0); 96];
                for start in (0..96).step_by(block) {
                    let end = (start + block).min(96);
                    blocked.sample_into(start as u64, &mut got[start..end]);
                }
                assert_eq!(got, reference, "{name} diverges at block size {block}");
            }
        }
    }

    #[test]
    fn build_kind_matches_build() {
        for spec in [
            SignalSpec::paper_default(),
            SignalSpec::Markov {
                min_dbm: -110.0,
                max_dbm: -50.0,
                levels: 10,
                move_prob: 0.25,
            },
            SignalSpec::Constant { dbm: -65.0 },
            SignalSpec::Trace {
                samples_dbm: vec![-60.0, -70.0, -80.0, -90.0],
                offset_per_user: 1,
            },
        ] {
            let mut boxed = spec.build(2, 5, 77);
            let mut kind = spec.build_kind(2, 5, 77);
            for n in 0..200 {
                assert_eq!(boxed.sample(n), kind.sample(n), "{spec:?} slot {n}");
            }
        }
    }

    #[test]
    fn spec_serde_roundtrip() {
        let spec = SignalSpec::paper_default();
        let json = serde_json::to_string(&spec).unwrap();
        let back: SignalSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
