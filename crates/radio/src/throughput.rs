//! RSSI → throughput model (the paper's Definition 3 and Eq. (24)).
//!
//! The paper adopts the linear fit measured by Suneja et al. (EnVi):
//! `v(sig) = 65.8·sig + 7567.0` KB/s with `sig` in dBm. Over the paper's
//! signal range `[-110, -50]` dBm this spans roughly 329 → 4279 KB/s.

use crate::types::{Dbm, KbPerSec};
use serde::{Deserialize, Serialize};

/// Maps channel quality to the maximum per-second data volume (Def. 3).
pub trait ThroughputModel: Send + Sync {
    /// Maximum achievable throughput at signal strength `sig`.
    fn throughput(&self, sig: Dbm) -> KbPerSec;
}

/// The linear RSSI→throughput fit of Eq. (24), with a non-negativity floor.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct LinearRssiThroughput {
    /// KB/s gained per dBm.
    pub slope: f64,
    /// KB/s at 0 dBm.
    pub intercept: f64,
    /// Lower bound applied after the linear map (KB/s).
    pub floor: f64,
}

impl LinearRssiThroughput {
    /// The paper's fitted coefficients: `v(sig) = 65.8·sig + 7567.0` KB/s.
    pub fn paper() -> Self {
        Self {
            slope: 65.8,
            intercept: 7567.0,
            floor: 0.0,
        }
    }

    /// Signal strength at which the model produces throughput `v`
    /// (inverse of the linear fit, ignoring the floor). Used by the RTMA
    /// energy-bound → signal-threshold conversion (Eq. (12)).
    pub fn signal_for(&self, v: KbPerSec) -> Dbm {
        Dbm((v.value() - self.intercept) / self.slope)
    }
}

impl Default for LinearRssiThroughput {
    fn default() -> Self {
        Self::paper()
    }
}

impl ThroughputModel for LinearRssiThroughput {
    #[inline]
    fn throughput(&self, sig: Dbm) -> KbPerSec {
        KbPerSec((self.slope * sig.value() + self.intercept).max(self.floor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fit_pinned_values() {
        let m = LinearRssiThroughput::paper();
        // v(-80) = 65.8·(−80) + 7567 = 2303 KB/s.
        assert!((m.throughput(Dbm(-80.0)).value() - 2303.0).abs() < 1e-9);
        // Strongest / weakest paper signals.
        assert!((m.throughput(Dbm(-50.0)).value() - 4277.0).abs() < 1e-9);
        assert!((m.throughput(Dbm(-110.0)).value() - 329.0).abs() < 1e-9);
    }

    #[test]
    fn floor_prevents_negative_throughput() {
        let m = LinearRssiThroughput::paper();
        assert_eq!(m.throughput(Dbm(-130.0)).value(), 0.0);
    }

    #[test]
    fn inverse_roundtrips() {
        let m = LinearRssiThroughput::paper();
        for sig in [-110.0, -95.5, -80.0, -62.1, -50.0] {
            let v = m.throughput(Dbm(sig));
            let back = m.signal_for(v);
            assert!((back.value() - sig).abs() < 1e-9, "{sig} vs {back}");
        }
    }

    #[test]
    fn monotone_in_signal() {
        let m = LinearRssiThroughput::paper();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=60 {
            let sig = -110.0 + i as f64;
            let v = m.throughput(Dbm(sig)).value();
            assert!(v >= prev);
            prev = v;
        }
    }
}
