//! RSSI → throughput model (the paper's Definition 3 and Eq. (24)).
//!
//! The paper adopts the linear fit measured by Suneja et al. (EnVi):
//! `v(sig) = 65.8·sig + 7567.0` KB/s with `sig` in dBm. Over the paper's
//! signal range `[-110, -50]` dBm this spans roughly 329 → 4279 KB/s.

use crate::types::{Dbm, KbPerSec};
use serde::{Deserialize, Serialize};

/// Maps channel quality to the maximum per-second data volume (Def. 3).
pub trait ThroughputModel: Send + Sync {
    /// Maximum achievable throughput at signal strength `sig`.
    fn throughput(&self, sig: Dbm) -> KbPerSec;
}

/// The linear RSSI→throughput fit of Eq. (24), with a non-negativity floor.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct LinearRssiThroughput {
    /// KB/s gained per dBm.
    pub slope: f64,
    /// KB/s at 0 dBm.
    pub intercept: f64,
    /// Lower bound applied after the linear map (KB/s).
    pub floor: f64,
}

impl LinearRssiThroughput {
    /// The paper's fitted coefficients: `v(sig) = 65.8·sig + 7567.0` KB/s.
    pub fn paper() -> Self {
        Self {
            slope: 65.8,
            intercept: 7567.0,
            floor: 0.0,
        }
    }

    /// The per-element map shared by the scalar and batch entry points, so
    /// the two are bit-identical by construction.
    #[inline(always)]
    pub(crate) fn kernel(&self, sig: f64) -> f64 {
        (self.slope * sig + self.intercept).max(self.floor)
    }

    /// Batch form of [`ThroughputModel::throughput`]: `out[i] = v(sigs[i])`
    /// in KB/s. A branch-free tight loop over contiguous slices (the `max`
    /// lowers to a vector max), written for auto-vectorization over the
    /// engine's 32-slot RSSI blocks.
    ///
    /// # Panics
    /// If `sigs` and `out` differ in length.
    pub fn throughput_into(&self, sigs: &[Dbm], out: &mut [f64]) {
        assert_eq!(sigs.len(), out.len(), "batch kernel slice length mismatch");
        for (o, s) in out.iter_mut().zip(sigs) {
            *o = self.kernel(s.value());
        }
    }

    /// Signal strength at which the model produces throughput `v`
    /// (inverse of the linear fit, ignoring the floor). Used by the RTMA
    /// energy-bound → signal-threshold conversion (Eq. (12)).
    pub fn signal_for(&self, v: KbPerSec) -> Dbm {
        Dbm((v.value() - self.intercept) / self.slope)
    }
}

impl Default for LinearRssiThroughput {
    fn default() -> Self {
        Self::paper()
    }
}

impl ThroughputModel for LinearRssiThroughput {
    #[inline]
    fn throughput(&self, sig: Dbm) -> KbPerSec {
        KbPerSec(self.kernel(sig.value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fit_pinned_values() {
        let m = LinearRssiThroughput::paper();
        // v(-80) = 65.8·(−80) + 7567 = 2303 KB/s.
        assert!((m.throughput(Dbm(-80.0)).value() - 2303.0).abs() < 1e-9);
        // Strongest / weakest paper signals.
        assert!((m.throughput(Dbm(-50.0)).value() - 4277.0).abs() < 1e-9);
        assert!((m.throughput(Dbm(-110.0)).value() - 329.0).abs() < 1e-9);
    }

    #[test]
    fn floor_prevents_negative_throughput() {
        let m = LinearRssiThroughput::paper();
        assert_eq!(m.throughput(Dbm(-130.0)).value(), 0.0);
    }

    #[test]
    fn inverse_roundtrips() {
        let m = LinearRssiThroughput::paper();
        for sig in [-110.0, -95.5, -80.0, -62.1, -50.0] {
            let v = m.throughput(Dbm(sig));
            let back = m.signal_for(v);
            assert!((back.value() - sig).abs() < 1e-9, "{sig} vs {back}");
        }
    }

    #[test]
    fn batch_matches_scalar_bitwise() {
        let m = LinearRssiThroughput::paper();
        let sigs: Vec<Dbm> = (0..257).map(|i| Dbm(-130.0 + i as f64 * 0.37)).collect();
        let mut out = vec![0.0; sigs.len()];
        m.throughput_into(&sigs, &mut out);
        for (s, o) in sigs.iter().zip(&out) {
            assert_eq!(
                m.throughput(*s).value().to_bits(),
                o.to_bits(),
                "batch diverged at {s:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn batch_rejects_length_mismatch() {
        let m = LinearRssiThroughput::paper();
        let mut out = [0.0; 2];
        m.throughput_into(&[Dbm(-80.0)], &mut out);
    }

    #[test]
    fn monotone_in_signal() {
        let m = LinearRssiThroughput::paper();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=60 {
            let sig = -110.0 + i as f64;
            let v = m.throughput(Dbm(sig)).value();
            assert!(v >= prev);
            prev = v;
        }
    }
}
