//! RSSI → transmission power model (the paper's Definition 4 and Eq. (24)).
//!
//! The paper's fit: `P(sig) = −0.167 + 1560/v(sig)` mJ/KB, where `v` is the
//! throughput model. Note the consequence the schedulers exploit: the
//! *instantaneous power* while receiving at full rate is
//! `P(sig)·v(sig) = −0.167·v + 1560` mJ/s — i.e. receiving under a strong
//! signal is both faster **and** cheaper per byte, so shifting traffic into
//! good-signal slots saves energy twice over.

use crate::throughput::{LinearRssiThroughput, ThroughputModel};
use crate::types::{Dbm, KbPerSec, MilliJoules, MilliWatts};
use serde::{Deserialize, Serialize};

/// Maps channel quality to reception energy cost (Def. 4).
pub trait PowerModel: Send + Sync {
    /// Energy per kilobyte received at signal strength `sig` (mJ/KB).
    fn energy_per_kb(&self, sig: Dbm) -> f64;

    /// Energy for receiving `kb` kilobytes at signal strength `sig`
    /// (Eq. (3) with the shard expressed in KB).
    fn transmission_energy(&self, sig: Dbm, kb: f64) -> MilliJoules {
        MilliJoules(self.energy_per_kb(sig) * kb)
    }
}

/// The paper's reciprocal-throughput power fit.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct RssiPowerModel {
    /// Additive term in mJ/KB (paper: −0.167).
    pub base: f64,
    /// Reciprocal term numerator in mJ/s (paper: 1560).
    pub scale: f64,
    /// The throughput fit `v(sig)` the reciprocal is taken against.
    pub throughput: LinearRssiThroughput,
}

impl RssiPowerModel {
    /// The paper's fitted coefficients.
    pub fn paper() -> Self {
        Self {
            base: -0.167,
            scale: 1560.0,
            throughput: LinearRssiThroughput::paper(),
        }
    }

    /// The per-element map shared by the scalar and batch entry points.
    /// The degenerate-throughput guard is a select rather than an early
    /// return so the loop body stays branch-free (÷0 yields +inf, which
    /// the select discards).
    #[inline(always)]
    fn kernel(&self, v: f64) -> f64 {
        let p = self.base + self.scale / v;
        if v <= f64::EPSILON {
            f64::MAX / 1e12
        } else {
            p
        }
    }

    /// Batch form of [`PowerModel::energy_per_kb`]: `out[i] = P(sigs[i])`
    /// in mJ/KB, composing the throughput fit and the reciprocal power fit
    /// in one auto-vectorizable pass over the engine's RSSI blocks.
    ///
    /// # Panics
    /// If `sigs` and `out` differ in length.
    pub fn power_per_kb_into(&self, sigs: &[Dbm], out: &mut [f64]) {
        assert_eq!(sigs.len(), out.len(), "batch kernel slice length mismatch");
        for (o, s) in out.iter_mut().zip(sigs) {
            *o = self.kernel(self.throughput.kernel(s.value()));
        }
    }

    /// Instantaneous radio power while receiving at the full rate `v(sig)`:
    /// `P(sig)·v(sig) = base·v + scale` (mJ/s = mW).
    pub fn full_rate_power(&self, sig: Dbm) -> MilliWatts {
        let v = self.throughput.throughput(sig).value();
        MilliWatts(self.base * v + self.scale)
    }

    /// Full-rate power expressed directly in terms of a throughput value.
    /// Used when inverting Eq. (12).
    pub fn full_rate_power_at(&self, v: KbPerSec) -> MilliWatts {
        MilliWatts(self.base * v.value() + self.scale)
    }

    /// Invert [`Self::full_rate_power_at`]: the throughput whose full-rate
    /// power equals `p`. (`base` is negative in the paper fit, so higher
    /// power corresponds to lower throughput.)
    pub fn throughput_for_power(&self, p: MilliWatts) -> KbPerSec {
        KbPerSec((p.value() - self.scale) / self.base)
    }
}

impl Default for RssiPowerModel {
    fn default() -> Self {
        Self::paper()
    }
}

impl PowerModel for RssiPowerModel {
    #[inline]
    fn energy_per_kb(&self, sig: Dbm) -> f64 {
        // Guard the reciprocal (inside `kernel`): below the throughput
        // floor the radio cannot receive anyway; report a very large (but
        // finite) cost.
        self.kernel(self.throughput.throughput(sig).value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fit_pinned_values() {
        let m = RssiPowerModel::paper();
        // v(−80) = 2303 → P = −0.167 + 1560/2303 ≈ 0.510343 mJ/KB.
        let p = m.energy_per_kb(Dbm(-80.0));
        assert!((p - (-0.167 + 1560.0 / 2303.0)).abs() < 1e-12);
        // Strong signal is cheaper per byte than weak signal.
        assert!(m.energy_per_kb(Dbm(-50.0)) < m.energy_per_kb(Dbm(-110.0)));
    }

    #[test]
    fn transmission_energy_is_linear_in_volume() {
        let m = RssiPowerModel::paper();
        let e1 = m.transmission_energy(Dbm(-70.0), 100.0);
        let e2 = m.transmission_energy(Dbm(-70.0), 200.0);
        assert!((e2.value() - 2.0 * e1.value()).abs() < 1e-9);
    }

    #[test]
    fn full_rate_power_identity() {
        let m = RssiPowerModel::paper();
        for sig in [-110.0, -85.0, -50.0] {
            let v = m.throughput.throughput(Dbm(sig)).value();
            let direct = m.full_rate_power(Dbm(sig)).value();
            let composed = m.energy_per_kb(Dbm(sig)) * v;
            assert!((direct - composed).abs() < 1e-9, "sig {sig}");
        }
    }

    #[test]
    fn full_rate_power_decreases_with_signal() {
        // The paradox the schedulers exploit: good signal → lower power.
        let m = RssiPowerModel::paper();
        assert!(m.full_rate_power(Dbm(-50.0)).value() < m.full_rate_power(Dbm(-110.0)).value());
        // Pinned: at −110 dBm, 1560 − 0.167·329 ≈ 1505.06 mW.
        assert!((m.full_rate_power(Dbm(-110.0)).value() - (1560.0 - 0.167 * 329.0)).abs() < 1e-9);
    }

    #[test]
    fn power_throughput_inverse_roundtrip() {
        let m = RssiPowerModel::paper();
        for v in [329.0, 1200.0, 4277.0] {
            let p = m.full_rate_power_at(KbPerSec(v));
            let back = m.throughput_for_power(p);
            assert!((back.value() - v).abs() < 1e-9);
        }
    }

    #[test]
    fn batch_matches_scalar_bitwise() {
        let m = RssiPowerModel::paper();
        // Includes sub-floor signals so the degenerate select path is
        // exercised against the scalar guard.
        let sigs: Vec<Dbm> = (0..257).map(|i| Dbm(-140.0 + i as f64 * 0.41)).collect();
        let mut out = vec![0.0; sigs.len()];
        m.power_per_kb_into(&sigs, &mut out);
        for (s, o) in sigs.iter().zip(&out) {
            assert_eq!(
                m.energy_per_kb(*s).to_bits(),
                o.to_bits(),
                "batch diverged at {s:?}"
            );
        }
    }

    #[test]
    fn degenerate_zero_throughput_is_finite() {
        let m = RssiPowerModel::paper();
        let p = m.energy_per_kb(Dbm(-1000.0));
        assert!(p.is_finite());
        assert!(p > 1e6);
    }
}
