//! EStreamer [16]: burst-shaped delivery sized from the client buffer
//! (Hoque et al., ACM TOMCCAP'14).
//!
//! EStreamer's proxy sends a burst sized to (nearly) fill the client's
//! playout buffer, then idles until the buffer drains to a refill
//! threshold. Bursts amortize the RRC tail over many seconds of playback,
//! so the policy stalls rarely (its rebuffering bound is what EMA is
//! evaluated against in Fig. 9), but:
//!
//! * it is *signal-blind* — a burst fires when the buffer dictates,
//!   regardless of how expensive the current channel is per byte; and
//! * each inter-burst gap still pays one full RRC tail,
//!
//! which together are why EMA undercuts it by >27 % in the paper.

use jmso_gateway::{Allocation, Scheduler, SlotContext};

/// Per-user burst state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Sending a burst until the buffer target is reached.
    Bursting,
    /// Idle until the refill threshold.
    Draining,
}

/// The EStreamer reconstruction.
#[derive(Debug, Clone)]
pub struct EStreamer {
    /// Refill threshold: a burst starts when the buffer drops here (s).
    pub refill_s: f64,
    /// Buffer target a burst fills to (s) — the "buffer size" bursts are
    /// computed from.
    pub target_s: f64,
    phase: Vec<Phase>,
}

impl EStreamer {
    /// Build with explicit thresholds (`refill < target`).
    pub fn new(refill_s: f64, target_s: f64) -> Self {
        assert!(
            refill_s >= 0.0 && target_s > refill_s,
            "need 0 ≤ refill < target"
        );
        Self {
            refill_s,
            target_s,
            phase: Vec::new(),
        }
    }

    /// Defaults used in the figure harness: refill at 5 s, burst to 60 s
    /// (a playout-buffer-sized burst).
    pub fn paper_default() -> Self {
        Self::new(5.0, 60.0)
    }
}

impl Scheduler for EStreamer {
    fn name(&self) -> &'static str {
        "EStreamer"
    }

    fn allocate_into(&mut self, ctx: &SlotContext, out: &mut Allocation) {
        if self.phase.len() != ctx.users.len() {
            self.phase = vec![Phase::Bursting; ctx.users.len()];
        }
        out.reset(ctx.users.len());
        let mut budget = ctx.bs_cap_units;
        for (u, slot) in ctx.users.iter().zip(&mut out.0) {
            match self.phase[u.id] {
                Phase::Bursting if u.buffer_s >= self.target_s => {
                    self.phase[u.id] = Phase::Draining
                }
                Phase::Draining if u.buffer_s <= self.refill_s => {
                    self.phase[u.id] = Phase::Bursting
                }
                _ => {}
            }
            if self.phase[u.id] == Phase::Draining {
                continue;
            }
            // Burst: fill toward the target as fast as the link allows,
            // signal-blind by construction.
            let room_kb = ((self.target_s - u.buffer_s).max(0.0)) * u.rate_kbps;
            let room_units = (room_kb / ctx.delta_kb).ceil() as u64;
            let grant = room_units.min(u.usable_cap_units(ctx.delta_kb)).min(budget);
            budget -= grant;
            *slot = grant;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::test_support::{ctx, user};

    #[test]
    fn bursts_until_target() {
        let mut e = EStreamer::new(5.0, 60.0);
        let mut u = user(0, -70.0, 400.0, 30);
        u.buffer_s = 0.0;
        assert!(e.allocate(&ctx(&[u.clone()], 400)).0[0] > 0);
        u.buffer_s = 59.0;
        assert!(e.allocate(&ctx(&[u.clone()], 400)).0[0] > 0);
        u.buffer_s = 60.0;
        assert_eq!(e.allocate(&ctx(&[u], 400)).0[0], 0, "target reached");
    }

    #[test]
    fn drains_until_refill_threshold() {
        let mut e = EStreamer::new(5.0, 60.0);
        let mut u = user(0, -70.0, 400.0, 30);
        u.buffer_s = 60.0;
        let _ = e.allocate(&ctx(&[u.clone()], 400)); // → Draining
        u.buffer_s = 30.0;
        assert_eq!(e.allocate(&ctx(&[u.clone()], 400)).0[0], 0, "hysteresis");
        u.buffer_s = 5.0;
        assert!(e.allocate(&ctx(&[u], 400)).0[0] > 0, "refill fires");
    }

    #[test]
    fn burst_fires_regardless_of_signal() {
        // Signal-blind: the burst fires identically at −55 and −108 dBm.
        for sig in [-55.0, -108.0] {
            let mut e = EStreamer::new(5.0, 60.0);
            let mut u = user(0, sig, 400.0, 6);
            u.buffer_s = 2.0;
            assert!(
                e.allocate(&ctx(&[u], 400)).0[0] > 0,
                "burst must fire at {sig} dBm"
            );
        }
    }

    #[test]
    fn validates_under_competition() {
        let users: Vec<_> = (0..5).map(|i| user(i, -70.0, 450.0, 50)).collect();
        let mut e = EStreamer::paper_default();
        let c = ctx(&users, 120);
        let a = e.allocate(&c);
        a.validate(&c).expect("valid allocation");
        assert_eq!(a.total_units(), 120, "bursting users saturate the BS");
    }

    #[test]
    #[should_panic(expected = "refill < target")]
    fn bad_thresholds_rejected() {
        EStreamer::new(10.0, 10.0);
    }
}
