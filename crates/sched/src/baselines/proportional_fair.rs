//! Proportional-fair (PF): the classical cellular downlink scheduler.
//!
//! Each slot, users are ranked by the PF metric `v(sigᵢ)/T̄ᵢ` — the
//! instantaneous link rate over an exponentially averaged served
//! throughput — and the BS budget is granted in that order. PF is the
//! industry-standard point of comparison for any cellular allocation
//! study: it is channel-aware (serves users at their channel peaks, the
//! same opportunism EMA exploits for energy) but video-oblivious — it
//! knows nothing about bitrates, buffers or rebuffering, which is exactly
//! the gap the paper's cross-layer schedulers fill.

use jmso_gateway::{Allocation, Scheduler, SlotContext};

/// The proportional-fair baseline.
#[derive(Debug, Clone)]
pub struct ProportionalFair {
    /// EWMA horizon for the served-throughput average (classic PF uses
    /// ~1000 slots at millisecond TTIs; at 1 s slots a shorter memory is
    /// appropriate).
    pub ewma_alpha: f64,
    avg_served_kb: Vec<f64>,
    // Reusable ranking scratch so the hot path allocates nothing.
    order: Vec<usize>,
}

impl ProportionalFair {
    /// Build with the EWMA factor α ∈ (0, 1].
    pub fn new(ewma_alpha: f64) -> Self {
        assert!(ewma_alpha > 0.0 && ewma_alpha <= 1.0, "α must be in (0, 1]");
        Self {
            ewma_alpha,
            avg_served_kb: Vec::new(),
            order: Vec::new(),
        }
    }

    /// The default configuration used in comparisons.
    pub fn paper_default() -> Self {
        Self::new(0.05)
    }
}

impl Scheduler for ProportionalFair {
    fn name(&self) -> &'static str {
        "PF"
    }

    fn allocate_into(&mut self, ctx: &SlotContext, out: &mut Allocation) {
        let n = ctx.users.len();
        if self.avg_served_kb.len() != n {
            // Seed averages at a nominal rate to avoid divide-by-zero and
            // cold-start lotteries.
            self.avg_served_kb = vec![1.0; n];
        }
        self.order.clear();
        self.order.extend(0..n);
        let avg_served_kb = &self.avg_served_kb;
        let metric = |i: usize| {
            let u = &ctx.users[i];
            (u.link_cap_units as f64 * ctx.delta_kb) / avg_served_kb[i]
        };
        // Descending metric; explicit index tie-break keeps the unstable
        // (allocation-free) sort deterministic.
        // `total_cmp` matches `partial_cmp` on the finite non-negative
        // metrics this computes (rates and averages are positive, so no
        // −0.0/+0.0 pair can appear) and cannot panic.
        self.order
            .sort_unstable_by(|&a, &b| metric(b).total_cmp(&metric(a)).then(a.cmp(&b)));

        out.reset(n);
        let alloc = &mut out.0;
        let mut budget = ctx.bs_cap_units;
        for &i in &self.order {
            if budget == 0 {
                break;
            }
            let grant = ctx.users[i].usable_cap_units(ctx.delta_kb).min(budget);
            alloc[i] = grant;
            budget -= grant;
        }

        // EWMA update with what was actually granted.
        for (avg, granted) in self.avg_served_kb.iter_mut().zip(alloc.iter()) {
            let served = *granted as f64 * ctx.delta_kb;
            *avg = self.ewma_alpha * served + (1.0 - self.ewma_alpha) * *avg;
            // Keep strictly positive for the metric.
            *avg = avg.max(1e-6);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::test_support::{ctx, user};

    #[test]
    fn serves_best_channel_first_when_cold() {
        let users = vec![user(0, -105.0, 450.0, 8), user(1, -55.0, 450.0, 80)];
        let mut pf = ProportionalFair::paper_default();
        let a = pf.allocate(&ctx(&users, 60));
        assert!(
            a.0[1] > a.0[0],
            "strong channel wins the cold start: {:?}",
            a.0
        );
    }

    #[test]
    fn starved_user_rises_in_priority() {
        // User 1 has double the channel; with PF, user 0 still gets served
        // regularly because their average collapses while user 1's grows.
        let users = vec![user(0, -95.0, 450.0, 20), user(1, -60.0, 450.0, 40)];
        let mut pf = ProportionalFair::paper_default();
        let mut user0_total = 0;
        for _ in 0..50 {
            // Budget only covers one user's cap: winner takes most.
            let a = pf.allocate(&ctx(&users, 25));
            user0_total += a.0[0];
        }
        assert!(
            user0_total > 100,
            "PF must cycle service to the weak user, got {user0_total}"
        );
    }

    #[test]
    fn respects_constraints() {
        let users: Vec<_> = (0..6)
            .map(|i| user(i, -70.0 - 5.0 * i as f64, 450.0, 30))
            .collect();
        let mut pf = ProportionalFair::paper_default();
        let c = ctx(&users, 70);
        let a = pf.allocate(&c);
        a.validate(&c).expect("valid allocation");
        assert_eq!(a.total_units(), 70, "work conserving under load");
    }

    #[test]
    #[should_panic(expected = "α must be in (0, 1]")]
    fn zero_alpha_rejected() {
        ProportionalFair::new(0.0);
    }
}
