//! Throttling [15]: pace each flow "at a rate that is lower than the bulk
//! transfer capacity but higher than the encoding rate".
//!
//! Each slot, every user is offered `⌈κ·τ·pᵢ/δ⌉` units (κ > 1), clamped by
//! Eq. (1)/(2) and remaining bytes, in fixed user order. The radio stays
//! continuously active (no bursting), so the policy never banks tail time —
//! the paper's Fig. 5b shows the resulting energy cost, and Fig. 5a the
//! rebuffering collapse once `Σ κ·pᵢ` exceeds the BS capacity.

use jmso_gateway::{Allocation, Scheduler, SlotContext};

/// The server-side pacing baseline.
#[derive(Debug, Clone, Copy)]
pub struct Throttling {
    /// Pacing factor κ over the encoding rate.
    pub kappa: f64,
}

impl Throttling {
    /// Throttle at `kappa` times the encoding rate (κ must exceed 1 to
    /// ever build buffer).
    pub fn new(kappa: f64) -> Self {
        assert!(kappa > 0.0, "κ must be positive");
        Self { kappa }
    }

    /// The typical configuration: 25 % above the encoding rate.
    pub fn paper_default() -> Self {
        Self::new(1.25)
    }
}

impl Scheduler for Throttling {
    fn name(&self) -> &'static str {
        "Throttling"
    }

    fn allocate_into(&mut self, ctx: &SlotContext, out: &mut Allocation) {
        out.reset(ctx.users.len());
        let mut budget = ctx.bs_cap_units;
        for (u, slot) in ctx.users.iter().zip(&mut out.0) {
            let target = ((self.kappa * ctx.tau * u.rate_kbps) / ctx.delta_kb).ceil() as u64;
            let grant = target.min(u.usable_cap_units(ctx.delta_kb)).min(budget);
            budget -= grant;
            *slot = grant;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::test_support::{ctx, user};

    #[test]
    fn paces_at_kappa_times_rate() {
        let users = vec![user(0, -70.0, 400.0, 50)];
        let mut t = Throttling::new(1.25);
        let a = t.allocate(&ctx(&users, 400));
        // ⌈1.25·400/50⌉ = 10 units.
        assert_eq!(a.0[0], 10);
    }

    #[test]
    fn never_exceeds_link_cap() {
        let users = vec![user(0, -70.0, 600.0, 5)];
        let mut t = Throttling::new(2.0);
        assert_eq!(t.allocate(&ctx(&users, 400)).0[0], 5);
    }

    #[test]
    fn oversubscription_starves_late_users() {
        // 5 users each wanting 10 units from a budget of 25.
        let users: Vec<_> = (0..5).map(|i| user(i, -70.0, 400.0, 50)).collect();
        let mut t = Throttling::new(1.25);
        let a = t.allocate(&ctx(&users, 25));
        assert_eq!(a.0, vec![10, 10, 5, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_kappa_rejected() {
        Throttling::new(0.0);
    }
}
