//! Round-robin: the classical competition-aware strawman.
//!
//! Each slot the starting user rotates; every user is offered up to their
//! per-slot need (like RTMA's tranches) and leftover budget is swept again
//! at full speed. Unlike RTMA it is rate- and signal-oblivious: the
//! rotation ignores who is cheap to serve and who can actually receive,
//! which is exactly the cross-layer information the paper's schedulers
//! exploit. Including it separates "RTMA wins because it is fair" from
//! "RTMA wins because it is cross-layer".

use jmso_gateway::{Allocation, Scheduler, SlotContext};

/// The rotating fair-share baseline.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next_start: usize,
}

impl RoundRobin {
    /// Construct the baseline.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn name(&self) -> &'static str {
        "RoundRobin"
    }

    fn allocate_into(&mut self, ctx: &SlotContext, out: &mut Allocation) {
        let n = ctx.users.len();
        out.reset(n);
        if n == 0 {
            return;
        }
        let alloc = &mut out.0;
        let mut budget = ctx.bs_cap_units;
        let start = self.next_start % n;
        self.next_start = (self.next_start + 1) % n;

        // Pass 1: one need-tranche each, starting from the rotation point.
        for k in 0..n {
            let i = (start + k) % n;
            let u = &ctx.users[i];
            let need = ((ctx.tau * u.rate_kbps) / ctx.delta_kb).ceil() as u64;
            let grant = need.min(u.usable_cap_units(ctx.delta_kb)).min(budget);
            alloc[i] = grant;
            budget -= grant;
            if budget == 0 {
                break;
            }
        }
        // Pass 2: sweep leftover budget at full speed in the same order.
        if budget > 0 {
            for k in 0..n {
                let i = (start + k) % n;
                let u = &ctx.users[i];
                let headroom = u.usable_cap_units(ctx.delta_kb) - alloc[i];
                let grant = headroom.min(budget);
                alloc[i] += grant;
                budget -= grant;
                if budget == 0 {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::test_support::{ctx, user};

    #[test]
    fn rotation_moves_the_privilege() {
        let users: Vec<_> = (0..3).map(|i| user(i, -70.0, 500.0, 50)).collect();
        let mut rr = RoundRobin::new();
        // Budget covers one full user plus change: the winner rotates.
        let a0 = rr.allocate(&ctx(&users, 55));
        let a1 = rr.allocate(&ctx(&users, 55));
        let a2 = rr.allocate(&ctx(&users, 55));
        let winner = |a: &Allocation| {
            a.0.iter()
                .enumerate()
                .max_by_key(|(_, v)| **v)
                .map(|(i, _)| i)
                .unwrap()
        };
        let winners = [winner(&a0), winner(&a1), winner(&a2)];
        assert_eq!(winners, [0, 1, 2]);
    }

    #[test]
    fn needs_served_before_extras() {
        let users: Vec<_> = (0..4).map(|i| user(i, -70.0, 500.0, 50)).collect();
        let mut rr = RoundRobin::new();
        // Budget = exactly 4 need-tranches (⌈500/50⌉ = 10 each).
        let a = rr.allocate(&ctx(&users, 40));
        assert_eq!(a.0, vec![10, 10, 10, 10]);
    }

    #[test]
    fn leftover_swept_at_full_speed() {
        let users: Vec<_> = (0..2).map(|i| user(i, -70.0, 500.0, 30)).collect();
        let mut rr = RoundRobin::new();
        let c = ctx(&users, 100);
        let a = rr.allocate(&c);
        assert_eq!(a.total_units(), 60, "both users at link cap");
        a.validate(&c).expect("valid allocation");
    }

    #[test]
    fn empty_users() {
        let users = vec![];
        let mut rr = RoundRobin::new();
        assert!(rr.allocate(&ctx(&users, 10)).0.is_empty());
    }
}
