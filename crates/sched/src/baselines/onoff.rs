//! ON-OFF [14]: the watermark protocol real mobile players implement
//! (YouTube, Dailymotion, Vimeo) — fill the client buffer to a high
//! watermark at full speed, then stop reading from the socket until it
//! drains to a low watermark.
//!
//! Per user, the policy is a two-state machine driven by the reported
//! buffer occupancy. It is competition-oblivious: every ON user grabs as
//! much as the link allows, in fixed order, which is why its rebuffering
//! degrades against RTMA as the cell fills (Fig. 5a) even though its OFF
//! periods save some energy versus Default (Fig. 5b).

use jmso_gateway::{Allocation, Scheduler, SlotContext};

/// The per-user watermark state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Reading from the socket at full speed.
    On,
    /// Socket idle until the buffer drains to the low watermark.
    Off,
}

/// The client watermark baseline.
#[derive(Debug, Clone)]
pub struct OnOff {
    low_s: f64,
    high_s: f64,
    phase: Vec<Phase>,
}

impl OnOff {
    /// Watermarks in seconds of buffered playback (`low < high`).
    pub fn new(low_s: f64, high_s: f64) -> Self {
        assert!(low_s >= 0.0 && high_s > low_s, "need 0 ≤ low < high");
        Self {
            low_s,
            high_s,
            phase: Vec::new(),
        }
    }

    /// Watermarks in the range reported for mobile YouTube players:
    /// resume below ~10 s, stop above ~40 s.
    pub fn paper_default() -> Self {
        Self::new(10.0, 40.0)
    }
}

impl Scheduler for OnOff {
    fn name(&self) -> &'static str {
        "ON-OFF"
    }

    fn allocate_into(&mut self, ctx: &SlotContext, out: &mut Allocation) {
        if self.phase.len() != ctx.users.len() {
            self.phase = vec![Phase::On; ctx.users.len()];
        }
        out.reset(ctx.users.len());
        let mut budget = ctx.bs_cap_units;
        for (u, slot) in ctx.users.iter().zip(&mut out.0) {
            // Watermark transitions on the reported occupancy.
            match self.phase[u.id] {
                Phase::On if u.buffer_s >= self.high_s => self.phase[u.id] = Phase::Off,
                Phase::Off if u.buffer_s <= self.low_s => self.phase[u.id] = Phase::On,
                _ => {}
            }
            if self.phase[u.id] == Phase::Off {
                continue;
            }
            // ON: full speed, but never fill past the high watermark.
            let room_kb = ((self.high_s - u.buffer_s).max(0.0)) * u.rate_kbps;
            let room_units = (room_kb / ctx.delta_kb).ceil() as u64;
            let grant = room_units.min(u.usable_cap_units(ctx.delta_kb)).min(budget);
            budget -= grant;
            *slot = grant;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::test_support::{ctx, user};

    #[test]
    fn fills_at_full_speed_when_low() {
        let users = vec![user(0, -70.0, 400.0, 20)];
        let mut p = OnOff::new(10.0, 40.0);
        let a = p.allocate(&ctx(&users, 400));
        assert_eq!(a.0[0], 20, "link-limited full-speed fill");
    }

    #[test]
    fn goes_off_above_high_watermark() {
        let mut u = user(0, -70.0, 400.0, 20);
        u.buffer_s = 45.0;
        let users = vec![u];
        let mut p = OnOff::new(10.0, 40.0);
        assert_eq!(p.allocate(&ctx(&users, 400)).0[0], 0);
    }

    #[test]
    fn stays_off_until_low_watermark() {
        let mut p = OnOff::new(10.0, 40.0);
        // Drive above high → OFF.
        let mut u = user(0, -70.0, 400.0, 20);
        u.buffer_s = 41.0;
        assert_eq!(p.allocate(&ctx(&[u.clone()], 400)).0[0], 0);
        // Mid-range: still OFF (hysteresis).
        u.buffer_s = 20.0;
        assert_eq!(p.allocate(&ctx(&[u.clone()], 400)).0[0], 0);
        // At/below low: back ON.
        u.buffer_s = 9.0;
        assert!(p.allocate(&ctx(&[u], 400)).0[0] > 0);
    }

    #[test]
    fn never_fills_past_high_watermark() {
        let mut u = user(0, -70.0, 100.0, 1000);
        u.buffer_s = 38.0;
        let users = vec![u];
        let mut p = OnOff::new(10.0, 40.0);
        let a = p.allocate(&ctx(&users, 4000));
        // Room = 2 s · 100 KB/s = 200 KB = 4 units.
        assert_eq!(a.0[0], 4);
    }

    #[test]
    fn competition_oblivious_order_starves_tail() {
        let users: Vec<_> = (0..3).map(|i| user(i, -70.0, 400.0, 40)).collect();
        let mut p = OnOff::new(10.0, 40.0);
        let a = p.allocate(&ctx(&users, 50));
        assert_eq!(a.0, vec![40, 10, 0]);
    }

    #[test]
    #[should_panic(expected = "low < high")]
    fn bad_watermarks_rejected() {
        OnOff::new(10.0, 10.0);
    }
}
