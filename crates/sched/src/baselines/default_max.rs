//! The Default strategy: "delivers video contents to each user as much as
//! possible to make full use of throughput" (§VI-A).
//!
//! Users are served in fixed index order, each taking
//! `min(link cap, remaining BS budget, remaining bytes)`. Early users can
//! seize the whole BS budget — exactly the unfairness the paper's Fig. 2
//! attributes to this strategy.

use jmso_gateway::{Allocation, Scheduler, SlotContext};

/// The greedy-max baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultMax;

impl DefaultMax {
    /// Construct the baseline.
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for DefaultMax {
    fn name(&self) -> &'static str {
        "Default"
    }

    fn wants_soa(&self) -> bool {
        true
    }

    fn allocate_into(&mut self, ctx: &SlotContext, out: &mut Allocation) {
        out.reset(ctx.users.len());
        let mut budget = ctx.bs_cap_units;
        if let Some(soa) = ctx.soa {
            // The ceiling column is `usable_cap_units(δ)` precomputed by
            // the collector — one contiguous u64 stream instead of a
            // strided gather, same grants bit-for-bit.
            for (&c, slot) in soa.ceiling_units.iter().zip(&mut out.0) {
                let grant = c.min(budget);
                budget -= grant;
                *slot = grant;
            }
        } else {
            for (u, slot) in ctx.users.iter().zip(&mut out.0) {
                let grant = u.usable_cap_units(ctx.delta_kb).min(budget);
                budget -= grant;
                *slot = grant;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::test_support::{ctx, user};

    #[test]
    fn takes_everything_available() {
        let users = vec![user(0, -70.0, 450.0, 30), user(1, -70.0, 450.0, 30)];
        let mut d = DefaultMax::new();
        let c = ctx(&users, 400);
        let a = d.allocate(&c);
        assert_eq!(a.0, vec![30, 30]);
        a.validate(&c).expect("valid allocation");
    }

    #[test]
    fn early_users_seize_scarce_budget() {
        let users = vec![
            user(0, -70.0, 450.0, 50),
            user(1, -70.0, 450.0, 50),
            user(2, -70.0, 450.0, 50),
        ];
        let mut d = DefaultMax::new();
        let a = d.allocate(&ctx(&users, 60));
        assert_eq!(a.0, vec![50, 10, 0], "first-come order starves the tail");
    }

    #[test]
    fn respects_remaining_bytes() {
        let mut u = user(0, -70.0, 450.0, 50);
        u.remaining_kb = 120.0; // 3 units of 50 KB
        let users = vec![u];
        let mut d = DefaultMax::new();
        let a = d.allocate(&ctx(&users, 400));
        assert_eq!(a.0[0], 3);
    }
}
