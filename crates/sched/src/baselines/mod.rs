//! The comparison policies of the paper's §VI.
//!
//! * [`DefaultMax`] — the paper's baseline: greedily give every user as
//!   much as the link and BS allow, in fixed user order.
//! * [`Throttling`] — server-side pacing at `κ·pᵢ` (Hoque et al. \[15\]):
//!   above the encoding rate, below bulk capacity, continuous radio.
//! * [`OnOff`] — the YouTube-style client buffer watermark protocol
//!   (Hoque et al. \[14\]): fill to a high watermark, stop reading until the
//!   low watermark.
//! * [`Salsa`] — the energy-delay tradeoff scheduler (Ra et al. \[17\]):
//!   defer until the channel beats an EWMA or queue pressure forces a
//!   send; tail-blind by design.
//! * [`EStreamer`] — burst-shaped delivery sized from the client buffer
//!   (Hoque et al. \[16\]); signal-blind by design.
//! * [`RoundRobin`] and [`ProportionalFair`] — two classical cellular
//!   schedulers *not* in the paper, included to separate what RTMA/EMA
//!   gain from fairness alone (RR) and channel-awareness alone (PF) from
//!   what they gain from the cross-layer video information.
//!
//! These are re-implementations from the descriptions in the paper (the
//! originals are closed-source); each reproduces precisely the deficiency
//! the paper attributes to it — see DESIGN.md §3.

mod default_max;
mod estreamer;
mod onoff;
mod proportional_fair;
mod round_robin;
mod salsa;
mod throttling;

pub use default_max::DefaultMax;
pub use estreamer::EStreamer;
pub use onoff::OnOff;
pub use proportional_fair::ProportionalFair;
pub use round_robin::RoundRobin;
pub use salsa::Salsa;
pub use throttling::Throttling;

#[cfg(test)]
pub(crate) mod test_support {
    use jmso_gateway::{SlotContext, UserSnapshot};
    use jmso_radio::rrc::RrcState;
    use jmso_radio::Dbm;

    pub(crate) fn user(id: usize, sig: f64, rate: f64, link_cap: u64) -> UserSnapshot {
        UserSnapshot {
            id,
            signal: Dbm(sig),
            rate_kbps: rate,
            buffer_s: 0.0,
            remaining_kb: 1e9,
            active: true,
            link_cap_units: link_cap,
            idle_s: 0.0,
            rrc_state: RrcState::Dch,
        }
    }

    pub(crate) fn ctx<'a>(users: &'a [UserSnapshot], bs_cap: u64) -> SlotContext<'a> {
        SlotContext {
            slot: 0,
            tau: 1.0,
            delta_kb: 50.0,
            bs_cap_units: bs_cap,
            users,
            soa: None,
        }
    }
}
