//! SALSA [17]: the energy-delay tradeoff scheduler of Ra et al.
//!
//! SALSA defers transmission until the channel looks better than its
//! recent history, with a queue-pressure override so the deferral is
//! bounded. Our reconstruction keeps a per-user EWMA of link throughput
//! and transmits at full speed when either
//!
//! * the instantaneous throughput beats `θ · EWMA` (a good-channel
//!   opportunity), or
//! * the client buffer has drained below a safety floor (delay pressure).
//!
//! Crucially — and this is the deficiency the paper exploits in Fig. 9 —
//! the decision rule is *tail-blind*: deferrals are scored only by channel
//! quality and queue pressure, never by the tail energy the resulting
//! idle gaps burn.

use jmso_gateway::{Allocation, Scheduler, SlotContext};

/// The SALSA reconstruction.
#[derive(Debug, Clone)]
pub struct Salsa {
    /// Channel-opportunity factor θ (transmit when cap ≥ θ·EWMA).
    pub theta: f64,
    /// Buffer floor (seconds) that forces a transmission.
    pub buffer_floor_s: f64,
    /// EWMA smoothing factor α ∈ (0, 1].
    pub ewma_alpha: f64,
    ewma_cap: Vec<f64>,
}

impl Salsa {
    /// Build with explicit parameters.
    pub fn new(theta: f64, buffer_floor_s: f64, ewma_alpha: f64) -> Self {
        assert!(theta > 0.0, "θ must be positive");
        assert!(buffer_floor_s >= 0.0);
        assert!((0.0..=1.0).contains(&ewma_alpha) && ewma_alpha > 0.0);
        Self {
            theta,
            buffer_floor_s,
            ewma_alpha,
            ewma_cap: Vec::new(),
        }
    }

    /// Defaults used in the figure harness: transmit on channels at or
    /// above the recent average, keep at least 3 s buffered.
    pub fn paper_default() -> Self {
        Self::new(1.0, 3.0, 0.2)
    }
}

impl Scheduler for Salsa {
    fn name(&self) -> &'static str {
        "SALSA"
    }

    fn allocate_into(&mut self, ctx: &SlotContext, out: &mut Allocation) {
        if self.ewma_cap.len() != ctx.users.len() {
            // Seed the EWMA with the first observation.
            self.ewma_cap = ctx.users.iter().map(|u| u.link_cap_units as f64).collect();
        }
        out.reset(ctx.users.len());
        let mut budget = ctx.bs_cap_units;
        for (u, slot) in ctx.users.iter().zip(&mut out.0) {
            let cap_now = u.link_cap_units as f64;
            let ewma = &mut self.ewma_cap[u.id];
            let good_channel = cap_now >= self.theta * *ewma;
            *ewma = self.ewma_alpha * cap_now + (1.0 - self.ewma_alpha) * *ewma;
            let pressure = u.buffer_s < self.buffer_floor_s;
            if !(good_channel || pressure) {
                continue;
            }
            let grant = u.usable_cap_units(ctx.delta_kb).min(budget);
            budget -= grant;
            *slot = grant;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::test_support::{ctx, user};

    #[test]
    fn transmits_on_good_channel() {
        let mut s = Salsa::new(1.0, 3.0, 0.2);
        // Seed EWMA with a weak channel, then show a strong one.
        let mut weak = user(0, -100.0, 400.0, 10);
        weak.buffer_s = 50.0; // no pressure
        let _ = s.allocate(&ctx(&[weak], 400));
        let mut strong = user(0, -60.0, 400.0, 80);
        strong.buffer_s = 50.0;
        let a = s.allocate(&ctx(&[strong], 400));
        assert!(a.0[0] > 0, "strong channel beats EWMA");
    }

    #[test]
    fn defers_on_bad_channel_without_pressure() {
        let mut s = Salsa::new(1.0, 3.0, 0.2);
        let mut good = user(0, -60.0, 400.0, 80);
        good.buffer_s = 50.0;
        let _ = s.allocate(&ctx(&[good.clone()], 400)); // EWMA ≈ 80
        let mut bad = user(0, -105.0, 400.0, 8);
        bad.buffer_s = 50.0;
        let a = s.allocate(&ctx(&[bad], 400));
        assert_eq!(a.0[0], 0, "bad channel, full buffer ⇒ defer");
    }

    #[test]
    fn buffer_pressure_overrides_channel() {
        let mut s = Salsa::new(1.0, 3.0, 0.2);
        let mut good = user(0, -60.0, 400.0, 80);
        good.buffer_s = 50.0;
        let _ = s.allocate(&ctx(&[good], 400));
        let mut starved = user(0, -105.0, 400.0, 8);
        starved.buffer_s = 1.0; // below the floor
        let a = s.allocate(&ctx(&[starved], 400));
        assert!(a.0[0] > 0, "delay pressure forces a send");
    }

    #[test]
    fn respects_bs_budget() {
        let users: Vec<_> = (0..4).map(|i| user(i, -60.0, 400.0, 40)).collect();
        let mut s = Salsa::paper_default();
        let c = ctx(&users, 60);
        let a = s.allocate(&c);
        assert!(a.total_units() <= 60);
        a.validate(&c).expect("valid allocation");
    }
}
