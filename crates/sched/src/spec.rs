//! Serializable scheduler descriptions — the factory scenario configs use.

use crate::baselines::{
    DefaultMax, EStreamer, OnOff, ProportionalFair, RoundRobin, Salsa, Throttling,
};
use crate::cost::{CrossLayerModels, TailPricing};
use crate::ema::Ema;
use crate::ema_fast::EmaFast;
use crate::rtma::Rtma;
use crate::threshold::SignalThreshold;
use jmso_gateway::Scheduler;
use jmso_radio::MilliJoules;
use serde::{Deserialize, Serialize};

/// A named, parameterised scheduling policy.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum SchedulerSpec {
    /// The greedy-max Default baseline.
    Default,
    /// RTMA with the Eq. (12) threshold derived from a per-slot energy
    /// budget `Φ` (mJ per user-slot).
    Rtma {
        /// Energy budget Φ in mJ.
        phi_mj: f64,
        /// Best-effort fallback: when the threshold leaves BS budget
        /// unservable (degraded cap, deep fades), re-sweep ignoring it
        /// and emit a `DegradationEvent`. Off by default (paper-exact).
        #[serde(default)]
        best_effort: bool,
    },
    /// RTMA without an energy constraint.
    RtmaUnbounded,
    /// EMA (exact DP form of Algorithm 2), solved by the monotone-deque
    /// DP by default.
    Ema {
        /// Lyapunov weight V.
        v: f64,
        /// How idle slots are priced (defaults to the literal Eq. (5)).
        #[serde(default)]
        tail: TailPricing,
        /// Use the naive O(P · C · φ_max) reference DP instead of the
        /// monotone-deque solver. Differential-testing escape hatch;
        /// identical allocations, orders of magnitude slower.
        #[serde(default)]
        reference_dp: bool,
        /// Saturate virtual queues `PCᵢ(n)` at this bound, seconds
        /// (graceful degradation under prolonged outage). `None` keeps
        /// the paper-exact unbounded queues.
        #[serde(default)]
        pc_clamp: Option<f64>,
    },
    /// EMA solved by the exact fast greedy (identical objective).
    EmaFast {
        /// Lyapunov weight V.
        v: f64,
        /// How idle slots are priced (defaults to the literal Eq. (5)).
        #[serde(default)]
        tail: TailPricing,
        /// Saturate virtual queues `PCᵢ(n)` at this bound, seconds.
        #[serde(default)]
        pc_clamp: Option<f64>,
    },
    /// Server-side pacing at κ·pᵢ.
    Throttling {
        /// Pacing factor κ.
        kappa: f64,
    },
    /// Client watermark ON-OFF protocol.
    OnOff {
        /// Resume-reading watermark, seconds.
        low_s: f64,
        /// Stop-reading watermark, seconds.
        high_s: f64,
    },
    /// SALSA energy-delay deferral.
    Salsa {
        /// Channel-opportunity factor θ.
        theta: f64,
        /// Buffer floor that forces a send, seconds.
        buffer_floor_s: f64,
        /// EWMA smoothing α.
        ewma_alpha: f64,
    },
    /// EStreamer burst shaping.
    EStreamer {
        /// Refill threshold, seconds.
        refill_s: f64,
        /// Burst target, seconds.
        target_s: f64,
    },
    /// Rotating fair-share (extension baseline, not in the paper).
    RoundRobin,
    /// Proportional-fair cellular scheduler (extension baseline).
    ProportionalFair {
        /// EWMA factor of the served-throughput average.
        ewma_alpha: f64,
    },
}

impl SchedulerSpec {
    /// Instantiate the policy. `tau` and `models` parameterize the
    /// cross-layer policies (RTMA's threshold, EMA's cost).
    pub fn build(&self, tau: f64, models: &CrossLayerModels) -> Box<dyn Scheduler> {
        match *self {
            SchedulerSpec::Default => Box::new(DefaultMax::new()),
            SchedulerSpec::Rtma {
                phi_mj,
                best_effort,
            } => Box::new(
                Rtma::with_energy_bound(MilliJoules(phi_mj), tau, models)
                    .with_best_effort(best_effort),
            ),
            SchedulerSpec::RtmaUnbounded => {
                Box::new(Rtma::with_threshold(SignalThreshold::allow_all()))
            }
            SchedulerSpec::Ema {
                v,
                tail,
                reference_dp,
                pc_clamp,
            } => Box::new(
                Ema::new(v, *models)
                    .with_tail_pricing(tail)
                    .with_reference_solver(reference_dp)
                    .with_pc_clamp(pc_clamp),
            ),
            SchedulerSpec::EmaFast { v, tail, pc_clamp } => Box::new(
                EmaFast::new(v, *models)
                    .with_tail_pricing(tail)
                    .with_pc_clamp(pc_clamp),
            ),
            SchedulerSpec::Throttling { kappa } => Box::new(Throttling::new(kappa)),
            SchedulerSpec::OnOff { low_s, high_s } => Box::new(OnOff::new(low_s, high_s)),
            SchedulerSpec::Salsa {
                theta,
                buffer_floor_s,
                ewma_alpha,
            } => Box::new(Salsa::new(theta, buffer_floor_s, ewma_alpha)),
            SchedulerSpec::EStreamer { refill_s, target_s } => {
                Box::new(EStreamer::new(refill_s, target_s))
            }
            SchedulerSpec::RoundRobin => Box::new(RoundRobin::new()),
            SchedulerSpec::ProportionalFair { ewma_alpha } => {
                Box::new(ProportionalFair::new(ewma_alpha))
            }
        }
    }

    /// Short label for figure legends and CSV columns.
    pub fn label(&self) -> String {
        match self {
            SchedulerSpec::Default => "Default".into(),
            SchedulerSpec::Rtma { phi_mj, .. } => format!("RTMA(Φ={phi_mj:.0}mJ)"),
            SchedulerSpec::RtmaUnbounded => "RTMA(∞)".into(),
            SchedulerSpec::Ema { v, .. } => format!("EMA(V={v})"),
            SchedulerSpec::EmaFast { v, .. } => format!("EMA-fast(V={v})"),
            SchedulerSpec::Throttling { kappa } => format!("Throttling(κ={kappa})"),
            SchedulerSpec::OnOff { low_s, high_s } => format!("ON-OFF({low_s}/{high_s}s)"),
            SchedulerSpec::Salsa { .. } => "SALSA".into(),
            SchedulerSpec::EStreamer { .. } => "EStreamer".into(),
            SchedulerSpec::RoundRobin => "RoundRobin".into(),
            SchedulerSpec::ProportionalFair { .. } => "PF".into(),
        }
    }

    /// The paper's default parameterisations for the three §VI baselines.
    pub fn throttling_default() -> Self {
        SchedulerSpec::Throttling { kappa: 1.25 }
    }

    /// ON-OFF with the YouTube-style watermarks.
    pub fn onoff_default() -> Self {
        SchedulerSpec::OnOff {
            low_s: 10.0,
            high_s: 40.0,
        }
    }

    /// SALSA defaults used in the figure harness.
    pub fn salsa_default() -> Self {
        SchedulerSpec::Salsa {
            theta: 1.0,
            buffer_floor_s: 3.0,
            ewma_alpha: 0.2,
        }
    }

    /// EStreamer defaults used in the figure harness.
    pub fn estreamer_default() -> Self {
        SchedulerSpec::EStreamer {
            refill_s: 5.0,
            target_s: 60.0,
        }
    }

    /// RTMA with the given energy budget and no fallback (paper-exact).
    pub fn rtma(phi_mj: f64) -> Self {
        SchedulerSpec::Rtma {
            phi_mj,
            best_effort: false,
        }
    }

    /// EMA-fast with the literal Eq. (5) per-slot tail pricing.
    pub fn ema_fast(v: f64) -> Self {
        SchedulerSpec::EmaFast {
            v,
            tail: TailPricing::PerSlot,
            pc_clamp: None,
        }
    }

    /// EMA-fast with the amortized tail pricing the figure harness uses
    /// (see [`TailPricing`]).
    pub fn ema_fast_amortized(v: f64) -> Self {
        SchedulerSpec::EmaFast {
            v,
            tail: TailPricing::amortized_default(),
            pc_clamp: None,
        }
    }

    /// EMA (DP) with the literal Eq. (5) per-slot tail pricing.
    pub fn ema_dp(v: f64) -> Self {
        SchedulerSpec::Ema {
            v,
            tail: TailPricing::PerSlot,
            reference_dp: false,
            pc_clamp: None,
        }
    }

    /// [`SchedulerSpec::ema_dp`] forced onto the naive reference DP
    /// solver (differential tests only).
    pub fn ema_dp_reference(v: f64) -> Self {
        SchedulerSpec::Ema {
            v,
            tail: TailPricing::PerSlot,
            reference_dp: true,
            pc_clamp: None,
        }
    }

    /// Proportional fair with the default EWMA factor.
    pub fn pf_default() -> Self {
        SchedulerSpec::ProportionalFair { ewma_alpha: 0.05 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_variant() {
        let models = CrossLayerModels::paper();
        let specs = [
            SchedulerSpec::Default,
            SchedulerSpec::rtma(900.0),
            SchedulerSpec::RtmaUnbounded,
            SchedulerSpec::ema_dp(1.0),
            SchedulerSpec::ema_fast(1.0),
            SchedulerSpec::throttling_default(),
            SchedulerSpec::onoff_default(),
            SchedulerSpec::salsa_default(),
            SchedulerSpec::estreamer_default(),
            SchedulerSpec::RoundRobin,
            SchedulerSpec::pf_default(),
        ];
        for spec in specs {
            let s = spec.build(1.0, &models);
            assert!(!s.name().is_empty());
            assert!(!spec.label().is_empty());
        }
    }

    #[test]
    fn serde_roundtrip() {
        let spec = SchedulerSpec::rtma(850.5);
        let j = serde_json::to_string(&spec).expect("serializes");
        assert_eq!(
            serde_json::from_str::<SchedulerSpec>(&j).expect("parses"),
            spec
        );
        let spec2 = SchedulerSpec::salsa_default();
        let j2 = serde_json::to_string(&spec2).expect("serializes");
        assert_eq!(
            serde_json::from_str::<SchedulerSpec>(&j2).expect("parses"),
            spec2
        );
    }

    /// Configs written before the `reference_dp` knob existed must keep
    /// deserializing, defaulting to the monotone-deque solver.
    #[test]
    fn ema_reference_dp_defaults_off() {
        let spec: SchedulerSpec =
            serde_json::from_str(r#"{"kind":"ema","v":1.0}"#).expect("parses");
        assert_eq!(spec, SchedulerSpec::ema_dp(1.0));
        let explicit: SchedulerSpec =
            serde_json::from_str(r#"{"kind":"ema","v":1.0,"reference_dp":true}"#).expect("parses");
        assert_eq!(explicit, SchedulerSpec::ema_dp_reference(1.0));
        assert_eq!(explicit.label(), "EMA(V=1)");
        let _ = explicit.build(1.0, &CrossLayerModels::paper());
    }

    /// Configs written before the degradation knobs existed must keep
    /// deserializing, with fallback and clamping off (paper-exact).
    #[test]
    fn degradation_knobs_default_off() {
        let rtma: SchedulerSpec =
            serde_json::from_str(r#"{"kind":"rtma","phi_mj":900.0}"#).expect("parses");
        assert_eq!(rtma, SchedulerSpec::rtma(900.0));
        let fast: SchedulerSpec =
            serde_json::from_str(r#"{"kind":"ema_fast","v":2.0}"#).expect("parses");
        assert_eq!(fast, SchedulerSpec::ema_fast(2.0));
        let on: SchedulerSpec =
            serde_json::from_str(r#"{"kind":"rtma","phi_mj":900.0,"best_effort":true}"#)
                .expect("parses");
        assert_eq!(
            on,
            SchedulerSpec::Rtma {
                phi_mj: 900.0,
                best_effort: true,
            }
        );
        let _ = on.build(1.0, &CrossLayerModels::paper());
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::BTreeSet<String> = [
            SchedulerSpec::Default,
            SchedulerSpec::rtma(900.0),
            SchedulerSpec::RtmaUnbounded,
            SchedulerSpec::ema_dp(1.0),
            SchedulerSpec::ema_fast(1.0),
            SchedulerSpec::throttling_default(),
            SchedulerSpec::onoff_default(),
            SchedulerSpec::salsa_default(),
            SchedulerSpec::estreamer_default(),
            SchedulerSpec::RoundRobin,
            SchedulerSpec::pf_default(),
        ]
        .iter()
        .map(|s| s.label())
        .collect();
        assert_eq!(labels.len(), 11);
    }
}
