//! RTMA — Rebuffering Time Minimization Algorithm (the paper's Alg. 1).
//!
//! Per slot, RTMA:
//!
//! 1. sorts users by required data rate `pᵢ(n)` ascending — given equal
//!    data, a lower-rate user sustains playback longer, so cheap users are
//!    served first;
//! 2. computes each user's per-slot need `φ_need(i) = ⌈τ·pᵢ/δ⌉`;
//! 3. repeatedly sweeps the sorted users, granting each at most one more
//!    `φ_need` tranche per sweep, skipping users whose signal falls below
//!    the Eq. (12) threshold (the energy budget Φ in admission-rule form),
//!    until the BS budget is exhausted or no user can take more.
//!
//! The tranche-per-sweep structure is what produces RTMA's fairness
//! (Fig. 2): early users cannot seize the whole BS budget in one pass.
//!
//! **Degraded-cap fallback.** When every remaining demander sits below the
//! Eq. (12) threshold (a deep fade or cell degradation can push the whole
//! population there), the paper-exact policy starves everyone. With
//! [`Rtma::with_best_effort`] enabled, RTMA instead re-runs the tranche
//! sweep ignoring the threshold on whatever budget is left, and reports
//! the departure from nominal behaviour as a
//! [`DegradationEvent::RtmaBestEffort`]. The fallback is off by default so
//! the threshold semantics (and every golden trace) are unchanged.

use crate::cost::CrossLayerModels;
use crate::kernels;
use crate::threshold::SignalThreshold;
use jmso_gateway::{Allocation, DegradationEvent, Scheduler, SlotContext};
use jmso_radio::MilliJoules;

/// The RTMA policy.
///
/// ```
/// use jmso_radio::MilliJoules;
/// use jmso_sched::{CrossLayerModels, Rtma};
///
/// let models = CrossLayerModels::paper();
/// // A 950 mJ per-slot budget converts (Eq. 12) into a signal threshold
/// // somewhere inside the paper's [−110, −50] dBm range…
/// let rtma = Rtma::with_energy_bound(MilliJoules(950.0), 1.0, &models);
/// let t = rtma.threshold();
/// assert!((-110.0..=-50.0).contains(&t.min_dbm));
/// // …while an unconstrained RTMA admits everyone.
/// assert_eq!(Rtma::unbounded().threshold().min_dbm, f64::NEG_INFINITY);
/// ```
#[derive(Debug, Clone)]
pub struct Rtma {
    threshold: SignalThreshold,
    /// When the threshold leaves budget unservable, re-sweep ignoring it.
    best_effort: bool,
    /// Degradation events of the latest slot.
    events: Vec<DegradationEvent>,
    // Reusable per-slot scratch (sorted order, needs, ceilings) so the
    // engine hot path allocates nothing in steady state.
    order: Vec<usize>,
    need: Vec<u64>,
    ceiling: Vec<u64>,
    // f64 mirror of `need`, kept after the slot for `queue_values`.
    need_f64: Vec<f64>,
    // Batch-kernel columns, rebuilt per slot ([`kernels`]): the one-sweep
    // grant cap `min(max(need,1), ceiling)` and the Eq. (12) admission
    // verdicts, so the tranche sweeps read precomputed columns instead of
    // redoing the clamp and the float compare every sweep.
    tranche: Vec<u64>,
    admit: Vec<bool>,
}

impl Rtma {
    /// RTMA with an explicit admission threshold.
    pub fn with_threshold(threshold: SignalThreshold) -> Self {
        Self {
            threshold,
            best_effort: false,
            events: Vec::new(),
            order: Vec::new(),
            need: Vec::new(),
            ceiling: Vec::new(),
            need_f64: Vec::new(),
            tranche: Vec::new(),
            admit: Vec::new(),
        }
    }

    /// RTMA with the threshold derived from a per-slot energy budget `Φ`
    /// via Eq. (12).
    pub fn with_energy_bound(phi: MilliJoules, tau: f64, models: &CrossLayerModels) -> Self {
        Self::with_threshold(SignalThreshold::from_energy_bound(phi, tau, models))
    }

    /// RTMA without an energy constraint (threshold admits everyone). In
    /// this configuration the per-slot allocation is locally optimal for
    /// rebuffering, as the paper notes.
    pub fn unbounded() -> Self {
        Self::with_threshold(SignalThreshold::allow_all())
    }

    /// Enable (or disable) the best-effort fallback sweep that ignores the
    /// Eq. (12) threshold when budget would otherwise go unserved. Off by
    /// default; each firing emits a [`DegradationEvent::RtmaBestEffort`].
    pub fn with_best_effort(mut self, best_effort: bool) -> Self {
        self.best_effort = best_effort;
        self
    }

    /// The admission threshold in force.
    pub fn threshold(&self) -> SignalThreshold {
        self.threshold
    }

    /// Run the nominal sweep and, if enabled and budget survives it, the
    /// best-effort fallback — generic over the per-user accessors so the
    /// AoS and SoA callers share one decision path. The Eq. (12) verdicts
    /// arrive precomputed in `self.admit` (batch kernel on the SoA path,
    /// the same scalar core per user on the AoS path).
    fn run_sweeps(
        &mut self,
        ctx: &SlotContext,
        alloc: &mut [u64],
        active: &impl Fn(usize) -> bool,
        remaining_kb: &impl Fn(usize) -> f64,
    ) {
        let mut budget = ctx.bs_cap_units;
        sweep_tranches(
            &self.order,
            &self.tranche,
            &self.ceiling,
            active,
            remaining_kb,
            Some(&self.admit),
            alloc,
            &mut budget,
        );

        // Degraded-cap fallback: budget is left, and the only reason can
        // be the admission threshold (the nominal sweep only stops with
        // budget when no admitted user can take more). Serve the blocked
        // demand best-effort and report the departure from Alg. 1.
        if self.best_effort && budget > 0 {
            let before = budget;
            sweep_tranches(
                &self.order,
                &self.tranche,
                &self.ceiling,
                active,
                remaining_kb,
                None,
                alloc,
                &mut budget,
            );
            let units_recovered = before - budget;
            if units_recovered > 0 {
                self.events.push(DegradationEvent::RtmaBestEffort {
                    slot: ctx.slot,
                    units_recovered,
                });
            }
        }
    }
}

/// Steps 4–15 of Algorithm 1: sweep the sorted users granting one
/// need-tranche each until `budget` is exhausted or nothing moves.
/// `admit: None` runs the best-effort variant with no admission rule.
///
/// The sweep is generic over two per-user accessors so the AoS
/// (`ctx.users[i]` fields) and SoA (contiguous column reads) callers
/// monomorphize the same decision logic — identical comparisons on
/// identical values, hence bit-identical grants. The Eq. (12) rule and
/// the need/cap clamp are consumed as precomputed columns (built by the
/// [`kernels`] batch passes): `admit[i]` stores exactly the scalar
/// `threshold.allows` verdict, and `tranche[i] = min(max(need,1),
/// ceiling)` equals the old inline `need.max(1).min(sup)` because
/// `sup ≤ ceiling[i]` makes the extra ceiling clamp a no-op under `min`.
#[allow(clippy::too_many_arguments)]
fn sweep_tranches(
    order: &[usize],
    tranche: &[u64],
    ceiling: &[u64],
    active: &impl Fn(usize) -> bool,
    remaining_kb: &impl Fn(usize) -> f64,
    admit: Option<&[bool]>,
    alloc: &mut [u64],
    budget: &mut u64,
) {
    while *budget > 0 {
        let mut progressed = false;
        for &i in order {
            if *budget == 0 {
                break;
            }
            if !active(i) && remaining_kb(i) <= 0.0 {
                continue;
            }
            // Step 6: the Eq. (12) energy admission rule, precomputed.
            if let Some(mask) = admit {
                if !mask[i] {
                    continue;
                }
            }
            // Step 7: φ_sup = remaining headroom under Eq. (1)/(2).
            let sup = (ceiling[i] - alloc[i]).min(*budget);
            if sup == 0 {
                continue;
            }
            // Steps 8–12: grant one need-tranche, or whatever is left.
            let grant = tranche[i].min(sup);
            alloc[i] += grant;
            *budget -= grant;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
}

impl Scheduler for Rtma {
    fn name(&self) -> &'static str {
        "RTMA"
    }

    fn wants_soa(&self) -> bool {
        true
    }

    fn allocate_into(&mut self, ctx: &SlotContext, out: &mut Allocation) {
        let n = ctx.users.len();
        out.reset(n);
        self.events.clear();

        // Step 2: ascending required data rate; ties keep id order (the
        // explicit index tie-break makes the unstable — and allocation-free
        // — sort deterministic). Step 3: per-slot need ⌈τ·pᵢ/δ⌉ and the
        // hard per-user ceiling (link bound ∩ remaining video bytes). On
        // the SoA path both derived columns arrive precomputed by the
        // collector with the same expressions, so the setup reduces to a
        // column sort and two memcpys.
        self.order.clear();
        self.order.extend(0..n);
        self.need.clear();
        self.ceiling.clear();
        if let Some(soa) = ctx.soa {
            self.order.sort_unstable_by(|&a, &b| {
                // `total_cmp` agrees with `partial_cmp` on the finite
                // positive rates the collector reports, and stays a total
                // order (no panic path) on anything hand-built.
                soa.rate_kbps[a]
                    .total_cmp(&soa.rate_kbps[b])
                    .then(a.cmp(&b))
            });
            let (need_col, ceiling_col) = soa.demand_columns();
            self.need.extend_from_slice(need_col);
            self.ceiling.extend_from_slice(ceiling_col);
        } else {
            self.order.sort_unstable_by(|&a, &b| {
                ctx.users[a]
                    .rate_kbps
                    .total_cmp(&ctx.users[b].rate_kbps)
                    .then(a.cmp(&b))
            });
            self.need.extend(
                ctx.users
                    .iter()
                    .map(|u| ((ctx.tau * u.rate_kbps) / ctx.delta_kb).ceil() as u64),
            );
            self.ceiling
                .extend(ctx.users.iter().map(|u| u.usable_cap_units(ctx.delta_kb)));
        }
        // Queue view (outstanding per-slot demand — raw need masked to 0
        // when the ceiling is zero) and the per-sweep grant cap, both as
        // one dense batch pass over the need/ceiling columns.
        kernels::demand_mask_into(&self.need, &self.ceiling, &mut self.need_f64);
        kernels::tranche_clamp_into(&self.need, &self.ceiling, &mut self.tranche);

        if let Some(soa) = ctx.soa {
            // Eq. (12) verdicts as one vectorized compare over the
            // contiguous signal column.
            kernels::admit_mask_into(&soa.signal_dbm, self.threshold, &mut self.admit);
            self.run_sweeps(ctx, &mut out.0, &|i| soa.active[i], &|i| {
                soa.remaining_kb[i]
            });
        } else {
            // Same verdicts through the same scalar core, gathered from
            // the AoS snapshots.
            self.admit.clear();
            self.admit
                .extend(ctx.users.iter().map(|u| self.threshold.allows(u.signal)));
            self.run_sweeps(ctx, &mut out.0, &|i| ctx.users[i].active, &|i| {
                ctx.users[i].remaining_kb
            });
        }
    }

    fn queue_values(&self) -> Option<&[f64]> {
        Some(&self.need_f64)
    }

    fn degradations(&self) -> &[DegradationEvent] {
        &self.events
    }

    /// Degraded RTMA is best-effort mode: leftover budget is spread to
    /// blocked users instead of being left stranded (emitting
    /// [`DegradationEvent::BestEffortFallback`] when it fires).
    fn engage_degraded(&mut self) -> bool {
        self.best_effort = true;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmso_gateway::UserSnapshot;
    use jmso_radio::rrc::RrcState;
    use jmso_radio::Dbm;

    fn user(id: usize, sig: f64, rate: f64, link_cap: u64) -> UserSnapshot {
        UserSnapshot {
            id,
            signal: Dbm(sig),
            rate_kbps: rate,
            buffer_s: 0.0,
            remaining_kb: 1e9,
            active: true,
            link_cap_units: link_cap,
            idle_s: 0.0,
            rrc_state: RrcState::Dch,
        }
    }

    fn ctx<'a>(users: &'a [UserSnapshot], bs_cap: u64) -> SlotContext<'a> {
        SlotContext {
            slot: 0,
            tau: 1.0,
            delta_kb: 50.0,
            bs_cap_units: bs_cap,
            users,
            soa: None,
        }
    }

    /// With ample budget every user gets at least their need.
    #[test]
    fn ample_budget_meets_all_needs() {
        let users = vec![
            user(0, -70.0, 300.0, 60), // need ⌈300/50⌉ = 6
            user(1, -70.0, 600.0, 60), // need 12
        ];
        let mut r = Rtma::unbounded();
        let a = r.allocate(&ctx(&users, 400));
        assert!(a.0[0] >= 6);
        assert!(a.0[1] >= 12);
        a.validate(&ctx(&users, 400)).expect("valid allocation");
    }

    /// Under scarcity, the low-rate user's need is served first.
    #[test]
    fn scarcity_prioritizes_low_rate_users() {
        let users = vec![
            user(0, -70.0, 600.0, 100), // need 12, sorted second
            user(1, -70.0, 300.0, 100), // need 6, sorted first
        ];
        // Budget of 6: exactly the low-rate user's need.
        let mut r = Rtma::unbounded();
        let a = r.allocate(&ctx(&users, 6));
        assert_eq!(a.0[1], 6, "low-rate user served first");
        assert_eq!(a.0[0], 0);
    }

    /// The signal threshold blocks weak-signal users entirely.
    #[test]
    fn threshold_blocks_weak_users() {
        let users = vec![user(0, -100.0, 300.0, 50), user(1, -60.0, 300.0, 50)];
        let mut r = Rtma::with_threshold(SignalThreshold { min_dbm: -80.0 });
        let a = r.allocate(&ctx(&users, 400));
        assert_eq!(a.0[0], 0, "below threshold");
        assert!(a.0[1] > 0, "above threshold");
    }

    /// Leftover budget is distributed in extra sweeps (bandwidth fully
    /// used when users can take it).
    #[test]
    fn extra_sweeps_use_leftover_budget() {
        let users = vec![user(0, -70.0, 300.0, 40), user(1, -70.0, 300.0, 40)];
        let mut r = Rtma::unbounded();
        let a = r.allocate(&ctx(&users, 80));
        // Both can absorb 40 each: whole budget used.
        assert_eq!(a.total_units(), 80);
        assert_eq!(a.0[0], 40);
        assert_eq!(a.0[1], 40);
    }

    /// Eq. (1) is never violated even with a huge BS budget.
    #[test]
    fn link_cap_respected() {
        let users = vec![user(0, -70.0, 600.0, 7)];
        let mut r = Rtma::unbounded();
        let a = r.allocate(&ctx(&users, 1000));
        assert_eq!(a.0[0], 7);
    }

    /// Eq. (2) is never violated even with huge link caps.
    #[test]
    fn bs_cap_respected() {
        let users: Vec<_> = (0..10).map(|i| user(i, -60.0, 450.0, 1000)).collect();
        let mut r = Rtma::unbounded();
        let c = ctx(&users, 55);
        let a = r.allocate(&c);
        assert_eq!(a.total_units(), 55);
        a.validate(&c).expect("valid allocation");
    }

    /// Users with nothing left to fetch get nothing.
    #[test]
    fn finished_fetchers_skipped() {
        let mut u0 = user(0, -70.0, 300.0, 50);
        u0.remaining_kb = 0.0;
        let users = vec![u0, user(1, -70.0, 300.0, 50)];
        let mut r = Rtma::unbounded();
        let a = r.allocate(&ctx(&users, 100));
        assert_eq!(a.0[0], 0);
        assert!(a.0[1] > 0);
    }

    /// Remaining video bytes cap the grant (no over-delivery).
    #[test]
    fn remaining_bytes_cap_grant() {
        let mut u0 = user(0, -70.0, 600.0, 100);
        u0.remaining_kb = 130.0; // ⌈130/50⌉ = 3 units
        let users = vec![u0];
        let mut r = Rtma::unbounded();
        let a = r.allocate(&ctx(&users, 400));
        assert_eq!(a.0[0], 3);
    }

    /// Everyone blocked by the threshold ⇒ all-zero allocation, no hang.
    #[test]
    fn all_blocked_terminates() {
        let users = vec![user(0, -100.0, 300.0, 50), user(1, -105.0, 450.0, 50)];
        let mut r = Rtma::with_threshold(SignalThreshold { min_dbm: -60.0 });
        let a = r.allocate(&ctx(&users, 400));
        assert_eq!(a.total_units(), 0);
        assert!(r.degradations().is_empty(), "fallback is opt-in");
    }

    /// Best-effort fallback serves threshold-blocked users and reports a
    /// degradation event; admitted users are unaffected.
    #[test]
    fn best_effort_serves_blocked_users() {
        let users = vec![user(0, -100.0, 300.0, 50), user(1, -105.0, 450.0, 50)];
        let mut r = Rtma::with_threshold(SignalThreshold { min_dbm: -60.0 }).with_best_effort(true);
        let c = ctx(&users, 400);
        let a = r.allocate(&c);
        assert_eq!(a.total_units(), 100, "blocked demand served best-effort");
        a.validate(&c).expect("valid allocation");
        assert_eq!(
            r.degradations(),
            &[DegradationEvent::RtmaBestEffort {
                slot: 0,
                units_recovered: 100,
            }]
        );
    }

    /// When the nominal sweep already uses the whole budget, the fallback
    /// stays silent — no event, identical allocation.
    #[test]
    fn best_effort_silent_when_nominal_feasible() {
        let users = vec![user(0, -70.0, 300.0, 40), user(1, -72.0, 300.0, 40)];
        let mut nominal = Rtma::with_threshold(SignalThreshold { min_dbm: -80.0 });
        let mut fallback =
            Rtma::with_threshold(SignalThreshold { min_dbm: -80.0 }).with_best_effort(true);
        let c = ctx(&users, 60);
        let a = nominal.allocate(&c);
        let b = fallback.allocate(&c);
        assert_eq!(a, b);
        assert!(fallback.degradations().is_empty());
    }

    /// Events are cleared between slots.
    #[test]
    fn events_reset_each_slot() {
        let blocked = vec![user(0, -100.0, 300.0, 50)];
        let fine = vec![user(0, -60.0, 300.0, 50)];
        let mut r = Rtma::with_threshold(SignalThreshold { min_dbm: -80.0 }).with_best_effort(true);
        let _ = r.allocate(&ctx(&blocked, 10));
        assert_eq!(r.degradations().len(), 1);
        let _ = r.allocate(&ctx(&fine, 10));
        assert!(r.degradations().is_empty());
    }

    /// Zero users: empty allocation.
    #[test]
    fn no_users() {
        let users: Vec<UserSnapshot> = vec![];
        let mut r = Rtma::unbounded();
        let a = r.allocate(&ctx(&users, 400));
        assert!(a.0.is_empty());
    }
}
