//! EMA — Energy Minimization Algorithm (the paper's Alg. 2).
//!
//! Per slot, EMA minimizes the drift-plus-penalty objective
//! `Σᵢ f(i, φᵢ)` (Eq. (22), see [`crate::cost`]) subject to the link
//! bounds Eq. (1) and the BS bound Eq. (2), by dynamic programming over a
//! bounded multi-choice knapsack:
//!
//! ```text
//! a[i][M] = min over φᵢ ∈ [0, min(capᵢ, M)] of a[i−1][M − φᵢ] + f(i, φᵢ)
//! ```
//!
//! with `g[i][M]` recording the argmin for backtracking and the final
//! total chosen as `argmin_M a[P][M]` — exactly the recurrence of
//! Algorithm 2.
//!
//! **Complexity.** Because `f(i, φ)` is affine in φ for φ ≥ 1 (slope
//! `s = δ·(V·P(sigᵢ) − PCᵢ/pᵢ)`), the inner minimization
//! `min_{1 ≤ φ ≤ cap} prev[M−φ] + f(i,1) + (φ−1)·s` equals
//! `min_{M−cap ≤ j < M} (prev[j] − j·s) + f(i,1) + (M−1)·s` — a
//! sliding-window minimum over the keys `prev[j] − j·s`. [`solve_dp`]
//! maintains that window with a monotone deque, so each row costs O(C)
//! and a slot costs **O(P · C)** total, where `P` is the number of
//! participating users and `C = ⌊τS/δ⌋`. The textbook
//! O(P · C · φ_max) scan is retained as [`solve_dp_reference`] for
//! differential testing and as the baseline the speedup is measured
//! against. All DP state lives in a reusable [`DpScratch`] owned by
//! [`Ema`], so steady-state slots allocate nothing.
//!
//! The Lyapunov virtual queues `PCᵢ` (Eq. (16)) are owned by the policy
//! and advanced after each allocation.

use crate::cost::{CrossLayerModels, CurveColumns, EmaCost, TailPricing};
use crate::error::StateImportError;
use crate::lyapunov::VirtualQueues;
use jmso_gateway::{Allocation, DegradationEvent, Scheduler, SlotContext, SnapshotSoA};

/// The EMA policy (exact DP form of Algorithm 2).
#[derive(Debug, Clone)]
pub struct Ema {
    v: f64,
    models: CrossLayerModels,
    tail_pricing: TailPricing,
    queues: VirtualQueues,
    parts: Vec<SlotUser>,
    cols: CurveColumns,
    scratch: DpScratch,
    reference_dp: bool,
    pc_clamp: Option<f64>,
    events: Vec<DegradationEvent>,
}

impl Ema {
    /// EMA with Lyapunov weight `V` (larger = more energy saving, looser
    /// rebuffering) and the given cross-layer models.
    pub fn new(v: f64, models: CrossLayerModels) -> Self {
        assert!(v > 0.0, "V must be positive");
        Self {
            v,
            models,
            tail_pricing: TailPricing::PerSlot,
            queues: VirtualQueues::new(0),
            parts: Vec::new(),
            cols: CurveColumns::default(),
            scratch: DpScratch::default(),
            reference_dp: false,
            pc_clamp: None,
            events: Vec::new(),
        }
    }

    /// Override how idle slots are priced (see [`TailPricing`]).
    pub fn with_tail_pricing(mut self, tail_pricing: TailPricing) -> Self {
        self.tail_pricing = tail_pricing;
        self
    }

    /// Solve each slot with [`solve_dp_reference`] instead of the
    /// monotone-deque [`solve_dp_with`]. The reference DP is
    /// O(P · C · φ_max) per slot — orders of magnitude slower — and
    /// exists for differential testing, not production runs.
    pub fn with_reference_solver(mut self, reference_dp: bool) -> Self {
        self.reference_dp = reference_dp;
        self
    }

    /// Saturate every virtual queue at `bound` seconds (graceful
    /// degradation under prolonged outage). `None` (the default) keeps
    /// the paper-exact unbounded queues; each clamp firing emits a
    /// [`DegradationEvent::QueueClamped`].
    pub fn with_pc_clamp(mut self, pc_clamp: Option<f64>) -> Self {
        assert!(
            pc_clamp.is_none_or(|b| b > 0.0),
            "PC clamp must be positive"
        );
        self.pc_clamp = pc_clamp;
        self
    }

    /// The Lyapunov weight `V`.
    pub fn v(&self) -> f64 {
        self.v
    }

    /// Read access to the virtual queues (tests, diagnostics).
    pub fn queues(&self) -> &VirtualQueues {
        &self.queues
    }

    fn ensure_queues(&mut self, n: usize) {
        if self.queues.len() != n {
            self.queues = VirtualQueues::new(n);
        }
    }
}

/// Shared post-allocation step for both EMA solvers: saturate queues at
/// `bound` and record one [`DegradationEvent::QueueClamped`] per firing.
pub(crate) fn clamp_queues(
    queues: &mut VirtualQueues,
    bound: Option<f64>,
    slot: u64,
    events: &mut Vec<DegradationEvent>,
) {
    let Some(bound) = bound else { return };
    for user in 0..queues.len() {
        if let Some(pc_before) = queues.clamp(user, bound) {
            events.push(DegradationEvent::QueueClamped {
                slot,
                user,
                pc_before,
                pc_after: bound,
            });
        }
    }
}

/// Per-user inputs to the per-slot solver: the identity, the constraint,
/// and the three numbers that fully describe the affine cost curve.
///
/// `PartialEq` compares every field (f64s by `==`, so a NaN curve never
/// equals itself) — the warm-start cache in [`DpScratch`] relies on this
/// to detect a slot whose solver inputs are unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotUser {
    /// Index of this user in `ctx.users` (the engine keeps `users[i].id
    /// == i`, so this doubles as the user id).
    pub id: usize,
    /// This user's virtual queue `PCᵢ(n)`.
    pub pc: f64,
    /// Units this user may receive (`min(Eq. 1 bound, remaining bytes)`).
    pub cap: u64,
    /// Playback rate `pᵢ` in KB/s (used by the oracle objectives).
    pub rate_kbps: f64,
    /// `f(i, 0)`: the priced cost of idling this user for the slot.
    pub f0: f64,
    /// `f(i, 1)`: cost of the first unit.
    pub f1: f64,
    /// `f(i, φ+1) − f(i, φ)` for φ ≥ 1 (the affine slope).
    pub slope: f64,
}

impl SlotUser {
    /// Evaluate `f(i, φ)` from the affine decomposition.
    #[inline]
    pub fn f(&self, units: u64) -> f64 {
        if units == 0 {
            self.f0
        } else {
            self.f1 + (units - 1) as f64 * self.slope
        }
    }
}

/// Gather the participating users (positive capacity) for a slot into a
/// caller-owned buffer, pricing each with `cost`.
pub fn slot_users_into(
    cost: &EmaCost,
    ctx: &SlotContext,
    queues: &VirtualQueues,
    out: &mut Vec<SlotUser>,
) {
    out.clear();
    out.extend(ctx.users.iter().enumerate().filter_map(|(idx, u)| {
        let cap = u.usable_cap_units(ctx.delta_kb);
        if cap == 0 {
            return None;
        }
        let pc = queues.get(u.id);
        let (f0, f1, slope) = cost.curves(u, pc);
        Some(SlotUser {
            id: idx,
            pc,
            cap,
            rate_kbps: u.rate_kbps,
            f0,
            f1,
            slope,
        })
    }));
}

/// [`slot_users_into`] over the contiguous [`SnapshotSoA`] mirror: one
/// dense [`EmaCost::curves_into`] pass fills the `f0`/`f1`/`slope`
/// columns in `cols` straight from the mirror's `signal_dbm`/`rate_kbps`/
/// `idle_s` columns and the queue values, then a second cheap pass
/// gathers the `ceiling_units > 0` rows into `out`. Rows are identified
/// by index (the engine keeps `users[i].id == i`, which is also how the
/// mirror is laid out), and the batch kernel is the same per-element
/// [`EmaCost::curves_at`] core the AoS path calls, so the participant set
/// is bit-identical.
pub fn slot_users_soa_into(
    cost: &EmaCost,
    soa: &SnapshotSoA,
    queues: &VirtualQueues,
    cols: &mut CurveColumns,
    out: &mut Vec<SlotUser>,
) {
    let (signal_dbm, rate_kbps, idle_s) = soa.curve_columns();
    cost.curves_into(signal_dbm, rate_kbps, idle_s, queues.values(), cols);
    out.clear();
    out.extend((0..soa.len()).filter_map(|i| {
        let cap = soa.ceiling_units[i];
        if cap == 0 {
            return None;
        }
        Some(SlotUser {
            id: i,
            pc: queues.get(i),
            cap,
            rate_kbps: rate_kbps[i],
            f0: cols.f0[i],
            f1: cols.f1[i],
            slope: cols.slope[i],
        })
    }));
}

/// Gather the participating users (positive capacity) for a slot.
pub fn slot_users(cost: &EmaCost, ctx: &SlotContext, queues: &VirtualQueues) -> Vec<SlotUser> {
    let mut out = Vec::new();
    slot_users_into(cost, ctx, queues, &mut out);
    out
}

/// Reusable buffers for [`solve_dp`]. Owned by [`Ema`] so steady-state
/// slots perform zero heap allocation; buffers grow monotonically to the
/// high-water mark of `(P, width)` seen so far.
///
/// The scratch doubles as the solver's **warm-start state**: it carries
/// the previous call's `(parts, C)` inputs and their solved allocation
/// across slots, so a slot whose solver inputs are unchanged (every
/// user's `(cap, pc, curves)` tuple identical — e.g. an equilibrium
/// trickle inside one 32-slot signal block, where `δφ/p = τ` exactly and
/// the queues stop drifting) returns the cached allocation without
/// touching the table. Finer-than-slot reuse is *not* sound: row `i` of
/// the table depends on every row before it, so one changed user
/// invalidates all downstream rows, and `PCᵢ` drifts whenever delivered
/// playback differs from `τ`.
#[derive(Debug, Clone, Default)]
pub struct DpScratch {
    /// `a[i−1][·]` row.
    prev: Vec<f64>,
    /// `a[i][·]` row under construction.
    cur: Vec<f64>,
    /// `g[i][M]` argmin table for backtracking (`kept × width`).
    choice: Vec<u32>,
    /// `keys[j] = prev[j] − j·slope` for the current row (pass 1).
    keys: Vec<f64>,
    /// Monotone window ring: candidate keys, strictly increasing
    /// `head → tail`.
    ring_key: Vec<f64>,
    /// The `j` each ring slot refers to.
    ring_j: Vec<u32>,
    /// `win[m]`: the window argmin `j` feeding state `m` (pass 2).
    win: Vec<u32>,
    /// `win_key[m]`: that argmin's key, so pass 3 reads contiguously.
    win_key: Vec<f64>,
    /// Indices of the non-dominated participants (the DP's real rows).
    kept: Vec<u32>,
    /// Backtracked per-participant unit counts.
    chosen: Vec<u64>,
    /// Warm-start cache: the previous call's participant set…
    last_parts: Vec<SlotUser>,
    /// …its BS budget…
    last_cap: u64,
    /// …and whether `chosen` still holds that call's answer.
    last_valid: bool,
}

/// Solve one slot's problem exactly by the Algorithm 2 DP, writing into
/// `scratch` and returning the per-participant unit counts aligned with
/// `parts`.
///
/// Three exact reductions bring the table far below the textbook
/// `O(P·C)` before the row loop runs (proofs at the pruning sites):
///
/// 1. **Warm start** — inputs identical to the previous call return the
///    cached allocation (`O(P)` compare, no table).
/// 2. **Lyapunov dominance pruning** — a user whose first unit costs
///    extra (`f1 − f0 > 0`, i.e. surplus-buffer queue pressure that does
///    not even pay for the avoided tail) *and* whose per-unit slope is
///    non-negative provably receives zero; their rows are dropped.
/// 3. **Budget clamp** — for convex per-user curves the final argmin
///    total equals the number of strictly negative unit marginals
///    (capped by `C` and Σcap), so the table is `T* + 1` states wide
///    instead of `C + 1`; each row is further clamped to the prefix
///    capacity Σ_{k ≤ i} capₖ, beyond which every state is `+∞`.
///
/// The monotone window preserves the reference solver's deterministic
/// tie-breaking: φ = 0 wins ties against φ ≥ 1 (strict `<` against the
/// φ = 0 baseline), among tied φ ≥ 1 candidates the smallest φ wins
/// (equal keys are evicted from the back of the ring, so the
/// largest-`j` = smallest-φ candidate survives), and the final argmin
/// keeps the smallest total. Like the monotone-window rewrite itself
/// (PR 1), the reductions are identities of the *exact* recurrence;
/// `tests/{sched_properties,warm_start_properties}.rs` and the golden
/// traces pin the solver allocation-equal to [`solve_dp_reference`].
pub fn solve_dp_with<'s>(
    parts: &[SlotUser],
    bs_cap_units: u64,
    scratch: &'s mut DpScratch,
) -> &'s [u64] {
    if scratch.last_valid && scratch.last_cap == bs_cap_units && scratch.last_parts == parts {
        return &scratch.chosen;
    }
    solve_dp_cold(parts, bs_cap_units, scratch);
    scratch.last_cap = bs_cap_units;
    scratch.last_parts.clear();
    scratch.last_parts.extend_from_slice(parts);
    scratch.last_valid = true;
    &scratch.chosen
}

/// Branchless DP row update (van Herk / Gil–Werman sliding-window argmin
/// fused with the φ-select): for each state `m ∈ 1..=n` this computes
/// the window argmin `j` over `keys[m.saturating_sub(cap) .. m]` —
/// breaking key ties toward the **largest** `j` (= smallest φ), exactly
/// the winner the monotone deque reports — and immediately resolves the
/// φ = 0 baseline against the best φ ≥ 1 candidate into
/// `cur[m]`/`row[m]`, so the window winner never round-trips through
/// memory.
///
/// Per block of `cap` keys, two tie-break-directed scans do the window
/// work: a right-to-left *suffix* scan into `s_key`/`s_j` (strict `<`,
/// so the rightmost minimum survives) and a left-to-right *prefix*
/// running minimum (`<=`, so newer indices win). A full window
/// `[m−cap, m−1]` splits at a block boundary into a suffix piece (read
/// from `s_key`/`s_j`) and a prefix piece (the running min, reset at
/// each block start); the prefix piece holds the window's larger `j`s,
/// so combining with `<=` toward it preserves the largest-`j` tie-break
/// end to end. When the window aligns with one block both pieces cover
/// the whole block and agree on the same largest-`j` minimum, so no
/// special case is needed. Unlike the deque there is no data-dependent
/// eviction loop: every compare lowers to cmp + select, which is what
/// makes the pass fast. Keys of +∞ order correctly under these scans;
/// NaN keys do not (their compares are all-false), which is why
/// non-finite curves take [`window_min_deque`] instead.
#[allow(clippy::too_many_arguments)]
fn dp_row_scan(
    keys: &[f64],
    cap: usize,
    prev: &[f64],
    f0: f64,
    f1: f64,
    slope: f64,
    cur: &mut [f64],
    row: &mut [u32],
    s_key: &mut [f64],
    s_j: &mut [u32],
) {
    let n = keys.len();
    debug_assert!(cap >= 1, "kept rows have positive capacity");
    debug_assert!(prev.len() == n + 1 && cur.len() == n + 1 && row.len() == n + 1);
    // The φ-select multiplies the window's high edge `i` into the slope
    // term. `i` is sequential in every loop below, so an f64 counter
    // stepped by 1.0 replaces the per-element int→float convert; both are
    // exact for i < 2⁵³, so the product (and the row) is bit-identical.
    let mut pk = f64::INFINITY;
    let mut pj = 0u32;
    if cap >= n {
        // Every window is the whole prefix: one running minimum (`<=`
        // keeps the larger j on ties; seeding at +∞ makes m = 1 take
        // keys[0], even when keys[0] is itself +∞) fused with the
        // φ-select covers the row.
        let partial = keys
            .iter()
            .zip(&prev[1..=n])
            .zip(&mut cur[1..=n])
            .zip(&mut row[1..=n]);
        let mut fi = 0.0f64;
        for (i, (((&k, &pv), c), r)) in partial.enumerate() {
            let take = k <= pk;
            pk = if take { k } else { pk };
            pj = if take { i as u32 } else { pj };
            let base = pv + f0;
            let cand = pk + f1 + fi * slope;
            fi += 1.0;
            let takec = cand < base;
            *c = if takec { cand } else { base };
            *r = if takec { ((i + 1) as u32) - pj } else { 0 };
        }
        return;
    }
    // Partial windows m ≤ cap (the whole-prefix running minimum fused
    // with the φ-select, walking forward) interleaved with block 0's
    // suffix scan (strict `<` walking backward, so the rightmost minimum
    // of each suffix survives): the chains are independent, so their
    // compare/selects overlap — each scan alone is latency-bound on its
    // chain. Seeding the suffix at +∞ is exact: an all-+∞ suffix records
    // j = 0, but the combine below only consumes `s_j` when the suffix
    // key strictly beats the prefix key, which +∞ never does. When
    // block 1's suffix is needed by the combine (cap ≤ n − cap, i.e.
    // 2·cap ≤ n — which also makes it a full block), its backward scan
    // rides along as a third chain; on the common 2–3-block row that
    // block would otherwise run as a lone serial scan.
    {
        let keys0 = &keys[..cap];
        let prev1 = &prev[1..=cap];
        let (cur1, _) = cur[1..].split_at_mut(cap);
        let (row1, _) = row[1..].split_at_mut(cap);
        let (sk0, sk_rest) = s_key.split_at_mut(cap);
        let (sj0, sj_rest) = s_j.split_at_mut(cap);
        let mut sk = f64::INFINITY;
        let mut sj = 0u32;
        if 2 * cap <= n {
            let keys1 = &keys[cap..2 * cap];
            let sk1 = &mut sk_rest[..cap];
            let sj1 = &mut sj_rest[..cap];
            let mut bk = f64::INFINITY;
            let mut bj = 0u32;
            let mut ft = 0.0f64;
            for t in 0..cap {
                let k = keys0[t];
                let take = k <= pk;
                pk = if take { k } else { pk };
                pj = if take { t as u32 } else { pj };
                let base = prev1[t] + f0;
                let cand = pk + f1 + ft * slope;
                ft += 1.0;
                let takec = cand < base;
                cur1[t] = if takec { cand } else { base };
                row1[t] = if takec { ((t + 1) as u32) - pj } else { 0 };

                let u = cap - 1 - t;
                let ks = keys0[u];
                let ts = ks < sk;
                sk = if ts { ks } else { sk };
                sj = if ts { u as u32 } else { sj };
                sk0[u] = sk;
                sj0[u] = sj;

                let kb = keys1[u];
                let tb = kb < bk;
                bk = if tb { kb } else { bk };
                bj = if tb { (cap + u) as u32 } else { bj };
                sk1[u] = bk;
                sj1[u] = bj;
            }
        } else {
            let mut ft = 0.0f64;
            for t in 0..cap {
                let k = keys0[t];
                let take = k <= pk;
                pk = if take { k } else { pk };
                pj = if take { t as u32 } else { pj };
                let base = prev1[t] + f0;
                let cand = pk + f1 + ft * slope;
                ft += 1.0;
                let takec = cand < base;
                cur1[t] = if takec { cand } else { base };
                row1[t] = if takec { ((t + 1) as u32) - pj } else { 0 };

                let u = cap - 1 - t;
                let ks = keys0[u];
                let ts = ks < sk;
                sk = if ts { ks } else { sk };
                sj = if ts { u as u32 } else { sj };
                sk0[u] = sk;
                sj0[u] = sj;
            }
        }
    }
    // Suffix-within-block minima for the remaining blocks — but only
    // blocks the combine below actually reads: its suffix piece sits at
    // `lo = m − cap ≤ n − cap`, so blocks starting past `need = n − cap`
    // are dead and skipped entirely (for a two-block row that is *all*
    // of them — block 0, already scanned above, covers every read).
    // Blocks 0 and 1 are handled by the fused loop above, so this picks
    // up at block 2 when block 1 was fused. Needed blocks run two at a
    // time so two independent chains overlap; a block pairs only when
    // its partner is also needed — and a needed partner starting at
    // `b0 + cap ≤ need` is necessarily full — so a lone (possibly
    // tail-partial) last block falls through to the scalar loop.
    let need = n - cap;
    let mut b0 = if 2 * cap <= n { 2 * cap } else { cap };
    while b0 + cap <= need {
        let (ka, kb) = keys[b0..b0 + 2 * cap].split_at(cap);
        let (ska, skb) = s_key[b0..b0 + 2 * cap].split_at_mut(cap);
        let (sja, sjb) = s_j[b0..b0 + 2 * cap].split_at_mut(cap);
        let mut ak = f64::INFINITY;
        let mut aj = 0u32;
        let mut bk = f64::INFINITY;
        let mut bj = 0u32;
        for t in (0..cap).rev() {
            let k1 = ka[t];
            let t1 = k1 < ak;
            ak = if t1 { k1 } else { ak };
            aj = if t1 { (b0 + t) as u32 } else { aj };
            ska[t] = ak;
            sja[t] = aj;

            let k2 = kb[t];
            let t2 = k2 < bk;
            bk = if t2 { k2 } else { bk };
            bj = if t2 { (b0 + cap + t) as u32 } else { bj };
            skb[t] = bk;
            sjb[t] = bj;
        }
        b0 += 2 * cap;
    }
    while b0 <= need {
        let b1 = (b0 + cap).min(n);
        let mut sk = f64::INFINITY;
        let mut sj = 0u32;
        let block = keys[b0..b1]
            .iter()
            .zip(&mut s_key[b0..b1])
            .zip(&mut s_j[b0..b1])
            .enumerate()
            .rev();
        for (t, ((&k, out_k), out_j)) in block {
            let take = k < sk;
            sk = if take { k } else { sk };
            sj = if take { (b0 + t) as u32 } else { sj };
            *out_k = sk;
            *out_j = sj;
        }
        b0 = b1;
    }
    // Full windows m > cap: prefix running min combined with the suffix
    // piece at the window's low edge, then the φ-select. The prefix
    // chain resets at each block start; a fresh +∞ seed with the same
    // `<=` update *is* that reset (the first key always takes, even at
    // +∞), so paired blocks need no counter. As in the suffix scan, two
    // blocks run interleaved to overlap the prefix chains; `i` is the
    // window's high edge `m − 1`, and the suffix piece for state m sits
    // at `lo = m − cap = i + 1 − cap`. When the window aligns with one
    // block both pieces cover the whole block and agree on the same
    // largest-j minimum, so no special case is needed.
    let mut g0 = cap; // current block start in i
    while g0 + cap < n {
        let lb = (n - g0 - cap).min(cap);
        let (ka, kb) = keys[g0..g0 + cap + lb].split_at(cap);
        let (pa, pb) = prev[g0 + 1..g0 + cap + lb + 1].split_at(cap);
        let (ska, skb) = s_key[g0 + 1 - cap..g0 + lb + 1].split_at(cap);
        let (sja, sjb) = s_j[g0 + 1 - cap..g0 + lb + 1].split_at(cap);
        let (ca, cb) = cur[g0 + 1..g0 + cap + lb + 1].split_at_mut(cap);
        let (ra, rb) = row[g0 + 1..g0 + cap + lb + 1].split_at_mut(cap);
        let mut pka = f64::INFINITY;
        let mut pja = 0u32;
        let mut pkb = f64::INFINITY;
        let mut pjb = 0u32;
        let mut fia = g0 as i32 as f64;
        let mut fib = (g0 + cap) as i32 as f64;
        for t in 0..lb {
            let ia = g0 + t;
            let k1 = ka[t];
            let t1 = k1 <= pka;
            pka = if t1 { k1 } else { pka };
            pja = if t1 { ia as u32 } else { pja };
            let tp = pka <= ska[t];
            let wk = if tp { pka } else { ska[t] };
            let wj = if tp { pja } else { sja[t] };
            let base = pa[t] + f0;
            let cand = wk + f1 + fia * slope;
            fia += 1.0;
            let tc = cand < base;
            ca[t] = if tc { cand } else { base };
            ra[t] = if tc { ((ia + 1) as u32) - wj } else { 0 };

            let ib = g0 + cap + t;
            let k2 = kb[t];
            let t2 = k2 <= pkb;
            pkb = if t2 { k2 } else { pkb };
            pjb = if t2 { ib as u32 } else { pjb };
            let tp = pkb <= skb[t];
            let wk = if tp { pkb } else { skb[t] };
            let wj = if tp { pjb } else { sjb[t] };
            let base = pb[t] + f0;
            let cand = wk + f1 + fib * slope;
            fib += 1.0;
            let tc = cand < base;
            cb[t] = if tc { cand } else { base };
            rb[t] = if tc { ((ib + 1) as u32) - wj } else { 0 };
        }
        for t in lb..cap {
            let ia = g0 + t;
            let k1 = ka[t];
            let t1 = k1 <= pka;
            pka = if t1 { k1 } else { pka };
            pja = if t1 { ia as u32 } else { pja };
            let tp = pka <= ska[t];
            let wk = if tp { pka } else { ska[t] };
            let wj = if tp { pja } else { sja[t] };
            let base = pa[t] + f0;
            let cand = wk + f1 + fia * slope;
            fia += 1.0;
            let tc = cand < base;
            ca[t] = if tc { cand } else { base };
            ra[t] = if tc { ((ia + 1) as u32) - wj } else { 0 };
        }
        g0 += cap + lb;
    }
    // Remaining (at most one) block, scalar.
    let mut cnt = 0usize; // g0 is a block start, so the first key reseeds
    let full = keys[g0..n]
        .iter()
        .zip(&prev[g0 + 1..=n])
        .zip(&s_key[g0 + 1 - cap..=n - cap])
        .zip(&s_j[g0 + 1 - cap..=n - cap])
        .zip(&mut cur[g0 + 1..=n])
        .zip(&mut row[g0 + 1..=n]);
    let mut fi = g0 as i32 as f64;
    for (t, (((((&k, &pv), &sk), &sj), c), r)) in full.enumerate() {
        let i = g0 + t; // = m − 1
        if cnt == 0 {
            pk = k;
            pj = i as u32;
            cnt = cap;
        } else {
            let take = k <= pk;
            pk = if take { k } else { pk };
            pj = if take { i as u32 } else { pj };
        }
        cnt -= 1;
        let take_p = pk <= sk;
        let wk = if take_p { pk } else { sk };
        let wj = if take_p { pj } else { sj };
        let base = pv + f0;
        let cand = wk + f1 + fi * slope;
        fi += 1.0;
        let takec = cand < base;
        *c = if takec { cand } else { base };
        *r = if takec { ((i + 1) as u32) - wj } else { 0 };
    }
}

/// The monotone-deque sliding-window argmin (PR 1's pass), retained as
/// the pass-2 fallback for non-finite curves: NaN keys break the scan
/// algebra of [`window_min_scan`], while the deque reproduces the
/// pre-scan comparison order verbatim. Evicting with `>=` keeps the
/// later, larger-j entry on ties — i.e. the smaller φ, matching the
/// reference tie-break. The ring never wraps: each j is pushed at most
/// once, and entries expire in increasing-j order.
fn window_min_deque(
    keys: &[f64],
    cap: usize,
    ring_key: &mut [f64],
    ring_j: &mut [u32],
    win: &mut [u32],
    win_key: &mut [f64],
) {
    let mut head = 0usize;
    let mut tail = 0usize;
    for m in 1..=keys.len() {
        let j = m - 1;
        let key = keys[j];
        while tail > head && ring_key[tail - 1] >= key {
            tail -= 1;
        }
        ring_key[tail] = key;
        ring_j[tail] = j as u32;
        tail += 1;
        head += usize::from((ring_j[head] as usize) + cap < m);
        win[m] = ring_j[head];
        win_key[m] = ring_key[head];
    }
}

/// The table-building path of [`solve_dp_with`] (everything except the
/// warm-start short-circuit).
fn solve_dp_cold(parts: &[SlotUser], bs_cap_units: u64, scratch: &mut DpScratch) {
    let DpScratch {
        prev,
        cur,
        choice,
        keys,
        ring_key,
        ring_j,
        win,
        win_key,
        kept,
        chosen,
        ..
    } = scratch;
    chosen.clear();
    chosen.resize(parts.len(), 0);

    // ---- Dominance pruning + budget bound (one pass over the users) ----
    //
    // **Pruning claim.** If `d = f1 − f0 > 0` and `slope ≥ 0`, the
    // reference DP's backtracked solution gives this user zero, and
    // dropping the user's row (plus its constant `f0`) leaves every other
    // user's backtracked units unchanged. Proof: for any allocation with
    // `φᵢ = k ≥ 1`, zeroing user i changes the cost by
    // `−d − (k−1)·slope < 0` and stays feasible, so *no* cost-minimal
    // allocation serves user i. The DP's final total `M*` is the argmin
    // of `a[P][·]`; were the backtracked (exact-M*) solution to serve
    // user i with `k` units, zeroing them would give
    // `a[P][M* − k] < a[P][M*]`, contradicting the argmin. Hence on every
    // state the backtrack can visit, user i's row is the identity
    // transition `+ f0` — a constant shift that preserves every strict
    // comparison and every tie downstream, so removing the row is
    // backtrack-exact. (Identities of the exact recurrence; the f64
    // round-off of re-associating the dropped `f0` is the same class the
    // PR 1 monotone window already carries, and the proptests + goldens
    // pin allocation equality.) The test is `> 0` strictly: a user with
    // `d = 0` can tie, and ties must keep flowing through the reference
    // tie-break rules.
    //
    // **Budget bound.** Each kept user contributes the marginal multiset
    // `{d} ∪ {slope} × (cap − 1)`; when every user's sequence is
    // non-decreasing (`d ≤ slope`, guaranteed for EMA curves since
    // `d = slope − V·E_tail ≤ slope`), the exact-M optimum costs
    // `Σf0 +` (sum of the M smallest marginals), so `a[P][·]` strictly
    // decreases exactly while those marginals are `< 0`. The smallest
    // argmin is therefore `T* = min(C, #negative marginals)`, and states
    // `> T*` can never win (the argmin keeps the smallest total on
    // ties). Because `cur[m]` only reads `prev[j ≤ m]`, truncating the
    // table at `T*` reproduces the untruncated values and choices on
    // every surviving state — identical backtrack. A non-convex user
    // (only constructible by hand-built `SlotUser`s) disables the
    // marginal count and falls back to the unconditional
    // `min(C, Σcap)` bound.
    kept.clear();
    let mut sum_cap: u64 = 0;
    let mut neg_units: u64 = 0;
    let mut convex = true;
    let mut finite = true;
    for (i, s) in parts.iter().enumerate() {
        let cap = s.cap.min(bs_cap_units);
        if cap == 0 {
            continue;
        }
        let d = s.f1 - s.f0;
        if d > 0.0 && s.slope >= 0.0 {
            continue;
        }
        if !(s.f0.is_finite() && s.f1.is_finite() && s.slope.is_finite()) {
            // Non-finite curves route pass 2 through the deque fallback,
            // whose comparison order is the pre-scan status quo.
            finite = false;
        }
        kept.push(i as u32);
        sum_cap += cap;
        if d < 0.0 {
            neg_units += 1;
        }
        if cap > 1 {
            // NaN curves compare false everywhere: the user is kept,
            // flagged non-convex, and solved at full width like the
            // reference would. The negated form is the point — `d > slope`
            // would misclassify a NaN marginal as convex.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(d <= s.slope) {
                convex = false;
            }
            if s.slope < 0.0 {
                neg_units += cap - 1;
            }
        }
    }
    let t_bound = bs_cap_units.min(sum_cap);
    let t_star = if convex {
        t_bound.min(neg_units)
    } else {
        t_bound
    };
    let width = t_star as usize + 1;
    let rows = kept.len();
    if rows == 0 {
        return;
    }

    prev.clear();
    prev.resize(width, f64::INFINITY);
    prev[0] = 0.0;
    cur.clear();
    cur.resize(width, f64::INFINITY);
    // The remaining buffers are written before they are read on every
    // path (each row fully writes states 0..=row_hi before pass 3 reads
    // them, and the backtrack only visits written states — see the
    // reachability argument at the backtrack), so they only ever *grow*;
    // re-zeroing `choice` alone would memset ~P·C·4 bytes per slot.
    if choice.len() < rows * width {
        choice.resize(rows * width, 0);
    }
    if keys.len() < width {
        keys.resize(width, 0.0);
        ring_key.resize(width, 0.0);
        ring_j.resize(width, 0);
        win.resize(width, 0);
        win_key.resize(width, 0.0);
    }

    // ---- Row loop, fissioned into three passes per row ----
    //
    // The fused loop interleaves two unpredictable branches (monotone-
    // window eviction, the φ=0-vs-φ≥1 select) with all the float math, so
    // every branch miss stalls the whole chain (~5 ns/cell measured).
    // Splitting the row lets passes 1 and 3 autovectorize and turns
    // pass 2 into branchless block scans. Every arithmetic expression is
    // carried over verbatim, so the computed values are bit-identical to
    // the fused form — only the evaluation order across independent
    // states changes.
    //
    // Unwritten table states stay at the +∞ they were initialised with
    // (row_hi is non-decreasing in r), which is exactly the value the
    // reference computes for them.
    let mut prefix_cap: u64 = 0;
    for (r, &pi) in kept.iter().enumerate() {
        let part = &parts[pi as usize];
        let cap = part.cap.min(bs_cap_units) as usize;
        let SlotUser { f0, f1, slope, .. } = *part;
        prefix_cap += cap as u64;
        let row_hi = (width - 1).min(prefix_cap.min(u64::MAX >> 1) as usize);
        let row = &mut choice[r * width..r * width + row_hi + 1];

        // Passes 2+3: the sliding-window argmin over the keys
        // `keys[j] = prev[j] − j·slope` fused with the φ-select — for
        // each state m, the φ = 0 baseline `prev[m] + f0` races the best
        // φ ≥ 1 candidate
        // `prev[j] + f1 + (m−j−1)·slope == keys[j] + f1 + (m−1)·slope`,
        // with the window's key ties broken toward the largest j
        // (= smallest φ) per the reference rules. With finite curves no
        // key is NaN (prev[j] is finite or +∞, j·slope finite, so the
        // subtraction never meets ∞ − ∞) and the branchless scans apply;
        // otherwise the deque fallback materialises the window winners
        // and a separate select pass finishes the row. Equal-length zips
        // let the compiler drop every bounds check, so the selects lower
        // to cmov/blend instead of branches.
        // Pass 1: window keys `keys[j] = prev[j] − j·slope` (j < 2³¹, so
        // the i32 cast is exact and the cvt vectorizes). With finite
        // curves no key is NaN: prev[j] is finite or +∞ and j·slope is
        // finite, so the subtraction never meets ∞ − ∞.
        for (j, (k, &p)) in keys[..row_hi].iter_mut().zip(&prev[..row_hi]).enumerate() {
            *k = p - (j as i32 as f64) * slope;
        }
        cur[0] = prev[0] + f0;
        row[0] = 0;
        if finite {
            dp_row_scan(
                &keys[..row_hi],
                cap,
                &prev[..=row_hi],
                f0,
                f1,
                slope,
                &mut cur[..=row_hi],
                row,
                ring_key,
                ring_j,
            );
        } else if row_hi > 0 {
            window_min_deque(
                &keys[..row_hi],
                cap,
                ring_key,
                ring_j,
                &mut win[..row_hi + 1],
                &mut win_key[..row_hi + 1],
            );
            let states = cur[1..=row_hi]
                .iter_mut()
                .zip(&mut row[1..])
                .zip(&prev[1..=row_hi])
                .zip(&win_key[1..=row_hi])
                .zip(&win[1..=row_hi]);
            for (i, ((((c, r), &pv), &wk), &wj)) in states.enumerate() {
                let m = i + 1;
                let base = pv + f0;
                let cand = wk + f1 + (i as i32 as f64) * slope;
                let take = cand < base;
                *c = if take { cand } else { base };
                *r = if take { (m as u32) - wj } else { 0 };
            }
        }
        std::mem::swap(prev, cur);
    }

    // D = argmin_M a[P][M] (strict `<` keeps the smallest total).
    let mut best_m = 0usize;
    let mut best = f64::INFINITY;
    for (m, &v) in prev.iter().enumerate() {
        if v < best {
            best = v;
            best_m = m;
        }
    }

    // Backtrack (pruned users keep their zero from the resize above).
    let mut m = best_m;
    for r in (0..rows).rev() {
        let phi = choice[r * width + m] as usize;
        chosen[kept[r] as usize] = phi as u64;
        m -= phi;
    }
    debug_assert_eq!(m, 0, "backtrack must consume exactly best_m units");
}

/// Solve one slot's problem exactly (allocating convenience wrapper over
/// [`solve_dp_with`]). Returns the per-participant unit counts, aligned
/// with `parts`.
pub fn solve_dp(parts: &[SlotUser], bs_cap_units: u64) -> Vec<u64> {
    let mut scratch = DpScratch::default();
    solve_dp_with(parts, bs_cap_units, &mut scratch).to_vec()
}

/// The textbook O(P·C·φ_max) DP — the seed implementation, retained as
/// the differential-testing reference for [`solve_dp`] and as the
/// baseline its speedup is measured against (`cargo bench ema_solver`,
/// `cargo run --bin hotpath`).
pub fn solve_dp_reference(parts: &[SlotUser], bs_cap_units: u64) -> Vec<u64> {
    let p = parts.len();
    if p == 0 {
        return vec![];
    }
    let c = bs_cap_units as usize;
    let width = c + 1;

    let mut prev = vec![f64::INFINITY; width];
    prev[0] = 0.0;
    let mut choice = vec![0u32; p * width];

    let mut cur = vec![f64::INFINITY; width];
    for (i, part) in parts.iter().enumerate() {
        cur.fill(f64::INFINITY);
        let cap = part.cap.min(bs_cap_units) as usize;
        let SlotUser { f0, f1, slope, .. } = *part;
        let row = &mut choice[i * width..(i + 1) * width];
        for m in 0..width {
            let mut best = prev[m] + f0;
            let mut arg = 0u32;
            let phi_max = cap.min(m);
            let mut f_phi = f1;
            for phi in 1..=phi_max {
                let cand = prev[m - phi] + f_phi;
                if cand < best {
                    best = cand;
                    arg = phi as u32;
                }
                f_phi += slope;
            }
            cur[m] = best;
            row[m] = arg;
        }
        std::mem::swap(&mut prev, &mut cur);
    }

    let mut best_m = 0usize;
    let mut best = f64::INFINITY;
    for (m, &v) in prev.iter().enumerate() {
        if v < best {
            best = v;
            best_m = m;
        }
    }

    let mut out = vec![0u64; p];
    let mut m = best_m;
    for i in (0..p).rev() {
        let phi = choice[i * width + m] as usize;
        out[i] = phi as u64;
        m -= phi;
    }
    debug_assert_eq!(m, 0, "backtrack must consume exactly best_m units");
    out
}

/// Objective value `Σ f(i, φᵢ)` of an allocation over the participants.
pub fn objective(parts: &[SlotUser], alloc: &[u64]) -> f64 {
    parts.iter().zip(alloc).map(|(s, &phi)| s.f(phi)).sum()
}

impl Scheduler for Ema {
    fn name(&self) -> &'static str {
        "EMA"
    }

    fn wants_soa(&self) -> bool {
        true
    }

    fn allocate_into(&mut self, ctx: &SlotContext, out: &mut Allocation) {
        self.ensure_queues(ctx.users.len());
        self.events.clear();
        out.reset(ctx.users.len());
        let cost = EmaCost::with_pricing(self.v, &self.models, ctx, self.tail_pricing);
        match ctx.soa {
            Some(soa) => {
                slot_users_soa_into(&cost, soa, &self.queues, &mut self.cols, &mut self.parts)
            }
            None => slot_users_into(&cost, ctx, &self.queues, &mut self.parts),
        }
        if self.reference_dp {
            let chosen = solve_dp_reference(&self.parts, ctx.bs_cap_units);
            for (part, units) in self.parts.iter().zip(chosen) {
                out.0[part.id] = units;
            }
        } else {
            let chosen = solve_dp_with(&self.parts, ctx.bs_cap_units, &mut self.scratch);
            for (part, &units) in self.parts.iter().zip(chosen) {
                out.0[part.id] = units;
            }
        }
        self.queues.apply_allocation(ctx, &out.0);
        clamp_queues(&mut self.queues, self.pc_clamp, ctx.slot, &mut self.events);
    }

    fn queue_values(&self) -> Option<&[f64]> {
        Some(self.queues.values())
    }

    fn degradations(&self) -> &[DegradationEvent] {
        &self.events
    }

    /// Degraded EMA saturates the virtual queues at their current peak
    /// (floored at 1.0): rebuffering pressure stops compounding, so an
    /// overloaded slot loop sheds the DP's worst-case growth. A clamp
    /// already configured is kept. Deterministic — the bound is a pure
    /// function of checkpointed queue state.
    fn engage_degraded(&mut self) -> bool {
        if self.pc_clamp.is_none() {
            let peak = self.queues.values().iter().fold(1.0f64, |m, &q| m.max(q));
            self.pc_clamp = Some(peak);
        }
        true
    }

    fn export_state(&self) -> Option<String> {
        serde_json::to_string(&self.queues).ok()
    }

    fn import_state(&mut self, state: &str) -> Result<(), String> {
        self.queues =
            serde_json::from_str(state).map_err(|e| String::from(StateImportError::from(e)))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmso_gateway::UserSnapshot;
    use jmso_radio::rrc::RrcState;
    use jmso_radio::Dbm;

    fn user(id: usize, sig: f64, rate: f64, link_cap: u64) -> UserSnapshot {
        UserSnapshot {
            id,
            signal: Dbm(sig),
            rate_kbps: rate,
            buffer_s: 0.0,
            remaining_kb: 1e9,
            active: true,
            link_cap_units: link_cap,
            idle_s: 0.0,
            rrc_state: RrcState::Dch,
        }
    }

    fn ctx<'a>(users: &'a [UserSnapshot], bs_cap: u64) -> SlotContext<'a> {
        SlotContext {
            slot: 0,
            tau: 1.0,
            delta_kb: 50.0,
            bs_cap_units: bs_cap,
            users,
            soa: None,
        }
    }

    /// Allocation always satisfies Eq. (1)/(2).
    #[test]
    fn respects_constraints() {
        let users: Vec<_> = (0..6)
            .map(|i| user(i, -70.0 - i as f64, 450.0, 30))
            .collect();
        let mut e = Ema::new(1.0, CrossLayerModels::paper());
        let c = ctx(&users, 70);
        let a = e.allocate(&c);
        a.validate(&c).expect("valid allocation");
    }

    /// First slot, all queues zero: transmitting costs energy and buys no
    /// queue relief (PC=0 ⇒ slope = V·P·δ > 0, and the tail penalty makes
    /// φ=0 vs φ≥1 a real trade-off priced by V).
    #[test]
    fn starved_queues_attract_data() {
        let users = vec![user(0, -70.0, 450.0, 40)];
        let mut e = Ema::new(1.0, CrossLayerModels::paper());
        // Warm up the queue: 3 slots of starvation ⇒ PC = 3τ.
        let c = ctx(&users, 400);
        let _ = e.allocate(&c);
        let _ = e.allocate(&c);
        let a3 = e.allocate(&c);
        // By now queue pressure (PC·δ/p per unit) outweighs the energy
        // price, so EMA transmits.
        assert!(
            a3.0[0] > 0,
            "queue pressure should force transmission, PC={}",
            e.queues().get(0)
        );
    }

    /// With a larger V, energy dominates and EMA ships less data over the
    /// same horizon (deferring bulk until queue pressure overwhelms the
    /// energy price). Note EMA still trickles ≥ 1 unit per slot here: one
    /// 50 KB unit at −90 dBm costs ~39 mJ versus a 733 mJ DCH tail slot,
    /// so φ = 0 is never myopically optimal — a direct consequence of the
    /// paper's Eq. (5) energy dichotomy.
    #[test]
    fn v_controls_the_tradeoff() {
        let run = |v: f64| {
            let users = vec![user(0, -90.0, 450.0, 40)];
            let mut e = Ema::new(v, CrossLayerModels::paper());
            let c = ctx(&users, 400);
            let mut total_units = 0u64;
            for _ in 0..400 {
                total_units += e.allocate(&c).total_units();
            }
            total_units
        };
        assert!(run(50.0) < run(0.05), "larger V ships less data");
    }

    /// Good-signal user is preferred over a bad-signal user with equal
    /// queues (the cross-layer part of EMA).
    #[test]
    fn prefers_good_signal() {
        let users = vec![user(0, -105.0, 450.0, 40), user(1, -55.0, 450.0, 40)];
        let mut e = Ema::new(1.0, CrossLayerModels::paper());
        let c = ctx(&users, 400);
        // Build identical queue pressure.
        for _ in 0..3 {
            let _ = e.allocate(&ctx(&users, 0)); // zero capacity ⇒ starve both
        }
        let a = e.allocate(&c);
        assert!(
            a.0[1] >= a.0[0],
            "good-signal user should get at least as much: {:?}",
            a.0
        );
    }

    /// DP equals exhaustive search on a tiny instance.
    #[test]
    fn dp_is_optimal_small() {
        let users = vec![
            user(0, -100.0, 300.0, 3),
            user(1, -60.0, 600.0, 4),
            user(2, -80.0, 450.0, 2),
        ];
        let c = ctx(&users, 5);
        let models = CrossLayerModels::paper();
        let cost = EmaCost::new(2.0, &models, &c);
        let mut queues = VirtualQueues::new(3);
        queues.update(0, 1.0, 0.0); // PC₀ = 1
        queues.update(1, 1.0, 3.0); // PC₁ = −2
        queues.update(2, 1.0, 0.5); // PC₂ = 0.5
        let parts = slot_users(&cost, &c, &queues);
        let dp = solve_dp(&parts, c.bs_cap_units);
        let dp_obj = objective(&parts, &dp);

        // Exhaustive.
        let mut best = f64::INFINITY;
        for a in 0..=3u64 {
            for b in 0..=4u64 {
                for d in 0..=2u64 {
                    if a + b + d <= 5 {
                        best = best.min(objective(&parts, &[a, b, d]));
                    }
                }
            }
        }
        assert!((dp_obj - best).abs() < 1e-9, "dp {dp_obj} vs brute {best}");
    }

    /// The deque solver and the retained reference agree in objective
    /// value on a fixed mid-size instance (the proptest in
    /// `tests/sched_properties.rs` covers random instances).
    #[test]
    fn deque_matches_reference_fixed() {
        let users: Vec<_> = (0..8)
            .map(|i| {
                user(
                    i,
                    -110.0 + 7.0 * i as f64,
                    300.0 + 40.0 * i as f64,
                    5 + i as u64,
                )
            })
            .collect();
        let c = ctx(&users, 23);
        let models = CrossLayerModels::paper();
        let cost = EmaCost::new(0.7, &models, &c);
        let mut queues = VirtualQueues::new(8);
        for i in 0..8 {
            queues.update(i, 1.0, (i as f64) * 0.4 - 1.0);
        }
        let parts = slot_users(&cost, &c, &queues);
        let fast = solve_dp(&parts, c.bs_cap_units);
        let slow = solve_dp_reference(&parts, c.bs_cap_units);
        assert!(
            (objective(&parts, &fast) - objective(&parts, &slow)).abs() < 1e-9,
            "deque {fast:?} vs reference {slow:?}"
        );
        assert!(fast.iter().sum::<u64>() <= 23);
        for (part, &phi) in parts.iter().zip(&fast) {
            assert!(phi <= part.cap);
        }
    }

    /// Scratch reuse across slots of different sizes gives the same
    /// answers as fresh solves.
    #[test]
    fn scratch_reuse_is_clean() {
        let models = CrossLayerModels::paper();
        let mut scratch = DpScratch::default();
        for (n, cap) in [(5usize, 40u64), (2, 7), (8, 120), (1, 1), (6, 63)] {
            let users: Vec<_> = (0..n)
                .map(|i| user(i, -95.0 + 5.0 * i as f64, 450.0, 12))
                .collect();
            let c = ctx(&users, cap);
            let cost = EmaCost::new(1.1, &models, &c);
            let mut queues = VirtualQueues::new(n);
            for i in 0..n {
                queues.update(i, 1.0, if i % 2 == 0 { 0.0 } else { 2.0 });
            }
            let parts = slot_users(&cost, &c, &queues);
            let reused = solve_dp_with(&parts, cap, &mut scratch).to_vec();
            let fresh = solve_dp(&parts, cap);
            assert_eq!(reused, fresh, "n={n} cap={cap}");
        }
    }

    /// The `reference_dp` knob routes through the naive solver yet
    /// produces the exact same allocations across a stateful multi-slot
    /// run (virtual queues and all).
    #[test]
    fn reference_solver_knob_matches_deque() {
        let mut fast = Ema::new(0.8, CrossLayerModels::paper());
        let mut slow = Ema::new(0.8, CrossLayerModels::paper()).with_reference_solver(true);
        for slot in 0..40u64 {
            let users: Vec<_> = (0..6)
                .map(|i| {
                    let wobble = ((slot * 7 + i as u64 * 13) % 20) as f64;
                    user(
                        i,
                        -105.0 + 2.5 * wobble,
                        300.0 + 50.0 * i as f64,
                        3 + i as u64,
                    )
                })
                .collect();
            let mut c = ctx(&users, 14);
            c.slot = slot;
            let a = fast.allocate(&c);
            let b = slow.allocate(&c);
            assert_eq!(a, b, "slot {slot}");
        }
    }

    /// Queue bookkeeping: only active users update; Eq. (16) holds.
    #[test]
    fn queue_updates_follow_eq16() {
        let mut u0 = user(0, -70.0, 500.0, 40);
        u0.remaining_kb = 0.0;
        u0.active = false; // finished watching
        let users = vec![u0, user(1, -70.0, 500.0, 40)];
        let mut e = Ema::new(1.0, CrossLayerModels::paper());
        let c = ctx(&users, 400);
        let a = e.allocate(&c);
        assert_eq!(a.0[0], 0);
        assert_eq!(e.queues().get(0), 0.0, "inactive user's queue frozen");
        let t1 = c.playback_seconds(a.0[1], 500.0);
        assert!((e.queues().get(1) - (1.0 - t1)).abs() < 1e-12);
    }

    /// The PC clamp saturates a starving user's queue and reports it; the
    /// default (no clamp) lets the queue grow without bound.
    #[test]
    fn pc_clamp_saturates_and_reports() {
        let users = vec![user(0, -70.0, 450.0, 40)];
        let starving = ctx(&users, 0); // outage: zero BS capacity
        let mut unclamped = Ema::new(1.0, CrossLayerModels::paper());
        let mut clamped = Ema::new(1.0, CrossLayerModels::paper()).with_pc_clamp(Some(5.0));
        for _ in 0..12 {
            let _ = unclamped.allocate(&starving);
            let _ = clamped.allocate(&starving);
        }
        assert_eq!(unclamped.queues().get(0), 12.0);
        assert_eq!(clamped.queues().get(0), 5.0);
        assert_eq!(
            clamped.degradations(),
            &[DegradationEvent::QueueClamped {
                slot: 0,
                user: 0,
                pc_before: 6.0,
                pc_after: 5.0,
            }]
        );
    }

    /// Exported queue state round-trips through `import_state`.
    #[test]
    fn queue_state_roundtrip() {
        let users = vec![user(0, -70.0, 450.0, 40), user(1, -85.0, 300.0, 20)];
        let c = ctx(&users, 8);
        let mut a = Ema::new(1.0, CrossLayerModels::paper());
        for _ in 0..5 {
            let _ = a.allocate(&c);
        }
        let state = a.export_state().expect("EMA exports state");
        let mut b = Ema::new(1.0, CrossLayerModels::paper());
        b.import_state(&state).expect("state imports");
        assert_eq!(a.queues(), b.queues());
        assert_eq!(a.allocate(&c), b.allocate(&c));
    }

    /// Empty context works.
    #[test]
    fn no_users() {
        let users: Vec<UserSnapshot> = vec![];
        let mut e = Ema::new(1.0, CrossLayerModels::paper());
        let a = e.allocate(&ctx(&users, 100));
        assert!(a.0.is_empty());
    }

    #[test]
    #[should_panic(expected = "V must be positive")]
    fn zero_v_rejected() {
        Ema::new(0.0, CrossLayerModels::paper());
    }
}
