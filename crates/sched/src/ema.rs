//! EMA — Energy Minimization Algorithm (the paper's Alg. 2).
//!
//! Per slot, EMA minimizes the drift-plus-penalty objective
//! `Σᵢ f(i, φᵢ)` (Eq. (22), see [`crate::cost`]) subject to the link
//! bounds Eq. (1) and the BS bound Eq. (2), by dynamic programming over a
//! bounded multi-choice knapsack:
//!
//! ```text
//! a[i][M] = min over φᵢ ∈ [0, min(capᵢ, M)] of a[i−1][M − φᵢ] + f(i, φᵢ)
//! ```
//!
//! with `g[i][M]` recording the argmin for backtracking and the final
//! total chosen as `argmin_M a[P][M]` — exactly the recurrence of
//! Algorithm 2. Complexity is `O(P · C · φ_max)` per slot, where `P` is
//! the number of participating users and `C = ⌊τS/δ⌋`.
//!
//! The Lyapunov virtual queues `PCᵢ` (Eq. (16)) are owned by the policy
//! and advanced after each allocation.

use crate::cost::{CrossLayerModels, EmaCost, TailPricing};
use crate::lyapunov::VirtualQueues;
use jmso_gateway::{Allocation, Scheduler, SlotContext, UserSnapshot};

/// The EMA policy (exact DP form of Algorithm 2).
#[derive(Debug, Clone)]
pub struct Ema {
    v: f64,
    models: CrossLayerModels,
    tail_pricing: TailPricing,
    queues: VirtualQueues,
}

impl Ema {
    /// EMA with Lyapunov weight `V` (larger = more energy saving, looser
    /// rebuffering) and the given cross-layer models.
    pub fn new(v: f64, models: CrossLayerModels) -> Self {
        assert!(v > 0.0, "V must be positive");
        Self {
            v,
            models,
            tail_pricing: TailPricing::PerSlot,
            queues: VirtualQueues::new(0),
        }
    }

    /// Override how idle slots are priced (see [`TailPricing`]).
    pub fn with_tail_pricing(mut self, tail_pricing: TailPricing) -> Self {
        self.tail_pricing = tail_pricing;
        self
    }

    /// The Lyapunov weight `V`.
    pub fn v(&self) -> f64 {
        self.v
    }

    /// Read access to the virtual queues (tests, diagnostics).
    pub fn queues(&self) -> &VirtualQueues {
        &self.queues
    }

    fn ensure_queues(&mut self, n: usize) {
        if self.queues.len() != n {
            self.queues = VirtualQueues::new(n);
        }
    }
}

/// Per-user inputs to the per-slot solver.
#[derive(Debug, Clone, Copy)]
pub struct SlotUser<'a> {
    /// The snapshot.
    pub user: &'a UserSnapshot,
    /// This user's virtual queue `PCᵢ(n)`.
    pub pc: f64,
    /// Units this user may receive (`min(Eq. 1 bound, remaining bytes)`).
    pub cap: u64,
}

/// Gather the participating users (positive capacity) for a slot.
pub fn slot_users<'a>(ctx: &'a SlotContext, queues: &VirtualQueues) -> Vec<SlotUser<'a>> {
    ctx.users
        .iter()
        .map(|u| SlotUser {
            user: u,
            pc: queues.get(u.id),
            cap: u.usable_cap_units(ctx.delta_kb),
        })
        .filter(|s| s.cap > 0)
        .collect()
}

/// Solve one slot's problem exactly by the Algorithm 2 DP. Returns the
/// per-participant unit counts, aligned with `parts`.
pub fn solve_dp(cost: &EmaCost, parts: &[SlotUser], bs_cap_units: u64) -> Vec<u64> {
    let p = parts.len();
    if p == 0 {
        return vec![];
    }
    let c = bs_cap_units as usize;
    let width = c + 1;

    // a[i][M]: min cost over the first i participants using exactly M
    // units; g[i][M]: the argmin φ for backtracking.
    let mut prev = vec![f64::INFINITY; width];
    prev[0] = 0.0;
    let mut choice = vec![0u32; p * width];

    let mut cur = vec![f64::INFINITY; width];
    for (i, part) in parts.iter().enumerate() {
        cur.fill(f64::INFINITY);
        let cap = part.cap.min(bs_cap_units) as usize;
        // Precompute f(i, φ) for φ in 0..=cap: affine for φ ≥ 1, so only
        // f(0), f(1) and the slope are needed.
        let f0 = cost.f(part.user, part.pc, 0);
        let f1 = cost.f(part.user, part.pc, 1);
        let slope = cost.slope(part.user, part.pc);
        let row = &mut choice[i * width..(i + 1) * width];
        for m in 0..width {
            // φ = 0 transition.
            let mut best = prev[m] + f0;
            let mut arg = 0u32;
            let phi_max = cap.min(m);
            let mut f_phi = f1;
            for phi in 1..=phi_max {
                let cand = prev[m - phi] + f_phi;
                if cand < best {
                    best = cand;
                    arg = phi as u32;
                }
                f_phi += slope;
            }
            cur[m] = best;
            row[m] = arg;
        }
        std::mem::swap(&mut prev, &mut cur);
    }

    // D = argmin_M a[P][M].
    let mut best_m = 0usize;
    let mut best = f64::INFINITY;
    for (m, &v) in prev.iter().enumerate() {
        if v < best {
            best = v;
            best_m = m;
        }
    }

    // Backtrack.
    let mut out = vec![0u64; p];
    let mut m = best_m;
    for i in (0..p).rev() {
        let phi = choice[i * width + m] as usize;
        out[i] = phi as u64;
        m -= phi;
    }
    debug_assert_eq!(m, 0, "backtrack must consume exactly best_m units");
    out
}

/// Objective value `Σ f(i, φᵢ)` of an allocation over the participants.
pub fn objective(cost: &EmaCost, parts: &[SlotUser], alloc: &[u64]) -> f64 {
    parts
        .iter()
        .zip(alloc)
        .map(|(s, &phi)| cost.f(s.user, s.pc, phi))
        .sum()
}

impl Scheduler for Ema {
    fn name(&self) -> &'static str {
        "EMA"
    }

    fn allocate(&mut self, ctx: &SlotContext) -> Allocation {
        self.ensure_queues(ctx.users.len());
        let cost = EmaCost::with_pricing(self.v, &self.models, ctx, self.tail_pricing);
        let parts = slot_users(ctx, &self.queues);
        let chosen = solve_dp(&cost, &parts, ctx.bs_cap_units);
        let mut alloc = vec![0u64; ctx.users.len()];
        for (part, &units) in parts.iter().zip(&chosen) {
            alloc[part.user.id] = units;
        }
        self.queues.apply_allocation(ctx, &alloc);
        Allocation(alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmso_radio::rrc::RrcState;
    use jmso_radio::Dbm;

    fn user(id: usize, sig: f64, rate: f64, link_cap: u64) -> UserSnapshot {
        UserSnapshot {
            id,
            signal: Dbm(sig),
            rate_kbps: rate,
            buffer_s: 0.0,
            remaining_kb: 1e9,
            active: true,
            link_cap_units: link_cap,
            idle_s: 0.0,
            rrc_state: RrcState::Dch,
        }
    }

    fn ctx<'a>(users: &'a [UserSnapshot], bs_cap: u64) -> SlotContext<'a> {
        SlotContext {
            slot: 0,
            tau: 1.0,
            delta_kb: 50.0,
            bs_cap_units: bs_cap,
            users,
        }
    }

    /// Allocation always satisfies Eq. (1)/(2).
    #[test]
    fn respects_constraints() {
        let users: Vec<_> = (0..6).map(|i| user(i, -70.0 - i as f64, 450.0, 30)).collect();
        let mut e = Ema::new(1.0, CrossLayerModels::paper());
        let c = ctx(&users, 70);
        let a = e.allocate(&c);
        a.validate(&c).unwrap();
    }

    /// First slot, all queues zero: transmitting costs energy and buys no
    /// queue relief (PC=0 ⇒ slope = V·P·δ > 0, and the tail penalty makes
    /// φ=0 vs φ≥1 a real trade-off priced by V).
    #[test]
    fn starved_queues_attract_data() {
        let users = vec![user(0, -70.0, 450.0, 40)];
        let mut e = Ema::new(1.0, CrossLayerModels::paper());
        // Warm up the queue: 3 slots of starvation ⇒ PC = 3τ.
        let c = ctx(&users, 400);
        let _ = e.allocate(&c);
        let _ = e.allocate(&c);
        let a3 = e.allocate(&c);
        // By now queue pressure (PC·δ/p per unit) outweighs the energy
        // price, so EMA transmits.
        assert!(
            a3.0[0] > 0,
            "queue pressure should force transmission, PC={}",
            e.queues().get(0)
        );
    }

    /// With a larger V, energy dominates and EMA ships less data over the
    /// same horizon (deferring bulk until queue pressure overwhelms the
    /// energy price). Note EMA still trickles ≥ 1 unit per slot here: one
    /// 50 KB unit at −90 dBm costs ~39 mJ versus a 733 mJ DCH tail slot,
    /// so φ = 0 is never myopically optimal — a direct consequence of the
    /// paper's Eq. (5) energy dichotomy.
    #[test]
    fn v_controls_the_tradeoff() {
        let run = |v: f64| {
            let users = vec![user(0, -90.0, 450.0, 40)];
            let mut e = Ema::new(v, CrossLayerModels::paper());
            let c = ctx(&users, 400);
            let mut total_units = 0u64;
            for _ in 0..400 {
                total_units += e.allocate(&c).total_units();
            }
            total_units
        };
        assert!(run(50.0) < run(0.05), "larger V ships less data");
    }

    /// Good-signal user is preferred over a bad-signal user with equal
    /// queues (the cross-layer part of EMA).
    #[test]
    fn prefers_good_signal() {
        let users = vec![user(0, -105.0, 450.0, 40), user(1, -55.0, 450.0, 40)];
        let mut e = Ema::new(1.0, CrossLayerModels::paper());
        let c = ctx(&users, 400);
        // Build identical queue pressure.
        for _ in 0..3 {
            let _ = e.allocate(&ctx(&users, 0)); // zero capacity ⇒ starve both
        }
        let a = e.allocate(&c);
        assert!(
            a.0[1] >= a.0[0],
            "good-signal user should get at least as much: {:?}",
            a.0
        );
    }

    /// DP equals exhaustive search on a tiny instance.
    #[test]
    fn dp_is_optimal_small() {
        let users = vec![
            user(0, -100.0, 300.0, 3),
            user(1, -60.0, 600.0, 4),
            user(2, -80.0, 450.0, 2),
        ];
        let c = ctx(&users, 5);
        let models = CrossLayerModels::paper();
        let cost = EmaCost::new(2.0, &models, &c);
        let mut queues = VirtualQueues::new(3);
        queues.update(0, 1.0, 0.0); // PC₀ = 1
        queues.update(1, 1.0, 3.0); // PC₁ = −2
        queues.update(2, 1.0, 0.5); // PC₂ = 0.5
        let parts = slot_users(&c, &queues);
        let dp = solve_dp(&cost, &parts, c.bs_cap_units);
        let dp_obj = objective(&cost, &parts, &dp);

        // Exhaustive.
        let mut best = f64::INFINITY;
        for a in 0..=3u64 {
            for b in 0..=4u64 {
                for d in 0..=2u64 {
                    if a + b + d <= 5 {
                        best = best.min(objective(&cost, &parts, &[a, b, d]));
                    }
                }
            }
        }
        assert!((dp_obj - best).abs() < 1e-9, "dp {dp_obj} vs brute {best}");
    }

    /// Queue bookkeeping: only active users update; Eq. (16) holds.
    #[test]
    fn queue_updates_follow_eq16() {
        let mut u0 = user(0, -70.0, 500.0, 40);
        u0.remaining_kb = 0.0;
        u0.active = false; // finished watching
        let users = vec![u0, user(1, -70.0, 500.0, 40)];
        let mut e = Ema::new(1.0, CrossLayerModels::paper());
        let c = ctx(&users, 400);
        let a = e.allocate(&c);
        assert_eq!(a.0[0], 0);
        assert_eq!(e.queues().get(0), 0.0, "inactive user's queue frozen");
        let t1 = c.playback_seconds(a.0[1], 500.0);
        assert!((e.queues().get(1) - (1.0 - t1)).abs() < 1e-12);
    }

    /// Empty context works.
    #[test]
    fn no_users() {
        let users: Vec<UserSnapshot> = vec![];
        let mut e = Ema::new(1.0, CrossLayerModels::paper());
        let a = e.allocate(&ctx(&users, 100));
        assert!(a.0.is_empty());
    }

    #[test]
    #[should_panic(expected = "V must be positive")]
    fn zero_v_rejected() {
        Ema::new(0.0, CrossLayerModels::paper());
    }
}
