//! EMA — Energy Minimization Algorithm (the paper's Alg. 2).
//!
//! Per slot, EMA minimizes the drift-plus-penalty objective
//! `Σᵢ f(i, φᵢ)` (Eq. (22), see [`crate::cost`]) subject to the link
//! bounds Eq. (1) and the BS bound Eq. (2), by dynamic programming over a
//! bounded multi-choice knapsack:
//!
//! ```text
//! a[i][M] = min over φᵢ ∈ [0, min(capᵢ, M)] of a[i−1][M − φᵢ] + f(i, φᵢ)
//! ```
//!
//! with `g[i][M]` recording the argmin for backtracking and the final
//! total chosen as `argmin_M a[P][M]` — exactly the recurrence of
//! Algorithm 2.
//!
//! **Complexity.** Because `f(i, φ)` is affine in φ for φ ≥ 1 (slope
//! `s = δ·(V·P(sigᵢ) − PCᵢ/pᵢ)`), the inner minimization
//! `min_{1 ≤ φ ≤ cap} prev[M−φ] + f(i,1) + (φ−1)·s` equals
//! `min_{M−cap ≤ j < M} (prev[j] − j·s) + f(i,1) + (M−1)·s` — a
//! sliding-window minimum over the keys `prev[j] − j·s`. [`solve_dp`]
//! maintains that window with a monotone deque, so each row costs O(C)
//! and a slot costs **O(P · C)** total, where `P` is the number of
//! participating users and `C = ⌊τS/δ⌋`. The textbook
//! O(P · C · φ_max) scan is retained as [`solve_dp_reference`] for
//! differential testing and as the baseline the speedup is measured
//! against. All DP state lives in a reusable [`DpScratch`] owned by
//! [`Ema`], so steady-state slots allocate nothing.
//!
//! The Lyapunov virtual queues `PCᵢ` (Eq. (16)) are owned by the policy
//! and advanced after each allocation.

use crate::cost::{CrossLayerModels, EmaCost, TailPricing};
use crate::lyapunov::VirtualQueues;
use jmso_gateway::{Allocation, DegradationEvent, Scheduler, SlotContext, SnapshotSoA};
use jmso_radio::Dbm;
use std::collections::VecDeque;

/// The EMA policy (exact DP form of Algorithm 2).
#[derive(Debug, Clone)]
pub struct Ema {
    v: f64,
    models: CrossLayerModels,
    tail_pricing: TailPricing,
    queues: VirtualQueues,
    parts: Vec<SlotUser>,
    scratch: DpScratch,
    reference_dp: bool,
    pc_clamp: Option<f64>,
    events: Vec<DegradationEvent>,
}

impl Ema {
    /// EMA with Lyapunov weight `V` (larger = more energy saving, looser
    /// rebuffering) and the given cross-layer models.
    pub fn new(v: f64, models: CrossLayerModels) -> Self {
        assert!(v > 0.0, "V must be positive");
        Self {
            v,
            models,
            tail_pricing: TailPricing::PerSlot,
            queues: VirtualQueues::new(0),
            parts: Vec::new(),
            scratch: DpScratch::default(),
            reference_dp: false,
            pc_clamp: None,
            events: Vec::new(),
        }
    }

    /// Override how idle slots are priced (see [`TailPricing`]).
    pub fn with_tail_pricing(mut self, tail_pricing: TailPricing) -> Self {
        self.tail_pricing = tail_pricing;
        self
    }

    /// Solve each slot with [`solve_dp_reference`] instead of the
    /// monotone-deque [`solve_dp_with`]. The reference DP is
    /// O(P · C · φ_max) per slot — orders of magnitude slower — and
    /// exists for differential testing, not production runs.
    pub fn with_reference_solver(mut self, reference_dp: bool) -> Self {
        self.reference_dp = reference_dp;
        self
    }

    /// Saturate every virtual queue at `bound` seconds (graceful
    /// degradation under prolonged outage). `None` (the default) keeps
    /// the paper-exact unbounded queues; each clamp firing emits a
    /// [`DegradationEvent::QueueClamped`].
    pub fn with_pc_clamp(mut self, pc_clamp: Option<f64>) -> Self {
        assert!(
            pc_clamp.is_none_or(|b| b > 0.0),
            "PC clamp must be positive"
        );
        self.pc_clamp = pc_clamp;
        self
    }

    /// The Lyapunov weight `V`.
    pub fn v(&self) -> f64 {
        self.v
    }

    /// Read access to the virtual queues (tests, diagnostics).
    pub fn queues(&self) -> &VirtualQueues {
        &self.queues
    }

    fn ensure_queues(&mut self, n: usize) {
        if self.queues.len() != n {
            self.queues = VirtualQueues::new(n);
        }
    }
}

/// Shared post-allocation step for both EMA solvers: saturate queues at
/// `bound` and record one [`DegradationEvent::QueueClamped`] per firing.
pub(crate) fn clamp_queues(
    queues: &mut VirtualQueues,
    bound: Option<f64>,
    slot: u64,
    events: &mut Vec<DegradationEvent>,
) {
    let Some(bound) = bound else { return };
    for user in 0..queues.len() {
        if let Some(pc_before) = queues.clamp(user, bound) {
            events.push(DegradationEvent::QueueClamped {
                slot,
                user,
                pc_before,
                pc_after: bound,
            });
        }
    }
}

/// Per-user inputs to the per-slot solver: the identity, the constraint,
/// and the three numbers that fully describe the affine cost curve.
#[derive(Debug, Clone, Copy)]
pub struct SlotUser {
    /// Index of this user in `ctx.users` (the engine keeps `users[i].id
    /// == i`, so this doubles as the user id).
    pub id: usize,
    /// This user's virtual queue `PCᵢ(n)`.
    pub pc: f64,
    /// Units this user may receive (`min(Eq. 1 bound, remaining bytes)`).
    pub cap: u64,
    /// Playback rate `pᵢ` in KB/s (used by the oracle objectives).
    pub rate_kbps: f64,
    /// `f(i, 0)`: the priced cost of idling this user for the slot.
    pub f0: f64,
    /// `f(i, 1)`: cost of the first unit.
    pub f1: f64,
    /// `f(i, φ+1) − f(i, φ)` for φ ≥ 1 (the affine slope).
    pub slope: f64,
}

impl SlotUser {
    /// Evaluate `f(i, φ)` from the affine decomposition.
    #[inline]
    pub fn f(&self, units: u64) -> f64 {
        if units == 0 {
            self.f0
        } else {
            self.f1 + (units - 1) as f64 * self.slope
        }
    }
}

/// Gather the participating users (positive capacity) for a slot into a
/// caller-owned buffer, pricing each with `cost`.
pub fn slot_users_into(
    cost: &EmaCost,
    ctx: &SlotContext,
    queues: &VirtualQueues,
    out: &mut Vec<SlotUser>,
) {
    out.clear();
    out.extend(ctx.users.iter().enumerate().filter_map(|(idx, u)| {
        let cap = u.usable_cap_units(ctx.delta_kb);
        if cap == 0 {
            return None;
        }
        let pc = queues.get(u.id);
        Some(SlotUser {
            id: idx,
            pc,
            cap,
            rate_kbps: u.rate_kbps,
            f0: cost.f(u, pc, 0),
            f1: cost.f(u, pc, 1),
            slope: cost.slope(u, pc),
        })
    }));
}

/// [`slot_users_into`] over the contiguous [`SnapshotSoA`] mirror: the
/// capacity filter and the three cost curves stream column arrays instead
/// of gathering from ~90-byte snapshot structs. Rows are identified by
/// index (the engine keeps `users[i].id == i`, which is also how the
/// mirror is laid out), and every number comes from the same field-level
/// cost cores the AoS path calls, so the participant set is bit-identical.
pub fn slot_users_soa_into(
    cost: &EmaCost,
    soa: &SnapshotSoA,
    queues: &VirtualQueues,
    out: &mut Vec<SlotUser>,
) {
    out.clear();
    out.extend((0..soa.len()).filter_map(|i| {
        let cap = soa.ceiling_units[i];
        if cap == 0 {
            return None;
        }
        let pc = queues.get(i);
        let sig = Dbm(soa.signal_dbm[i]);
        let rate = soa.rate_kbps[i];
        let idle = soa.idle_s[i];
        Some(SlotUser {
            id: i,
            pc,
            cap,
            rate_kbps: rate,
            f0: cost.f_at(sig, rate, idle, pc, 0),
            f1: cost.f_at(sig, rate, idle, pc, 1),
            slope: cost.slope_at(sig, rate, pc),
        })
    }));
}

/// Gather the participating users (positive capacity) for a slot.
pub fn slot_users(cost: &EmaCost, ctx: &SlotContext, queues: &VirtualQueues) -> Vec<SlotUser> {
    let mut out = Vec::new();
    slot_users_into(cost, ctx, queues, &mut out);
    out
}

/// Reusable buffers for [`solve_dp`]. Owned by [`Ema`] so steady-state
/// slots perform zero heap allocation; buffers grow monotonically to the
/// high-water mark of `(P, C)` seen so far.
#[derive(Debug, Clone, Default)]
pub struct DpScratch {
    /// `a[i−1][·]` row.
    prev: Vec<f64>,
    /// `a[i][·]` row under construction.
    cur: Vec<f64>,
    /// `g[i][M]` argmin table for backtracking (`p × width`).
    choice: Vec<u32>,
    /// `keys[j] = prev[j] − j·slope` for the current row.
    keys: Vec<f64>,
    /// Monotone deque of candidate `j` (keys strictly increasing
    /// front→back).
    window: VecDeque<usize>,
    /// Backtracked per-participant unit counts.
    chosen: Vec<u64>,
}

/// Solve one slot's problem exactly by the Algorithm 2 DP in O(P·C),
/// writing into `scratch` and returning the per-participant unit counts
/// aligned with `parts`.
///
/// The monotone deque preserves the reference solver's deterministic
/// tie-breaking: φ = 0 wins ties against φ ≥ 1 (strict `<` against the
/// φ = 0 baseline), and among tied φ ≥ 1 candidates the smallest φ wins
/// (equal keys are evicted from the back of the deque, so the
/// largest-`j` = smallest-φ candidate survives).
pub fn solve_dp_with<'s>(
    parts: &[SlotUser],
    bs_cap_units: u64,
    scratch: &'s mut DpScratch,
) -> &'s [u64] {
    let p = parts.len();
    let DpScratch {
        prev,
        cur,
        choice,
        keys,
        window,
        chosen,
    } = scratch;
    chosen.clear();
    chosen.resize(p, 0);
    if p == 0 {
        return chosen;
    }
    let c = bs_cap_units as usize;
    let width = c + 1;

    prev.clear();
    prev.resize(width, f64::INFINITY);
    prev[0] = 0.0;
    cur.clear();
    cur.resize(width, f64::INFINITY);
    choice.clear();
    choice.resize(p * width, 0);
    keys.clear();
    keys.resize(width, 0.0);

    for (i, part) in parts.iter().enumerate() {
        let cap = part.cap.min(bs_cap_units) as usize;
        let SlotUser { f0, f1, slope, .. } = *part;
        let row = &mut choice[i * width..(i + 1) * width];
        window.clear();
        for m in 0..width {
            // φ = 0 transition (the baseline; wins ties).
            let mut best = prev[m] + f0;
            let mut arg = 0u32;
            if cap > 0 && m >= 1 {
                // Admit j = m−1 to the window, evicting dominated keys
                // (`>=` keeps the later, larger-j entry on ties — i.e.
                // the smaller φ, matching the reference tie-break).
                let j = m - 1;
                let key = prev[j] - j as f64 * slope;
                keys[j] = key;
                while window.back().is_some_and(|&b| keys[b] >= key) {
                    window.pop_back();
                }
                window.push_back(j);
                // Retire j < m − cap (φ would exceed this user's cap).
                while window.front().is_some_and(|&front| front + cap < m) {
                    window.pop_front();
                }
                // prev[j] + f1 + (m−j−1)·slope == keys[j] + f1 + (m−1)·slope.
                let front = *window.front().expect("window holds at least j = m−1");
                let cand = keys[front] + f1 + (m - 1) as f64 * slope;
                if cand < best {
                    best = cand;
                    arg = (m - front) as u32;
                }
            }
            cur[m] = best;
            row[m] = arg;
        }
        std::mem::swap(prev, cur);
    }

    // D = argmin_M a[P][M].
    let mut best_m = 0usize;
    let mut best = f64::INFINITY;
    for (m, &v) in prev.iter().enumerate() {
        if v < best {
            best = v;
            best_m = m;
        }
    }

    // Backtrack.
    let mut m = best_m;
    for i in (0..p).rev() {
        let phi = choice[i * width + m] as usize;
        chosen[i] = phi as u64;
        m -= phi;
    }
    debug_assert_eq!(m, 0, "backtrack must consume exactly best_m units");
    chosen
}

/// Solve one slot's problem exactly (allocating convenience wrapper over
/// [`solve_dp_with`]). Returns the per-participant unit counts, aligned
/// with `parts`.
pub fn solve_dp(parts: &[SlotUser], bs_cap_units: u64) -> Vec<u64> {
    let mut scratch = DpScratch::default();
    solve_dp_with(parts, bs_cap_units, &mut scratch).to_vec()
}

/// The textbook O(P·C·φ_max) DP — the seed implementation, retained as
/// the differential-testing reference for [`solve_dp`] and as the
/// baseline its speedup is measured against (`cargo bench ema_solver`,
/// `cargo run --bin hotpath`).
pub fn solve_dp_reference(parts: &[SlotUser], bs_cap_units: u64) -> Vec<u64> {
    let p = parts.len();
    if p == 0 {
        return vec![];
    }
    let c = bs_cap_units as usize;
    let width = c + 1;

    let mut prev = vec![f64::INFINITY; width];
    prev[0] = 0.0;
    let mut choice = vec![0u32; p * width];

    let mut cur = vec![f64::INFINITY; width];
    for (i, part) in parts.iter().enumerate() {
        cur.fill(f64::INFINITY);
        let cap = part.cap.min(bs_cap_units) as usize;
        let SlotUser { f0, f1, slope, .. } = *part;
        let row = &mut choice[i * width..(i + 1) * width];
        for m in 0..width {
            let mut best = prev[m] + f0;
            let mut arg = 0u32;
            let phi_max = cap.min(m);
            let mut f_phi = f1;
            for phi in 1..=phi_max {
                let cand = prev[m - phi] + f_phi;
                if cand < best {
                    best = cand;
                    arg = phi as u32;
                }
                f_phi += slope;
            }
            cur[m] = best;
            row[m] = arg;
        }
        std::mem::swap(&mut prev, &mut cur);
    }

    let mut best_m = 0usize;
    let mut best = f64::INFINITY;
    for (m, &v) in prev.iter().enumerate() {
        if v < best {
            best = v;
            best_m = m;
        }
    }

    let mut out = vec![0u64; p];
    let mut m = best_m;
    for i in (0..p).rev() {
        let phi = choice[i * width + m] as usize;
        out[i] = phi as u64;
        m -= phi;
    }
    debug_assert_eq!(m, 0, "backtrack must consume exactly best_m units");
    out
}

/// Objective value `Σ f(i, φᵢ)` of an allocation over the participants.
pub fn objective(parts: &[SlotUser], alloc: &[u64]) -> f64 {
    parts.iter().zip(alloc).map(|(s, &phi)| s.f(phi)).sum()
}

impl Scheduler for Ema {
    fn name(&self) -> &'static str {
        "EMA"
    }

    fn wants_soa(&self) -> bool {
        true
    }

    fn allocate_into(&mut self, ctx: &SlotContext, out: &mut Allocation) {
        self.ensure_queues(ctx.users.len());
        self.events.clear();
        out.reset(ctx.users.len());
        let cost = EmaCost::with_pricing(self.v, &self.models, ctx, self.tail_pricing);
        match ctx.soa {
            Some(soa) => slot_users_soa_into(&cost, soa, &self.queues, &mut self.parts),
            None => slot_users_into(&cost, ctx, &self.queues, &mut self.parts),
        }
        if self.reference_dp {
            let chosen = solve_dp_reference(&self.parts, ctx.bs_cap_units);
            for (part, units) in self.parts.iter().zip(chosen) {
                out.0[part.id] = units;
            }
        } else {
            let chosen = solve_dp_with(&self.parts, ctx.bs_cap_units, &mut self.scratch);
            for (part, &units) in self.parts.iter().zip(chosen) {
                out.0[part.id] = units;
            }
        }
        self.queues.apply_allocation(ctx, &out.0);
        clamp_queues(&mut self.queues, self.pc_clamp, ctx.slot, &mut self.events);
    }

    fn queue_values(&self) -> Option<&[f64]> {
        Some(self.queues.values())
    }

    fn degradations(&self) -> &[DegradationEvent] {
        &self.events
    }

    fn export_state(&self) -> Option<String> {
        serde_json::to_string(&self.queues).ok()
    }

    fn import_state(&mut self, state: &str) -> Result<(), String> {
        self.queues = serde_json::from_str(state).map_err(|e| format!("EMA queues: {e}"))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmso_gateway::UserSnapshot;
    use jmso_radio::rrc::RrcState;
    use jmso_radio::Dbm;

    fn user(id: usize, sig: f64, rate: f64, link_cap: u64) -> UserSnapshot {
        UserSnapshot {
            id,
            signal: Dbm(sig),
            rate_kbps: rate,
            buffer_s: 0.0,
            remaining_kb: 1e9,
            active: true,
            link_cap_units: link_cap,
            idle_s: 0.0,
            rrc_state: RrcState::Dch,
        }
    }

    fn ctx<'a>(users: &'a [UserSnapshot], bs_cap: u64) -> SlotContext<'a> {
        SlotContext {
            slot: 0,
            tau: 1.0,
            delta_kb: 50.0,
            bs_cap_units: bs_cap,
            users,
            soa: None,
        }
    }

    /// Allocation always satisfies Eq. (1)/(2).
    #[test]
    fn respects_constraints() {
        let users: Vec<_> = (0..6)
            .map(|i| user(i, -70.0 - i as f64, 450.0, 30))
            .collect();
        let mut e = Ema::new(1.0, CrossLayerModels::paper());
        let c = ctx(&users, 70);
        let a = e.allocate(&c);
        a.validate(&c).expect("valid allocation");
    }

    /// First slot, all queues zero: transmitting costs energy and buys no
    /// queue relief (PC=0 ⇒ slope = V·P·δ > 0, and the tail penalty makes
    /// φ=0 vs φ≥1 a real trade-off priced by V).
    #[test]
    fn starved_queues_attract_data() {
        let users = vec![user(0, -70.0, 450.0, 40)];
        let mut e = Ema::new(1.0, CrossLayerModels::paper());
        // Warm up the queue: 3 slots of starvation ⇒ PC = 3τ.
        let c = ctx(&users, 400);
        let _ = e.allocate(&c);
        let _ = e.allocate(&c);
        let a3 = e.allocate(&c);
        // By now queue pressure (PC·δ/p per unit) outweighs the energy
        // price, so EMA transmits.
        assert!(
            a3.0[0] > 0,
            "queue pressure should force transmission, PC={}",
            e.queues().get(0)
        );
    }

    /// With a larger V, energy dominates and EMA ships less data over the
    /// same horizon (deferring bulk until queue pressure overwhelms the
    /// energy price). Note EMA still trickles ≥ 1 unit per slot here: one
    /// 50 KB unit at −90 dBm costs ~39 mJ versus a 733 mJ DCH tail slot,
    /// so φ = 0 is never myopically optimal — a direct consequence of the
    /// paper's Eq. (5) energy dichotomy.
    #[test]
    fn v_controls_the_tradeoff() {
        let run = |v: f64| {
            let users = vec![user(0, -90.0, 450.0, 40)];
            let mut e = Ema::new(v, CrossLayerModels::paper());
            let c = ctx(&users, 400);
            let mut total_units = 0u64;
            for _ in 0..400 {
                total_units += e.allocate(&c).total_units();
            }
            total_units
        };
        assert!(run(50.0) < run(0.05), "larger V ships less data");
    }

    /// Good-signal user is preferred over a bad-signal user with equal
    /// queues (the cross-layer part of EMA).
    #[test]
    fn prefers_good_signal() {
        let users = vec![user(0, -105.0, 450.0, 40), user(1, -55.0, 450.0, 40)];
        let mut e = Ema::new(1.0, CrossLayerModels::paper());
        let c = ctx(&users, 400);
        // Build identical queue pressure.
        for _ in 0..3 {
            let _ = e.allocate(&ctx(&users, 0)); // zero capacity ⇒ starve both
        }
        let a = e.allocate(&c);
        assert!(
            a.0[1] >= a.0[0],
            "good-signal user should get at least as much: {:?}",
            a.0
        );
    }

    /// DP equals exhaustive search on a tiny instance.
    #[test]
    fn dp_is_optimal_small() {
        let users = vec![
            user(0, -100.0, 300.0, 3),
            user(1, -60.0, 600.0, 4),
            user(2, -80.0, 450.0, 2),
        ];
        let c = ctx(&users, 5);
        let models = CrossLayerModels::paper();
        let cost = EmaCost::new(2.0, &models, &c);
        let mut queues = VirtualQueues::new(3);
        queues.update(0, 1.0, 0.0); // PC₀ = 1
        queues.update(1, 1.0, 3.0); // PC₁ = −2
        queues.update(2, 1.0, 0.5); // PC₂ = 0.5
        let parts = slot_users(&cost, &c, &queues);
        let dp = solve_dp(&parts, c.bs_cap_units);
        let dp_obj = objective(&parts, &dp);

        // Exhaustive.
        let mut best = f64::INFINITY;
        for a in 0..=3u64 {
            for b in 0..=4u64 {
                for d in 0..=2u64 {
                    if a + b + d <= 5 {
                        best = best.min(objective(&parts, &[a, b, d]));
                    }
                }
            }
        }
        assert!((dp_obj - best).abs() < 1e-9, "dp {dp_obj} vs brute {best}");
    }

    /// The deque solver and the retained reference agree in objective
    /// value on a fixed mid-size instance (the proptest in
    /// `tests/sched_properties.rs` covers random instances).
    #[test]
    fn deque_matches_reference_fixed() {
        let users: Vec<_> = (0..8)
            .map(|i| {
                user(
                    i,
                    -110.0 + 7.0 * i as f64,
                    300.0 + 40.0 * i as f64,
                    5 + i as u64,
                )
            })
            .collect();
        let c = ctx(&users, 23);
        let models = CrossLayerModels::paper();
        let cost = EmaCost::new(0.7, &models, &c);
        let mut queues = VirtualQueues::new(8);
        for i in 0..8 {
            queues.update(i, 1.0, (i as f64) * 0.4 - 1.0);
        }
        let parts = slot_users(&cost, &c, &queues);
        let fast = solve_dp(&parts, c.bs_cap_units);
        let slow = solve_dp_reference(&parts, c.bs_cap_units);
        assert!(
            (objective(&parts, &fast) - objective(&parts, &slow)).abs() < 1e-9,
            "deque {fast:?} vs reference {slow:?}"
        );
        assert!(fast.iter().sum::<u64>() <= 23);
        for (part, &phi) in parts.iter().zip(&fast) {
            assert!(phi <= part.cap);
        }
    }

    /// Scratch reuse across slots of different sizes gives the same
    /// answers as fresh solves.
    #[test]
    fn scratch_reuse_is_clean() {
        let models = CrossLayerModels::paper();
        let mut scratch = DpScratch::default();
        for (n, cap) in [(5usize, 40u64), (2, 7), (8, 120), (1, 1), (6, 63)] {
            let users: Vec<_> = (0..n)
                .map(|i| user(i, -95.0 + 5.0 * i as f64, 450.0, 12))
                .collect();
            let c = ctx(&users, cap);
            let cost = EmaCost::new(1.1, &models, &c);
            let mut queues = VirtualQueues::new(n);
            for i in 0..n {
                queues.update(i, 1.0, if i % 2 == 0 { 0.0 } else { 2.0 });
            }
            let parts = slot_users(&cost, &c, &queues);
            let reused = solve_dp_with(&parts, cap, &mut scratch).to_vec();
            let fresh = solve_dp(&parts, cap);
            assert_eq!(reused, fresh, "n={n} cap={cap}");
        }
    }

    /// The `reference_dp` knob routes through the naive solver yet
    /// produces the exact same allocations across a stateful multi-slot
    /// run (virtual queues and all).
    #[test]
    fn reference_solver_knob_matches_deque() {
        let mut fast = Ema::new(0.8, CrossLayerModels::paper());
        let mut slow = Ema::new(0.8, CrossLayerModels::paper()).with_reference_solver(true);
        for slot in 0..40u64 {
            let users: Vec<_> = (0..6)
                .map(|i| {
                    let wobble = ((slot * 7 + i as u64 * 13) % 20) as f64;
                    user(
                        i,
                        -105.0 + 2.5 * wobble,
                        300.0 + 50.0 * i as f64,
                        3 + i as u64,
                    )
                })
                .collect();
            let mut c = ctx(&users, 14);
            c.slot = slot;
            let a = fast.allocate(&c);
            let b = slow.allocate(&c);
            assert_eq!(a, b, "slot {slot}");
        }
    }

    /// Queue bookkeeping: only active users update; Eq. (16) holds.
    #[test]
    fn queue_updates_follow_eq16() {
        let mut u0 = user(0, -70.0, 500.0, 40);
        u0.remaining_kb = 0.0;
        u0.active = false; // finished watching
        let users = vec![u0, user(1, -70.0, 500.0, 40)];
        let mut e = Ema::new(1.0, CrossLayerModels::paper());
        let c = ctx(&users, 400);
        let a = e.allocate(&c);
        assert_eq!(a.0[0], 0);
        assert_eq!(e.queues().get(0), 0.0, "inactive user's queue frozen");
        let t1 = c.playback_seconds(a.0[1], 500.0);
        assert!((e.queues().get(1) - (1.0 - t1)).abs() < 1e-12);
    }

    /// The PC clamp saturates a starving user's queue and reports it; the
    /// default (no clamp) lets the queue grow without bound.
    #[test]
    fn pc_clamp_saturates_and_reports() {
        let users = vec![user(0, -70.0, 450.0, 40)];
        let starving = ctx(&users, 0); // outage: zero BS capacity
        let mut unclamped = Ema::new(1.0, CrossLayerModels::paper());
        let mut clamped = Ema::new(1.0, CrossLayerModels::paper()).with_pc_clamp(Some(5.0));
        for _ in 0..12 {
            let _ = unclamped.allocate(&starving);
            let _ = clamped.allocate(&starving);
        }
        assert_eq!(unclamped.queues().get(0), 12.0);
        assert_eq!(clamped.queues().get(0), 5.0);
        assert_eq!(
            clamped.degradations(),
            &[DegradationEvent::QueueClamped {
                slot: 0,
                user: 0,
                pc_before: 6.0,
                pc_after: 5.0,
            }]
        );
    }

    /// Exported queue state round-trips through `import_state`.
    #[test]
    fn queue_state_roundtrip() {
        let users = vec![user(0, -70.0, 450.0, 40), user(1, -85.0, 300.0, 20)];
        let c = ctx(&users, 8);
        let mut a = Ema::new(1.0, CrossLayerModels::paper());
        for _ in 0..5 {
            let _ = a.allocate(&c);
        }
        let state = a.export_state().expect("EMA exports state");
        let mut b = Ema::new(1.0, CrossLayerModels::paper());
        b.import_state(&state).expect("state imports");
        assert_eq!(a.queues(), b.queues());
        assert_eq!(a.allocate(&c), b.allocate(&c));
    }

    /// Empty context works.
    #[test]
    fn no_users() {
        let users: Vec<UserSnapshot> = vec![];
        let mut e = Ema::new(1.0, CrossLayerModels::paper());
        let a = e.allocate(&ctx(&users, 100));
        assert!(a.0.is_empty());
    }

    #[test]
    #[should_panic(expected = "V must be positive")]
    fn zero_v_rejected() {
        Ema::new(0.0, CrossLayerModels::paper());
    }
}
