//! Lyapunov machinery for EMA: the virtual rebuffering queues of Eq. (16)
//! and the Theorem 1 performance bounds.
//!
//! Each user carries a signed virtual queue
//! `PCᵢ(n+1) = PCᵢ(n) + τ − tᵢ(n)` where `tᵢ(n)` is the playback time of
//! the shard delivered in slot `n`. Positive `PCᵢ` accumulates rebuffering
//! pressure; negative `PCᵢ` means the buffer holds surplus. Telescoping
//! the recursion over a session of `Γᵢ` slots recovers Eq. (15):
//! `PCᵢ(Γᵢ) = τ·Γᵢ − Σ tᵢ(n)`.

use jmso_gateway::SlotContext;
use serde::{Deserialize, Serialize};

/// The per-user virtual queues `PCᵢ(n)`.
///
/// ```
/// use jmso_sched::VirtualQueues;
///
/// let mut q = VirtualQueues::new(2);
/// q.update(0, 1.0, 0.0); // starved slot: PC₀ += τ − 0
/// q.update(1, 1.0, 3.0); // 3 s delivered in a 1 s slot: PC₁ goes negative
/// assert_eq!(q.get(0), 1.0);
/// assert_eq!(q.get(1), -2.0);
/// assert_eq!(q.lyapunov(), 0.5 * (1.0 + 4.0)); // Eq. (17)
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtualQueues {
    pc: Vec<f64>,
    slots_updated: Vec<u64>,
}

impl VirtualQueues {
    /// Queues for `n` users, all starting at zero.
    pub fn new(n: usize) -> Self {
        Self {
            pc: vec![0.0; n],
            slots_updated: vec![0; n],
        }
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.pc.len()
    }

    /// True when tracking no users.
    pub fn is_empty(&self) -> bool {
        self.pc.is_empty()
    }

    /// `PCᵢ(n)` for user `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.pc[i]
    }

    /// All queue values.
    pub fn values(&self) -> &[f64] {
        &self.pc
    }

    /// Apply Eq. (16) for user `i`: one slot elapsed, `t_i` seconds of
    /// playback delivered.
    #[inline]
    pub fn update(&mut self, i: usize, tau: f64, t_i: f64) {
        self.pc[i] += tau - t_i;
        self.slots_updated[i] += 1;
    }

    /// Slots over which user `i`'s queue has been updated (`Γᵢ`).
    pub fn slots(&self, i: usize) -> u64 {
        self.slots_updated[i]
    }

    /// Apply Eq. (16) across a whole slot, given the allocation the
    /// scheduler just made: every still-watching user's queue grows by
    /// `τ − tᵢ(n)` with `tᵢ(n) = δ·φᵢ/pᵢ`. Users who finished watching no
    /// longer accrue rebuffering pressure (Eq. (8)'s `mᵢ ≥ Mᵢ` branch).
    pub fn apply_allocation(&mut self, ctx: &SlotContext, alloc: &[u64]) {
        debug_assert_eq!(alloc.len(), ctx.users.len());
        for (u, &units) in ctx.users.iter().zip(alloc) {
            if u.active {
                let t_i = ctx.playback_seconds(units, u.rate_kbps);
                self.update(u.id, ctx.tau, t_i);
            }
        }
    }

    /// Saturate user `i`'s queue at `bound` (graceful degradation under
    /// prolonged outage: unbounded `PCᵢ` growth would otherwise make EMA
    /// over-serve one user for many slots once the link returns). Returns
    /// the pre-clamp value when the clamp actually fired.
    #[inline]
    pub fn clamp(&mut self, i: usize, bound: f64) -> Option<f64> {
        let before = self.pc[i];
        if before > bound {
            self.pc[i] = bound;
            Some(before)
        } else {
            None
        }
    }

    /// The Lyapunov function `L(n) = ½ Σ PCᵢ²` (Eq. (17)).
    pub fn lyapunov(&self) -> f64 {
        0.5 * self.pc.iter().map(|x| x * x).sum::<f64>()
    }

    /// Aggregate queue `PC(n) = Σ PCᵢ(n)`.
    pub fn total(&self) -> f64 {
        self.pc.iter().sum()
    }
}

/// The drift constant `B = ½ Σᵢ (τ² + t_max²)` of Eq. (18), where `t_max`
/// bounds the playback time any one shard can carry in a slot.
pub fn drift_bound_b(n_users: usize, tau: f64, t_max: f64) -> f64 {
    0.5 * n_users as f64 * (tau * tau + t_max * t_max)
}

/// Theorem 1, energy side: `PE∞ ≤ E* + B/V`.
pub fn energy_upper_bound(e_star: f64, b: f64, v: f64) -> f64 {
    assert!(v > 0.0, "V must be positive");
    e_star + b / v
}

/// Theorem 1, rebuffering side: `PC∞ ≤ (B + V·E*) / ε`.
pub fn rebuffer_upper_bound(b: f64, v: f64, e_star: f64, eps: f64) -> f64 {
    assert!(eps > 0.0, "ε must be positive");
    (b + v * e_star) / eps
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Eq. (16) telescopes to Eq. (15): PC(Γ) = τΓ − Σ tᵢ(n).
    #[test]
    fn recursion_telescopes_to_eq15() {
        let mut q = VirtualQueues::new(1);
        let tau = 1.0;
        let ts = [0.3, 1.5, 0.0, 2.2, 0.7];
        for t in ts {
            q.update(0, tau, t);
        }
        let expect = tau * ts.len() as f64 - ts.iter().sum::<f64>();
        assert!((q.get(0) - expect).abs() < 1e-12);
        assert_eq!(q.slots(0), 5);
    }

    /// Queues go negative when delivery outpaces playback (buffer surplus).
    #[test]
    fn surplus_is_negative() {
        let mut q = VirtualQueues::new(2);
        q.update(0, 1.0, 3.0); // 3 s delivered in a 1 s slot
        q.update(1, 1.0, 0.0); // starved
        assert!(q.get(0) < 0.0);
        assert!(q.get(1) > 0.0);
        assert!((q.total() - (q.get(0) + q.get(1))).abs() < 1e-12);
    }

    /// L(n) matches Eq. (17).
    #[test]
    fn lyapunov_function() {
        let mut q = VirtualQueues::new(2);
        q.update(0, 1.0, 0.0); // PC₀ = 1
        q.update(1, 1.0, 3.0); // PC₁ = −2
        assert!((q.lyapunov() - 0.5 * (1.0 + 4.0)).abs() < 1e-12);
    }

    /// B matches its definition.
    #[test]
    fn drift_b() {
        // ½·3·(1 + 4) = 7.5
        assert!((drift_bound_b(3, 1.0, 2.0) - 7.5).abs() < 1e-12);
    }

    /// The Theorem 1 trade-off: raising V tightens the energy bound and
    /// loosens the rebuffering bound.
    #[test]
    fn theorem1_tradeoff_directions() {
        let (e_star, b, eps) = (500.0, 20.0, 0.1);
        let e_lo_v = energy_upper_bound(e_star, b, 1.0);
        let e_hi_v = energy_upper_bound(e_star, b, 100.0);
        assert!(e_hi_v < e_lo_v);
        assert!(e_hi_v >= e_star);
        let c_lo_v = rebuffer_upper_bound(b, 1.0, e_star, eps);
        let c_hi_v = rebuffer_upper_bound(b, 100.0, e_star, eps);
        assert!(c_hi_v > c_lo_v);
    }

    #[test]
    #[should_panic(expected = "V must be positive")]
    fn zero_v_rejected() {
        energy_upper_bound(1.0, 1.0, 0.0);
    }

    #[test]
    fn empty_queues() {
        let q = VirtualQueues::new(0);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.lyapunov(), 0.0);
        assert_eq!(q.total(), 0.0);
    }
}
