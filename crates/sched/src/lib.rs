//! The paper's scheduling algorithms and comparison baselines.
//!
//! The primary contribution of the ICPP'15 paper lives here:
//!
//! * [`rtma`] — **RTMA** (Algorithm 1): minimize rebuffering subject to a
//!   per-slot energy bound, enforced through the Eq. (12) signal-strength
//!   threshold computed by [`threshold`].
//! * [`ema`] — **EMA** (Algorithm 2): minimize energy subject to a
//!   rebuffering bound, via the Lyapunov drift-plus-penalty machinery in
//!   [`lyapunov`] and a per-slot bounded multi-choice knapsack DP over the
//!   shared cost model in [`cost`].
//! * [`ema_fast`] — an exact slope-greedy solver for the same per-slot
//!   problem (the per-user cost is convex in φ, so marginal-cost greedy is
//!   optimal). Property-tested equal to the DP; used for large sweeps.
//! * [`baselines`] — the five §VI comparison policies: Default (greedy
//!   max), Throttling, ON-OFF, SALSA, and EStreamer.
//! * [`oracle`] — brute-force enumeration for tiny instances, used to
//!   validate the knapsack formulation and both EMA solvers.
//! * [`kernels`] — autovectorization-pinned batch kernels over the SoA
//!   columns (RTMA's need/cap clamp, the Eq. (12) threshold mask), each
//!   sharing its per-element core with the scalar path so batch ≡ scalar
//!   bit-for-bit.
//! * [`spec`] — a serializable [`spec::SchedulerSpec`] naming any policy,
//!   the factory used by scenario configs.

pub mod baselines;
pub mod cost;
pub mod ema;
pub mod ema_fast;
pub mod error;
pub mod kernels;
pub mod lyapunov;
pub mod oracle;
pub mod rtma;
pub mod spec;
pub mod threshold;

pub use baselines::{
    DefaultMax, EStreamer, OnOff, ProportionalFair, RoundRobin, Salsa, Throttling,
};
pub use cost::{CrossLayerModels, EmaCost, TailPricing};
pub use ema::Ema;
pub use ema_fast::EmaFast;
pub use error::StateImportError;
pub use lyapunov::{drift_bound_b, energy_upper_bound, rebuffer_upper_bound, VirtualQueues};
pub use rtma::Rtma;
pub use spec::SchedulerSpec;
pub use threshold::SignalThreshold;
