//! The Eq. (12) energy-bound → signal-threshold conversion used by RTMA.
//!
//! RTMA enforces its per-user energy budget `Φ` by refusing to allocate to
//! users whose signal is weaker than a threshold `φ` chosen such that
//!
//! ```text
//! Φ = ½ [ P(φ)·v(φ)·τ + τ·P_tail ]                (Eq. 12)
//! ```
//!
//! i.e. `Φ` is "estimated as the mean of the maximum transmission power and
//! the tail energy in a slot". With the paper's fits the full-rate power is
//! affine in throughput (`P·v = base·v + scale`), so the equation inverts in
//! closed form:
//!
//! ```text
//! v(φ) = (2Φ/τ − scale − P_tail) / base
//! ```
//!
//! (`base < 0` in the paper fit, so a looser budget Φ yields a lower —
//! more permissive — threshold). `P_tail` is taken as the DCH power `Pd`,
//! the worst-case per-second tail draw.

use crate::cost::CrossLayerModels;
use jmso_radio::{Dbm, KbPerSec, MilliJoules, MilliWatts};
use serde::{Deserialize, Serialize};

/// A minimum-signal admission rule derived from an energy budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignalThreshold {
    /// Users at or above this RSSI may receive data. `-∞` = allow all
    /// (budget slack), `+∞` = allow none (budget infeasible).
    pub min_dbm: f64,
}

impl SignalThreshold {
    /// Admit everyone (no energy constraint).
    pub fn allow_all() -> Self {
        Self {
            min_dbm: f64::NEG_INFINITY,
        }
    }

    /// Solve Eq. (12) for the threshold given budget `phi` and slot
    /// length `tau`.
    pub fn from_energy_bound(phi: MilliJoules, tau: f64, models: &CrossLayerModels) -> Self {
        assert!(tau > 0.0);
        let p_tail: MilliWatts = models.rrc.p_dch;
        // 2Φ/τ = P(φ)v(φ) + P_tail  ⇒  full-rate power target.
        let target_power = MilliWatts(2.0 * phi.value() / tau - p_tail.value());
        let v_star: KbPerSec = models.power.throughput_for_power(target_power);
        // base < 0: budgets looser than the cheapest full-rate slot give a
        // non-binding threshold; tighter than the most expensive give an
        // infeasible one. The linear inverse handles both continuously, so
        // no clamping is required — out-of-range thresholds simply admit
        // everyone / no-one.
        Self {
            min_dbm: models.throughput.signal_for(v_star).value(),
        }
    }

    /// Does the rule admit a user at RSSI `sig`? Routes through the same
    /// per-element core as the batch mask kernel
    /// [`crate::kernels::admit_mask_into`], so scalar and batch verdicts
    /// are bit-identical by construction.
    #[inline]
    pub fn allows(&self, sig: Dbm) -> bool {
        crate::kernels::admit_at(sig.value(), self.min_dbm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmso_radio::{PowerModel, ThroughputModel};

    fn models() -> CrossLayerModels {
        CrossLayerModels::paper()
    }

    /// A threshold derived from Φ must satisfy Eq. (12) exactly when
    /// substituted back.
    #[test]
    fn threshold_satisfies_eq12() {
        let m = models();
        let tau = 1.0;
        for phi_mj in [800.0, 900.0, 1000.0, 1100.0] {
            let th = SignalThreshold::from_energy_bound(MilliJoules(phi_mj), tau, &m);
            let sig = Dbm(th.min_dbm);
            let v = m.throughput.throughput(sig).value();
            let p = m.power.energy_per_kb(sig);
            let reconstructed = 0.5 * (p * v * tau + tau * m.rrc.p_dch.value());
            assert!(
                (reconstructed - phi_mj).abs() < 1e-6,
                "Φ={phi_mj}: got {reconstructed}"
            );
        }
    }

    /// Looser budget ⇒ lower (more permissive) threshold.
    #[test]
    fn threshold_monotone_in_budget() {
        let m = models();
        let t_tight = SignalThreshold::from_energy_bound(MilliJoules(800.0), 1.0, &m);
        let t_loose = SignalThreshold::from_energy_bound(MilliJoules(1100.0), 1.0, &m);
        assert!(t_loose.min_dbm < t_tight.min_dbm);
    }

    /// The paper's signal range maps to budgets ≈ [789, 1119] mJ; budgets
    /// outside that range admit everyone / no-one.
    #[test]
    fn budget_extremes() {
        let m = models();
        // Very loose: threshold below −110 ⇒ admits the whole range.
        let loose = SignalThreshold::from_energy_bound(MilliJoules(2000.0), 1.0, &m);
        assert!(loose.allows(Dbm(-110.0)));
        // Very tight: threshold above −50 ⇒ admits nobody in range.
        let tight = SignalThreshold::from_energy_bound(MilliJoules(200.0), 1.0, &m);
        assert!(!tight.allows(Dbm(-50.0)));
    }

    #[test]
    fn allow_all_admits_everything() {
        let t = SignalThreshold::allow_all();
        assert!(t.allows(Dbm(-200.0)));
        assert!(t.allows(Dbm(0.0)));
    }

    #[test]
    fn allows_is_inclusive() {
        let t = SignalThreshold { min_dbm: -80.0 };
        assert!(t.allows(Dbm(-80.0)));
        assert!(t.allows(Dbm(-79.9)));
        assert!(!t.allows(Dbm(-80.1)));
    }

    /// τ scaling: doubling τ doubles both sides of Eq. (12), leaving the
    /// threshold unchanged.
    #[test]
    fn tau_invariance() {
        let m = models();
        let a = SignalThreshold::from_energy_bound(MilliJoules(900.0), 1.0, &m);
        let b = SignalThreshold::from_energy_bound(MilliJoules(1800.0), 2.0, &m);
        assert!((a.min_dbm - b.min_dbm).abs() < 1e-9);
    }
}
