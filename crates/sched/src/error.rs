//! Typed errors for the scheduler crate.
//!
//! The [`Scheduler`] trait surfaces state import failures as `String` (it
//! must stay object-safe and serializable across the gateway boundary), so
//! the typed error converts into that shape via `From` — the same idiom
//! the sim crate's `SimError` uses — while keeping a matchable type for
//! in-crate callers and tests.
//!
//! [`Scheduler`]: jmso_gateway::Scheduler

use std::fmt;

/// A scheduler failed to restore checkpointed state.
#[derive(Debug)]
pub enum StateImportError {
    /// The serialized virtual-queue payload did not parse.
    Queues(serde_json::Error),
}

impl fmt::Display for StateImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Keep the historical "EMA queues: …" message shape the
            // checkpoint/resume tests and logs already rely on.
            Self::Queues(e) => write!(f, "EMA queues: {e}"),
        }
    }
}

impl std::error::Error for StateImportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Queues(e) => Some(e),
        }
    }
}

impl From<serde_json::Error> for StateImportError {
    fn from(e: serde_json::Error) -> Self {
        Self::Queues(e)
    }
}

impl From<StateImportError> for String {
    fn from(e: StateImportError) -> Self {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_shape_is_stable() {
        let parse_err = serde_json::from_str::<Vec<f64>>("not json").unwrap_err();
        let err = StateImportError::from(parse_err);
        let msg = String::from(err);
        assert!(msg.starts_with("EMA queues: "), "got {msg:?}");
    }

    #[test]
    fn source_chains_to_serde() {
        use std::error::Error;
        let parse_err = serde_json::from_str::<Vec<f64>>("{").unwrap_err();
        let err = StateImportError::from(parse_err);
        assert!(err.source().is_some());
    }
}
