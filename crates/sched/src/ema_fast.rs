//! EMA-Fast — an exact `O(P log P)` solver for EMA's per-slot problem.
//!
//! Each user's cost `f(i, φ)` is convex in φ (see [`crate::cost`]): the
//! marginal of the first unit is `slope − V·E_tail_slot` and every further
//! unit costs `slope`, a non-decreasing sequence. Minimizing a sum of
//! separable convex functions under a single budget is solved exactly by
//! taking units in globally non-decreasing marginal order while marginals
//! are negative — positive marginals can only raise the objective, and the
//! capacity constraint is an inequality.
//!
//! Because all of a user's post-first units share one marginal, the greedy
//! pops at most two heap entries per user, so a slot costs `O(P log P)`
//! versus the DP's `O(P·C)`. The `ema_dp_vs_fast` property test and
//! Criterion bench pin down, respectively, that the objectives are equal
//! and how much wall-clock the structure saves.

use crate::cost::{CrossLayerModels, CurveColumns, EmaCost, TailPricing};
use crate::ema::{clamp_queues, slot_users_into, slot_users_soa_into, SlotUser};
use crate::error::StateImportError;
use crate::lyapunov::VirtualQueues;
use jmso_gateway::{Allocation, DegradationEvent, Scheduler, SlotContext};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Heap entry: a block of units with a common marginal cost.
#[derive(Debug, Clone, PartialEq)]
struct Block {
    marginal: f64,
    /// Index into the participant array.
    part: usize,
    /// Units available at this marginal.
    units: u64,
    /// Whether taking this block unlocks the user's bulk block.
    first: bool,
}

// Order blocks by `total_cmp` on the marginal, then by participant index.
// `total_cmp` is a genuine total order on all f64 bit patterns, so the
// `BinaryHeap` contract holds even for NaN-adjacent hand-built inputs
// (the old `partial_cmp`/`expect` pair panicked there). For the finite
// marginals [`EmaCost`] produces the two orders agree — only pruned
// blocks (never inserted, see [`solve_greedy_with`]) could carry NaN, and
// `total_cmp` orders `−0.0 < +0.0`, a pair the `>= 0.0` take-test already
// treats identically — so the switch is allocation-invisible.
impl Eq for Block {}
impl PartialOrd for Block {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Block {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.marginal
            .total_cmp(&other.marginal)
            .then_with(|| self.part.cmp(&other.part))
    }
}

/// Reusable buffers for [`solve_greedy`], owned by [`EmaFast`] so the
/// engine hot path performs zero heap allocation in steady state.
#[derive(Debug, Clone, Default)]
pub struct GreedyScratch {
    heap: BinaryHeap<Reverse<Block>>,
    chosen: Vec<u64>,
}

/// The units the greedy would ever *take* from user `s`: the first unit
/// only if its marginal `f1 − f0` is strictly negative, plus the bulk
/// block only if additionally `slope < 0`. A NaN marginal compares false
/// against `< 0.0` and is treated as non-negative (never taken) — the
/// same outcome the DP's `cand < base` comparison produces for NaN
/// curves.
#[inline]
fn negative_units(s: &SlotUser) -> u64 {
    // The negated form is the point — `>= 0.0` would treat a NaN
    // marginal as takeable.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if s.cap == 0 || !(s.f1 - s.f0 < 0.0) {
        return 0;
    }
    if s.slope < 0.0 {
        s.cap
    } else {
        1
    }
}

/// Solve one slot's EMA problem exactly by marginal-cost greedy, reusing
/// `scratch`. Returns per-participant unit counts aligned with `parts`.
///
/// Two exact shortcuts sit in front of the heap:
///
/// * **Dominance pruning** — only strictly-negative-marginal blocks enter
///   the heap. The original loop breaks the first time a non-negative
///   marginal pops, and the min-heap guarantees no negative block remains
///   behind it, so a `≥ 0` block is never taken; not inserting it yields
///   the same allocation with a smaller heap. (This is the greedy face of
///   the same Lyapunov dominance argument proven in
///   [`crate::ema::solve_dp_with`]: a user whose queue pressure doesn't
///   pay for the first unit gets zero.)
/// * **Take-all fast path** — when the total strictly-negative unit count
///   `T` fits the budget, the heap order is irrelevant: the greedy takes
///   *exactly* the negative units of every user, a closed form per user
///   ([`negative_units`]). Only a contended slot (`T > budget`) pays for
///   the heap. In the paper's workloads the budget binds rarely (the
///   steady trickle keeps Σcap ≪ C), so this is the common path.
pub fn solve_greedy_with<'s>(
    parts: &[SlotUser],
    bs_cap_units: u64,
    scratch: &'s mut GreedyScratch,
) -> &'s [u64] {
    let GreedyScratch { heap, chosen } = scratch;
    chosen.clear();
    chosen.resize(parts.len(), 0);
    let mut budget = bs_cap_units;

    let mut total_neg: u64 = 0;
    for s in parts {
        total_neg = total_neg.saturating_add(negative_units(s));
    }
    if total_neg <= budget {
        for (c, s) in chosen.iter_mut().zip(parts) {
            *c = negative_units(s);
        }
        return chosen;
    }

    heap.clear();
    heap.extend(
        parts
            .iter()
            .enumerate()
            .filter(|(_, s)| s.cap > 0 && s.f1 - s.f0 < 0.0)
            .map(|(idx, s)| {
                Reverse(Block {
                    // f(1) − f(0): the first unit's marginal, which also
                    // cashes in the avoided tail slot.
                    marginal: s.f1 - s.f0,
                    part: idx,
                    units: 1,
                    first: true,
                })
            }),
    );

    while budget > 0 {
        let Some(Reverse(block)) = heap.pop() else {
            break;
        };
        let take = block.units.min(budget);
        chosen[block.part] += take;
        budget -= take;
        if block.first {
            let s = &parts[block.part];
            if s.cap > 1 && s.slope < 0.0 {
                heap.push(Reverse(Block {
                    marginal: s.slope,
                    part: block.part,
                    units: s.cap - 1,
                    first: false,
                }));
            }
        }
    }
    chosen
}

/// Solve one slot's EMA problem exactly by marginal-cost greedy
/// (allocating convenience wrapper over [`solve_greedy_with`]).
pub fn solve_greedy(parts: &[SlotUser], bs_cap_units: u64) -> Vec<u64> {
    let mut scratch = GreedyScratch::default();
    solve_greedy_with(parts, bs_cap_units, &mut scratch).to_vec()
}

/// The EMA policy solved by the exact greedy (drop-in replacement for
/// [`crate::ema::Ema`]; used for large parameter sweeps).
///
/// ```
/// use jmso_gateway::Scheduler;
/// use jmso_sched::{CrossLayerModels, Ema, EmaFast};
///
/// let models = CrossLayerModels::paper();
/// let mut fast = EmaFast::new(0.5, models);
/// let mut dp = Ema::new(0.5, models);
/// assert_eq!(fast.v(), dp.v());
/// assert_eq!(fast.name(), "EMA-fast");
/// ```
#[derive(Debug, Clone)]
pub struct EmaFast {
    v: f64,
    models: CrossLayerModels,
    tail_pricing: TailPricing,
    queues: VirtualQueues,
    parts: Vec<SlotUser>,
    cols: CurveColumns,
    scratch: GreedyScratch,
    pc_clamp: Option<f64>,
    events: Vec<DegradationEvent>,
}

impl EmaFast {
    /// EMA-Fast with Lyapunov weight `V`.
    pub fn new(v: f64, models: CrossLayerModels) -> Self {
        assert!(v > 0.0, "V must be positive");
        Self {
            v,
            models,
            tail_pricing: TailPricing::PerSlot,
            queues: VirtualQueues::new(0),
            parts: Vec::new(),
            cols: CurveColumns::default(),
            scratch: GreedyScratch::default(),
            pc_clamp: None,
            events: Vec::new(),
        }
    }

    /// Override how idle slots are priced (see [`TailPricing`]).
    pub fn with_tail_pricing(mut self, tail_pricing: TailPricing) -> Self {
        self.tail_pricing = tail_pricing;
        self
    }

    /// Saturate every virtual queue at `bound` seconds (see
    /// [`crate::Ema::with_pc_clamp`]).
    pub fn with_pc_clamp(mut self, pc_clamp: Option<f64>) -> Self {
        assert!(
            pc_clamp.is_none_or(|b| b > 0.0),
            "PC clamp must be positive"
        );
        self.pc_clamp = pc_clamp;
        self
    }

    /// The Lyapunov weight `V`.
    pub fn v(&self) -> f64 {
        self.v
    }

    /// Read access to the virtual queues.
    pub fn queues(&self) -> &VirtualQueues {
        &self.queues
    }
}

impl Scheduler for EmaFast {
    fn name(&self) -> &'static str {
        "EMA-fast"
    }

    /// The greedy solve is ~0.1 µs per slot, far too cheap to amortize the
    /// engine's SoA mirror sync (~0.3 µs per slot) plus the batch-kernel
    /// setup the way the full DP does, so EMA-fast opts out of the mirror
    /// and builds participants from the AoS snapshot. The per-element and
    /// batch kernels are pinned bit-identical, so the trace is unchanged.
    fn wants_soa(&self) -> bool {
        false
    }

    fn allocate_into(&mut self, ctx: &SlotContext, out: &mut Allocation) {
        if self.queues.len() != ctx.users.len() {
            self.queues = VirtualQueues::new(ctx.users.len());
        }
        self.events.clear();
        out.reset(ctx.users.len());
        let cost = EmaCost::with_pricing(self.v, &self.models, ctx, self.tail_pricing);
        match ctx.soa {
            Some(soa) => {
                slot_users_soa_into(&cost, soa, &self.queues, &mut self.cols, &mut self.parts)
            }
            None => slot_users_into(&cost, ctx, &self.queues, &mut self.parts),
        }
        let chosen = solve_greedy_with(&self.parts, ctx.bs_cap_units, &mut self.scratch);
        for (part, &units) in self.parts.iter().zip(chosen) {
            out.0[part.id] = units;
        }
        self.queues.apply_allocation(ctx, &out.0);
        clamp_queues(&mut self.queues, self.pc_clamp, ctx.slot, &mut self.events);
    }

    fn queue_values(&self) -> Option<&[f64]> {
        Some(self.queues.values())
    }

    fn degradations(&self) -> &[DegradationEvent] {
        &self.events
    }

    /// Same degraded mode as [`crate::Ema::engage_degraded`]: saturate
    /// the virtual queues at their current peak (floored at 1.0) unless
    /// a clamp is already configured.
    fn engage_degraded(&mut self) -> bool {
        if self.pc_clamp.is_none() {
            let peak = self.queues.values().iter().fold(1.0f64, |m, &q| m.max(q));
            self.pc_clamp = Some(peak);
        }
        true
    }

    fn export_state(&self) -> Option<String> {
        serde_json::to_string(&self.queues).ok()
    }

    fn import_state(&mut self, state: &str) -> Result<(), String> {
        self.queues =
            serde_json::from_str(state).map_err(|e| String::from(StateImportError::from(e)))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ema::{objective, slot_users, solve_dp};
    use jmso_gateway::UserSnapshot;
    use jmso_radio::rrc::RrcState;
    use jmso_radio::Dbm;

    fn user(id: usize, sig: f64, rate: f64, link_cap: u64) -> UserSnapshot {
        UserSnapshot {
            id,
            signal: Dbm(sig),
            rate_kbps: rate,
            buffer_s: 0.0,
            remaining_kb: 1e9,
            active: true,
            link_cap_units: link_cap,
            idle_s: 0.0,
            rrc_state: RrcState::Dch,
        }
    }

    fn ctx<'a>(users: &'a [UserSnapshot], bs_cap: u64) -> SlotContext<'a> {
        SlotContext {
            slot: 0,
            tau: 1.0,
            delta_kb: 50.0,
            bs_cap_units: bs_cap,
            users,
            soa: None,
        }
    }

    /// Greedy matches the DP objective on a handcrafted instance mixing
    /// starved and surplus queues.
    #[test]
    fn greedy_matches_dp_handcrafted() {
        let users = vec![
            user(0, -100.0, 300.0, 8),
            user(1, -60.0, 600.0, 12),
            user(2, -80.0, 450.0, 9),
            user(3, -70.0, 350.0, 10),
        ];
        let c = ctx(&users, 18);
        let models = CrossLayerModels::paper();
        let cost = EmaCost::new(2.0, &models, &c);
        let mut q = VirtualQueues::new(4);
        q.update(0, 1.0, 0.0); //  1
        q.update(1, 1.0, 4.0); // −3
        q.update(2, 1.0, 0.0); //  1
        q.update(2, 1.0, 0.0); //  2
        q.update(3, 1.0, 0.9); //  0.1
        let parts = slot_users(&cost, &c, &q);
        let dp = solve_dp(&parts, c.bs_cap_units);
        let fast = solve_greedy(&parts, c.bs_cap_units);
        let o_dp = objective(&parts, &dp);
        let o_fast = objective(&parts, &fast);
        assert!((o_dp - o_fast).abs() < 1e-9, "dp {o_dp} vs fast {o_fast}");
    }

    /// Positive marginals are never taken.
    #[test]
    fn never_takes_positive_marginals() {
        // Fresh users, PC = 0, already idle-saturated radios: transmitting
        // has strictly positive marginal (energy cost, no tail to save).
        let mut u = user(0, -70.0, 450.0, 40);
        u.idle_s = 100.0;
        let users = vec![u];
        let c = ctx(&users, 400);
        let models = CrossLayerModels::paper();
        let cost = EmaCost::new(1.0, &models, &c);
        let q = VirtualQueues::new(1);
        let parts = slot_users(&cost, &c, &q);
        let a = solve_greedy(&parts, c.bs_cap_units);
        assert_eq!(a[0], 0);
    }

    /// Budget exhaustion stops allocation at exactly the budget.
    #[test]
    fn budget_is_hard() {
        // Strongly starved users: everything negative, wants all units.
        let users = vec![user(0, -60.0, 450.0, 50), user(1, -60.0, 450.0, 50)];
        let c = ctx(&users, 30);
        let models = CrossLayerModels::paper();
        let cost = EmaCost::new(0.001, &models, &c);
        let mut q = VirtualQueues::new(2);
        for _ in 0..20 {
            q.update(0, 1.0, 0.0);
            q.update(1, 1.0, 0.0);
        }
        let parts = slot_users(&cost, &c, &q);
        let a = solve_greedy(&parts, c.bs_cap_units);
        assert_eq!(a.iter().sum::<u64>(), 30);
    }

    /// The scheduler wrapper produces valid allocations and matches Ema's
    /// objective slot by slot on a short horizon.
    #[test]
    fn wrapper_tracks_dp_policy() {
        use crate::ema::Ema;
        let users: Vec<_> = (0..5)
            .map(|i| user(i, -65.0 - 8.0 * i as f64, 300.0 + 60.0 * i as f64, 25))
            .collect();
        let models = CrossLayerModels::paper();
        let mut dp_pol = Ema::new(2.0, models);
        let mut fast_pol = EmaFast::new(2.0, models);
        for slot in 0..30 {
            let mut c = ctx(&users, 40);
            c.slot = slot;
            let a_dp = dp_pol.allocate(&c);
            let a_fast = fast_pol.allocate(&c);
            a_dp.validate(&c).expect("valid allocation");
            a_fast.validate(&c).expect("valid allocation");
            assert!(
                (dp_pol.queues().total() - fast_pol.queues().total()).abs() < 1e-6,
                "queue trajectories diverged at slot {slot}"
            );
            let _ = (a_dp, a_fast);
        }
    }

    /// Empty participant set.
    #[test]
    fn empty_parts() {
        let users: Vec<UserSnapshot> = vec![];
        let c = ctx(&users, 100);
        let models = CrossLayerModels::paper();
        let cost = EmaCost::new(1.0, &models, &c);
        let q = VirtualQueues::new(0);
        let parts = slot_users(&cost, &c, &q);
        assert!(solve_greedy(&parts, 100).is_empty());
    }
}
