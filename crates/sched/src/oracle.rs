//! Brute-force oracle for tiny per-slot instances.
//!
//! Both per-slot problems the paper proves NP-hard reduce, for one slot, to
//! a bounded multi-choice knapsack. This module enumerates *every* feasible
//! allocation so the DP of
//! [`crate::ema::solve_dp`] and the greedy of
//! [`crate::ema_fast::solve_greedy`] can be validated against ground truth
//! on small instances, and so tests and examples can inspect true optima.
//!
//! The state space is `Π (capᵢ+1)`, so keep instances tiny (≤ ~6 users ×
//! ≤ ~8 units).

use crate::ema::SlotUser;

/// Minimize `Σ f(i, φᵢ)` subject to `φᵢ ≤ capᵢ`, `Σφᵢ ≤ budget` by
/// exhaustive enumeration. Returns `(allocation, objective)`.
pub fn solve_exhaustive(parts: &[SlotUser], budget: u64) -> (Vec<u64>, f64) {
    let mut best_alloc = vec![0u64; parts.len()];
    let mut best = f64::INFINITY;
    let mut current = vec![0u64; parts.len()];
    recurse(
        parts,
        budget,
        0,
        0.0,
        &mut current,
        &mut best,
        &mut best_alloc,
    );
    (best_alloc, best)
}

fn recurse(
    parts: &[SlotUser],
    budget: u64,
    i: usize,
    acc: f64,
    current: &mut Vec<u64>,
    best: &mut f64,
    best_alloc: &mut Vec<u64>,
) {
    if i == parts.len() {
        if acc < *best {
            *best = acc;
            best_alloc.clone_from(current);
        }
        return;
    }
    let cap = parts[i].cap.min(budget);
    for phi in 0..=cap {
        // f can be negative (queue relief), so partial sums give no sound
        // pruning bound; enumerate fully — instances are tiny by contract.
        let c = acc + parts[i].f(phi);
        current[i] = phi;
        recurse(parts, budget - phi, i + 1, c, current, best, best_alloc);
    }
    current[i] = 0;
}

/// Exhaustive minimum of next-slot rebuffering: minimize
/// `Σᵢ max(τ − (rᵢ_carry + δφᵢ/pᵢ), 0)` — the Eq. (8) shortfall each user
/// will suffer next slot given their carried-over occupancy and this
/// slot's shard. This is the true per-slot RTM objective (unlike raw
/// playback volume, each user's benefit saturates once a full slot is
/// covered, which is exactly why RTMA's need-tranche ordering is optimal).
/// Tiny instances only.
pub fn min_rebuffer_exhaustive(
    parts: &[SlotUser],
    carry_s: &[f64],
    delta_kb: f64,
    tau: f64,
    budget: u64,
) -> f64 {
    assert_eq!(parts.len(), carry_s.len());
    #[allow(clippy::too_many_arguments)]
    fn rec(
        parts: &[SlotUser],
        carry_s: &[f64],
        delta_kb: f64,
        tau: f64,
        budget: u64,
        i: usize,
        acc: f64,
        best: &mut f64,
    ) {
        if i == parts.len() {
            *best = best.min(acc);
            return;
        }
        let cap = parts[i].cap.min(budget);
        for phi in 0..=cap {
            let t = carry_s[i] + delta_kb * phi as f64 / parts[i].rate_kbps;
            let c = (tau - t).max(0.0);
            rec(
                parts,
                carry_s,
                delta_kb,
                tau,
                budget - phi,
                i + 1,
                acc + c,
                best,
            );
        }
    }
    let mut best = f64::INFINITY;
    rec(parts, carry_s, delta_kb, tau, budget, 0, 0.0, &mut best);
    best
}

/// Exhaustive maximum of total playback seconds (a *volume* objective,
/// distinct from rebuffering: it has no per-user saturation, so its
/// optimum dumps everything on the lowest-rate user).
pub fn max_playback_exhaustive(parts: &[SlotUser], delta_kb: f64, budget: u64) -> f64 {
    fn rec(parts: &[SlotUser], delta_kb: f64, budget: u64, i: usize, acc: f64, best: &mut f64) {
        if i == parts.len() {
            *best = best.max(acc);
            return;
        }
        let cap = parts[i].cap.min(budget);
        for phi in 0..=cap {
            let t = delta_kb * phi as f64 / parts[i].rate_kbps;
            rec(parts, delta_kb, budget - phi, i + 1, acc + t, best);
        }
    }
    let mut best = 0.0;
    rec(parts, delta_kb, budget, 0, 0.0, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CrossLayerModels, EmaCost};
    use crate::ema::{objective, slot_users, solve_dp};
    use crate::ema_fast::solve_greedy;
    use crate::lyapunov::VirtualQueues;
    use jmso_gateway::{SlotContext, UserSnapshot};
    use jmso_radio::rrc::RrcState;
    use jmso_radio::Dbm;

    fn user(id: usize, sig: f64, rate: f64, link_cap: u64) -> UserSnapshot {
        UserSnapshot {
            id,
            signal: Dbm(sig),
            rate_kbps: rate,
            buffer_s: 0.0,
            remaining_kb: 1e9,
            active: true,
            link_cap_units: link_cap,
            idle_s: 0.0,
            rrc_state: RrcState::Dch,
        }
    }

    #[test]
    fn oracle_agrees_with_dp_and_greedy() {
        let users = vec![
            user(0, -95.0, 300.0, 4),
            user(1, -65.0, 550.0, 5),
            user(2, -80.0, 420.0, 3),
        ];
        let ctx = SlotContext {
            slot: 0,
            tau: 1.0,
            delta_kb: 50.0,
            bs_cap_units: 7,
            users: &users,
            soa: None,
        };
        let models = CrossLayerModels::paper();
        let cost = EmaCost::new(1.5, &models, &ctx);
        let mut q = VirtualQueues::new(3);
        q.update(0, 1.0, 0.0);
        q.update(1, 1.0, 2.5);
        q.update(2, 1.0, 0.2);
        let parts = slot_users(&cost, &ctx, &q);
        let (oracle_alloc, oracle_obj) = solve_exhaustive(&parts, 7);
        assert!(oracle_alloc.iter().sum::<u64>() <= 7);
        let dp = solve_dp(&parts, 7);
        let fast = solve_greedy(&parts, 7);
        assert!((objective(&parts, &dp) - oracle_obj).abs() < 1e-9);
        assert!((objective(&parts, &fast) - oracle_obj).abs() < 1e-9);
    }

    #[test]
    fn max_playback_prefers_low_rate_users() {
        // Budget 2, user 0 at 300 KB/s, user 1 at 600 KB/s: each unit on
        // user 0 is worth twice the playback time.
        let users = vec![user(0, -70.0, 300.0, 2), user(1, -70.0, 600.0, 2)];
        let ctx = SlotContext {
            slot: 0,
            tau: 1.0,
            delta_kb: 50.0,
            bs_cap_units: 2,
            users: &users,
            soa: None,
        };
        let models = CrossLayerModels::paper();
        let cost = EmaCost::new(1.0, &models, &ctx);
        let q = VirtualQueues::new(2);
        let parts = slot_users(&cost, &ctx, &q);
        let best = max_playback_exhaustive(&parts, 50.0, 2);
        // Both units to user 0: 2·50/300 = 1/3 s.
        assert!((best - 100.0 / 300.0).abs() < 1e-12);
    }

    #[test]
    fn empty_instance() {
        let (alloc, obj) = solve_exhaustive(&[], 5);
        assert!(alloc.is_empty());
        assert_eq!(obj, 0.0);
    }
}
