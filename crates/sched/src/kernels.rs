//! Autovectorization-pinned batch kernels over the [`SnapshotSoA`] columns.
//!
//! ROADMAP item 2's SIMD remainder: the sched dense passes that touch one
//! or two SoA columns per user — RTMA's need/cap clamp and the Eq. (12)
//! signal-threshold admission mask — get explicit batch entry points here,
//! in the same shape as the radio crate's `throughput_into` /
//! `power_per_kb_into` kernels. Each batch function is a branch-light
//! tight loop over contiguous slices whose per-element core is a shared
//! `#[inline(always)]` function also called by the scalar path, so batch
//! and scalar are **bit-identical by construction** (pinned by the
//! `*_matches_scalar_bitwise` tests below, and end-to-end by the golden
//! traces).
//!
//! The kernels are written for auto-vectorization on stable Rust (no
//! `std::simd`): `u64::max`/`u64::min` lower to vector `pmax`/`pmin`, the
//! `ceiling == 0` select and the `>=` compare lower to vector compares +
//! blends, and every loop is a straight `zip` over equal-length slices
//! with the length equality asserted up front so bounds checks vanish.
//!
//! [`SnapshotSoA`]: jmso_gateway::SnapshotSoA

use crate::threshold::SignalThreshold;

/// Per-element core of [`tranche_clamp_into`]: the one-sweep RTMA grant
/// cap `min(max(need, 1), ceiling)`. Clamping by the static ceiling here
/// is exact because the sweep re-clamps by the *remaining* headroom
/// `(ceiling − alloc).min(budget) ≤ ceiling`, and `min` is idempotent
/// under a looser bound — so hoisting the clamp out of the sweep changes
/// no grant.
#[inline(always)]
pub fn tranche_at(need: u64, ceiling: u64) -> u64 {
    need.max(1).min(ceiling)
}

/// Batch need/cap clamp: `out[i] = min(max(need[i], 1), ceiling[i])`, the
/// per-sweep tranche size of RTMA Steps 8–12 precomputed for the whole
/// population in one vectorizable pass instead of twice per user per
/// sweep.
///
/// # Panics
/// If `need` and `ceiling` differ in length.
pub fn tranche_clamp_into(need: &[u64], ceiling: &[u64], out: &mut Vec<u64>) {
    assert_eq!(
        need.len(),
        ceiling.len(),
        "batch kernel slice length mismatch"
    );
    out.clear();
    out.extend(need.iter().zip(ceiling).map(|(&n, &c)| tranche_at(n, c)));
}

/// Per-element core of [`demand_mask_into`]: a user's outstanding per-slot
/// demand for the queue view — raw need masked to zero when the ceiling is
/// zero (fetch complete or link down), so exported queue values never leak
/// stale rate snapshots for finished users.
#[inline(always)]
pub fn demand_at(need: u64, ceiling: u64) -> f64 {
    if ceiling == 0 {
        0.0
    } else {
        need as f64
    }
}

/// Batch demand mask: `out[i] = demand_at(need[i], ceiling[i])` — the
/// `queue_values` column RTMA exports, built in one select-and-convert
/// pass over the two SoA-derived columns.
///
/// # Panics
/// If `need` and `ceiling` differ in length.
pub fn demand_mask_into(need: &[u64], ceiling: &[u64], out: &mut Vec<f64>) {
    assert_eq!(
        need.len(),
        ceiling.len(),
        "batch kernel slice length mismatch"
    );
    out.clear();
    out.extend(need.iter().zip(ceiling).map(|(&n, &c)| demand_at(n, c)));
}

/// Batch Eq. (12) admission mask: `out[i] = threshold.allows(signal[i])`
/// evaluated over the contiguous `signal_dbm` column. RTMA's tranche
/// sweep re-reads the admission verdict for every user on every sweep;
/// precomputing the mask turns those repeated float compares into `bool`
/// loads, and the dense compare pass itself vectorizes.
///
/// [`SignalThreshold::allows`] routes through the same [`admit_at`] core,
/// so mask entries equal the scalar verdicts bit-for-bit (including the
/// `NaN ⇒ deny` and `min_dbm = ±∞` edge cases of the raw `>=`).
pub fn admit_mask_into(signal_dbm: &[f64], threshold: SignalThreshold, out: &mut Vec<bool>) {
    out.clear();
    out.extend(signal_dbm.iter().map(|&s| admit_at(s, threshold.min_dbm)));
}

/// Per-element core of [`admit_mask_into`] and scalar
/// [`SignalThreshold::allows`]: the raw IEEE-754 `>=` (deny on NaN, admit
/// everything when `min_dbm = −∞`, nothing when `+∞`).
#[inline(always)]
pub fn admit_at(signal_dbm: f64, min_dbm: f64) -> bool {
    signal_dbm >= min_dbm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tranche_clamp_matches_scalar_bitwise() {
        // Exercise need = 0 (max(·,1) floor), ceiling = 0 (full mask),
        // need > ceiling (clamp binds), and large values.
        let need: Vec<u64> = (0..257).map(|i| (i * 7) % 23).collect();
        let ceiling: Vec<u64> = (0..257).map(|i| (i * 5) % 17).collect();
        let mut out = Vec::new();
        tranche_clamp_into(&need, &ceiling, &mut out);
        assert_eq!(out.len(), need.len());
        for i in 0..need.len() {
            assert_eq!(out[i], need[i].max(1).min(ceiling[i]), "row {i}");
            assert_eq!(out[i], tranche_at(need[i], ceiling[i]), "row {i}");
        }
    }

    #[test]
    fn tranche_clamp_never_exceeds_ceiling() {
        let need = vec![u64::MAX, 0, 9];
        let ceiling = vec![4, 0, 100];
        let mut out = Vec::new();
        tranche_clamp_into(&need, &ceiling, &mut out);
        assert_eq!(out, vec![4, 0, 9]);
    }

    #[test]
    fn demand_mask_matches_scalar_bitwise() {
        let need: Vec<u64> = (0..257).map(|i| i * 3).collect();
        let ceiling: Vec<u64> = (0..257).map(|i| i % 4).collect();
        let mut out = Vec::new();
        demand_mask_into(&need, &ceiling, &mut out);
        for i in 0..need.len() {
            let scalar = if ceiling[i] == 0 { 0.0 } else { need[i] as f64 };
            assert_eq!(out[i].to_bits(), scalar.to_bits(), "row {i}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn batch_rejects_length_mismatch() {
        let mut out = Vec::new();
        tranche_clamp_into(&[1, 2], &[3], &mut out);
    }

    #[test]
    fn admit_mask_matches_scalar_allows_bitwise() {
        use jmso_radio::Dbm;
        let sigs: Vec<f64> = (0..257)
            .map(|i| -130.0 + i as f64 * 0.37)
            .chain([f64::NAN, f64::NEG_INFINITY, f64::INFINITY])
            .collect();
        for min_dbm in [-80.0, f64::NEG_INFINITY, f64::INFINITY] {
            let t = SignalThreshold { min_dbm };
            let mut mask = Vec::new();
            admit_mask_into(&sigs, t, &mut mask);
            assert_eq!(mask.len(), sigs.len());
            for (i, &s) in sigs.iter().enumerate() {
                assert_eq!(mask[i], t.allows(Dbm(s)), "row {i} min {min_dbm}");
            }
        }
    }

    #[test]
    fn nan_signal_is_denied_even_by_allow_all() {
        let t = SignalThreshold::allow_all();
        let mut mask = Vec::new();
        admit_mask_into(&[f64::NAN], t, &mut mask);
        assert!(!mask[0], "NaN must never be admitted");
    }
}
