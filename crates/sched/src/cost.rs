//! The per-slot EMA objective `f(i, φᵢ(n))` (Eq. (22)) and the cross-layer
//! model bundle the schedulers price decisions with.
//!
//! After the Lyapunov transformation the per-slot problem is
//!
//! ```text
//! min Σᵢ f(i, φᵢ)   s.t.  φᵢ ≤ capᵢ (Eq. 1),  Σφᵢ ≤ C (Eq. 2)
//!
//! f(i, φ) = V·Eᵢ(n, φ) + PCᵢ(n)·(τ − δφ/pᵢ)
//! Eᵢ(n, φ) = P(sigᵢ)·δφ           if φ ≥ 1   (Eq. 3)
//!          = E_tail(idle+τ) − E_tail(idle)   if φ = 0   (Eq. 4/5)
//! ```
//!
//! For φ ≥ 1 the cost is affine in φ with slope
//! `s = δ·(V·P(sigᵢ) − PCᵢ/pᵢ)`, and the marginal of the first unit is
//! `s − V·E_tail_slot ≤ s`; each user's cost is therefore **convex** in φ,
//! which is the fact [`crate::ema_fast`] exploits and [`crate::oracle`]
//! cross-checks.

use jmso_gateway::{SlotContext, UserSnapshot};
use jmso_radio::rrc::tail_energy_between;
use jmso_radio::{Dbm, LinearRssiThroughput, PowerModel, RrcConfig, RssiPowerModel};
use serde::{Deserialize, Serialize};

/// How `f(i, 0)` prices the tail energy of an idle slot.
///
/// The literal Eq. (5) charges an idle slot the *incremental* tail
/// `E_tail(idle+τ) − E_tail(idle)` — 733 mJ for the first idle slot under
/// the paper's 3G parameters. Since one 50 KB frame costs only 10–230 mJ,
/// a myopic per-slot optimizer then **always** prefers a token
/// transmission over idling ("trickle"), keeping the radio in DCH
/// permanently and transmitting signal-blindly. Amortizing the tail over
/// the gap it actually starts (`h` slots) restores the bursty,
/// good-signal-seeking behaviour the paper reports for EMA (§VI-B,
/// Fig. 7) while keeping the decision tail-aware; see EXPERIMENTS.md for
/// the A/B measurement.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq, Default)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum TailPricing {
    /// Literal Eq. (5): one slot's incremental tail.
    #[default]
    PerSlot,
    /// The tail of an `horizon_slots`-slot gap, amortized per slot.
    Amortized {
        /// Gap length the tail is amortized over.
        horizon_slots: u32,
    },
}

impl TailPricing {
    /// The default used by the figure harness (a typical inter-burst gap;
    /// the tail saturates after ~8 slots, so 20 amortizes it fully).
    pub fn amortized_default() -> Self {
        TailPricing::Amortized { horizon_slots: 20 }
    }
}

/// The cross-layer models a scheduler prices decisions with: the
/// throughput fit, the power fit and the RRC (tail-energy) parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct CrossLayerModels {
    /// RSSI → throughput fit `v(sig)`.
    pub throughput: LinearRssiThroughput,
    /// RSSI → power fit `P(sig)`.
    pub power: RssiPowerModel,
    /// RRC state machine parameters (tail energy).
    pub rrc: RrcConfig,
}

impl CrossLayerModels {
    /// The paper's §VI parameterisation (Eq. (24) fits, 3G RRC from \[29\]).
    pub fn paper() -> Self {
        Self {
            throughput: LinearRssiThroughput::paper(),
            power: RssiPowerModel::paper(),
            rrc: RrcConfig::umts_3g(),
        }
    }
}

impl Default for CrossLayerModels {
    fn default() -> Self {
        Self::paper()
    }
}

/// Evaluator for `f(i, φ)` given one slot's context and queue values.
#[derive(Debug, Clone, Copy)]
pub struct EmaCost<'a> {
    /// Lyapunov penalty weight `V` (larger = more energy saving).
    pub v: f64,
    /// Cross-layer models.
    pub models: &'a CrossLayerModels,
    /// Slot length τ.
    pub tau: f64,
    /// Frame length δ in KB.
    pub delta_kb: f64,
    /// How φ = 0 is priced.
    pub tail_pricing: TailPricing,
}

impl<'a> EmaCost<'a> {
    /// Build from a slot context with the literal Eq. (5) tail pricing.
    pub fn new(v: f64, models: &'a CrossLayerModels, ctx: &SlotContext) -> Self {
        Self::with_pricing(v, models, ctx, TailPricing::PerSlot)
    }

    /// Build with an explicit tail pricing.
    pub fn with_pricing(
        v: f64,
        models: &'a CrossLayerModels,
        ctx: &SlotContext,
        tail_pricing: TailPricing,
    ) -> Self {
        Self {
            v,
            models,
            tau: ctx.tau,
            delta_kb: ctx.delta_kb,
            tail_pricing,
        }
    }

    /// The priced cost of one more idle slot given the radio's idle time
    /// (the field-level core shared by the AoS and SoA entry points, so
    /// the two are bit-identical by construction).
    pub fn idle_slot_energy_at(&self, idle_s: f64) -> f64 {
        match self.tail_pricing {
            TailPricing::PerSlot => {
                tail_energy_between(&self.models.rrc, idle_s, idle_s + self.tau).value()
            }
            TailPricing::Amortized { horizon_slots } => {
                let h = horizon_slots.max(1) as f64;
                tail_energy_between(&self.models.rrc, idle_s, idle_s + h * self.tau).value() / h
            }
        }
    }

    /// The priced cost of idling this user for one more slot (φ = 0).
    pub fn idle_slot_energy(&self, user: &UserSnapshot) -> f64 {
        self.idle_slot_energy_at(user.idle_s)
    }

    /// Transmission energy for `units` frames at signal `sig` (Eq. (3);
    /// field-level core).
    pub fn transmission_energy_at(&self, sig: Dbm, units: u64) -> f64 {
        self.models
            .power
            .transmission_energy(sig, self.delta_kb * units as f64)
            .value()
    }

    /// Transmission energy for `units` frames (Eq. (3)).
    pub fn transmission_energy(&self, user: &UserSnapshot, units: u64) -> f64 {
        self.transmission_energy_at(user.signal, units)
    }

    /// `f(i, φ)` from the three fields it depends on (field-level core).
    pub fn f_at(&self, sig: Dbm, rate_kbps: f64, idle_s: f64, pc: f64, units: u64) -> f64 {
        let energy = if units == 0 {
            self.idle_slot_energy_at(idle_s)
        } else {
            self.transmission_energy_at(sig, units)
        };
        let t_i = self.delta_kb * units as f64 / rate_kbps;
        self.v * energy + pc * (self.tau - t_i)
    }

    /// `f(i, φ)` for user `user` with virtual queue `pc` (Eq. (22)).
    pub fn f(&self, user: &UserSnapshot, pc: f64, units: u64) -> f64 {
        self.f_at(user.signal, user.rate_kbps, user.idle_s, pc, units)
    }

    /// Slope of `f` in φ for φ ≥ 1 from its fields (field-level core).
    pub fn slope_at(&self, sig: Dbm, rate_kbps: f64, pc: f64) -> f64 {
        let p_kb = self.models.power.energy_per_kb(sig);
        self.delta_kb * (self.v * p_kb - pc / rate_kbps)
    }

    /// Slope of `f` in φ for φ ≥ 1: `s = δ·(V·P(sig) − PC/p)`.
    pub fn slope(&self, user: &UserSnapshot, pc: f64) -> f64 {
        self.slope_at(user.signal, user.rate_kbps, pc)
    }

    /// Marginal cost of the first unit: `f(1) − f(0) = slope − V·E_tail_slot`.
    pub fn first_unit_marginal(&self, user: &UserSnapshot, pc: f64) -> f64 {
        self.slope(user, pc) - self.v * self.idle_slot_energy(user)
    }

    /// The three cost curves `(f0, f1, slope)` of one user in a single
    /// evaluation — the per-element kernel the batch pass
    /// ([`EmaCost::curves_into`]) and the scalar builders share, so both
    /// are bit-identical by construction (the PR 5 batch-kernel
    /// discipline).
    ///
    /// Every arithmetic expression below replays [`EmaCost::f_at`] /
    /// [`EmaCost::slope_at`] operation-for-operation (`φ = 0` keeps the
    /// literal `δ·0/p` term, `φ = 1` the literal `δ·1` factors), except
    /// that the power fit `P(sig)` is evaluated once and shared between
    /// `f1` and `slope` — a pure function of `sig`, so the shared value
    /// is the same f64 both call sites would have produced.
    #[inline(always)]
    pub fn curves_at(&self, sig: Dbm, rate_kbps: f64, idle_s: f64, pc: f64) -> (f64, f64, f64) {
        let p_kb = self.models.power.energy_per_kb(sig);
        // f(0): idle-tail energy, zero playback delivered.
        let e0 = self.idle_slot_energy_at(idle_s);
        let t0 = self.delta_kb * 0.0 / rate_kbps;
        let f0 = self.v * e0 + pc * (self.tau - t0);
        // f(1): one δ-frame of transmission energy and playback.
        let e1 = p_kb * (self.delta_kb * 1.0);
        let t1 = self.delta_kb * 1.0 / rate_kbps;
        let f1 = self.v * e1 + pc * (self.tau - t1);
        // Affine slope for φ ≥ 1.
        let slope = self.delta_kb * (self.v * p_kb - pc / rate_kbps);
        (f0, f1, slope)
    }

    /// [`EmaCost::curves_at`] for an AoS snapshot row.
    #[inline]
    pub fn curves(&self, user: &UserSnapshot, pc: f64) -> (f64, f64, f64) {
        self.curves_at(user.signal, user.rate_kbps, user.idle_s, pc)
    }

    /// Batch form of [`EmaCost::curves_at`]: fill the `f0`/`f1`/`slope`
    /// columns of `out` from the [`SnapshotSoA`]-style input columns in
    /// one dense pass (`out` is resized to match). Row `i` of the output
    /// is exactly `curves_at(Dbm(signal_dbm[i]), rate_kbps[i], idle_s[i],
    /// pc[i])` — the batch loop *is* the per-element kernel, so batch ≡
    /// scalar bit-identical by construction.
    ///
    /// [`SnapshotSoA`]: jmso_gateway::SnapshotSoA
    ///
    /// # Panics
    /// If the input columns differ in length.
    pub fn curves_into(
        &self,
        signal_dbm: &[f64],
        rate_kbps: &[f64],
        idle_s: &[f64],
        pc: &[f64],
        out: &mut CurveColumns,
    ) {
        let n = signal_dbm.len();
        assert_eq!(rate_kbps.len(), n, "batch curve column length mismatch");
        assert_eq!(idle_s.len(), n, "batch curve column length mismatch");
        assert_eq!(pc.len(), n, "batch curve column length mismatch");
        out.resize(n);
        for i in 0..n {
            let (f0, f1, slope) =
                self.curves_at(Dbm(signal_dbm[i]), rate_kbps[i], idle_s[i], pc[i]);
            out.f0[i] = f0;
            out.f1[i] = f1;
            out.slope[i] = slope;
        }
    }
}

/// Reusable output columns for [`EmaCost::curves_into`], owned by the EMA
/// policies so the batch costing pass allocates nothing in steady state.
#[derive(Debug, Clone, Default)]
pub struct CurveColumns {
    /// `f(i, 0)` per row.
    pub f0: Vec<f64>,
    /// `f(i, 1)` per row.
    pub f1: Vec<f64>,
    /// `f(i, φ+1) − f(i, φ)` for φ ≥ 1, per row.
    pub slope: Vec<f64>,
}

impl CurveColumns {
    /// Resize every column to `n` rows.
    pub fn resize(&mut self, n: usize) {
        self.f0.resize(n, 0.0);
        self.f1.resize(n, 0.0);
        self.slope.resize(n, 0.0);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.f0.len()
    }

    /// True when no rows are held.
    pub fn is_empty(&self) -> bool {
        self.f0.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmso_radio::rrc::RrcState;
    use jmso_radio::Dbm;

    fn user(sig: f64, rate: f64, idle: f64) -> UserSnapshot {
        UserSnapshot {
            id: 0,
            signal: Dbm(sig),
            rate_kbps: rate,
            buffer_s: 0.0,
            remaining_kb: 1e9,
            active: true,
            link_cap_units: 100,
            idle_s: idle,
            rrc_state: RrcState::Dch,
        }
    }

    fn cost(models: &CrossLayerModels) -> EmaCost<'_> {
        EmaCost {
            v: 2.0,
            models,
            tau: 1.0,
            delta_kb: 50.0,
            tail_pricing: TailPricing::PerSlot,
        }
    }

    #[test]
    fn f_matches_hand_computation() {
        let m = CrossLayerModels::paper();
        let c = cost(&m);
        let u = user(-80.0, 500.0, 0.0);
        let pc = 3.0;
        // φ = 4: E = P(−80)·200 KB; t = 200/500 = 0.4 s.
        let p_kb = -0.167 + 1560.0 / 2303.0;
        let expect = 2.0 * p_kb * 200.0 + 3.0 * (1.0 - 0.4);
        assert!((c.f(&u, pc, 4) - expect).abs() < 1e-9);
    }

    #[test]
    fn f_at_zero_prices_tail() {
        let m = CrossLayerModels::paper();
        let c = cost(&m);
        let u = user(-80.0, 500.0, 0.0);
        // Fresh transmitter: next idle second costs Pd·1 = 732.83 mJ.
        let expect = 2.0 * 732.83 + 5.0 * 1.0;
        assert!((c.f(&u, 5.0, 0) - expect).abs() < 1e-6);
        // Deep in the tail it costs nothing.
        let u_idle = user(-80.0, 500.0, 100.0);
        assert!((c.f(&u_idle, 5.0, 0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn slope_is_f_difference() {
        let m = CrossLayerModels::paper();
        let c = cost(&m);
        let u = user(-72.0, 420.0, 2.0);
        let pc = -4.0;
        let s = c.slope(&u, pc);
        for phi in 1..6 {
            let diff = c.f(&u, pc, phi + 1) - c.f(&u, pc, phi);
            assert!((diff - s).abs() < 1e-9, "φ={phi}");
        }
    }

    #[test]
    fn first_unit_marginal_matches() {
        let m = CrossLayerModels::paper();
        let c = cost(&m);
        let u = user(-90.0, 350.0, 1.0);
        let pc = 7.0;
        let m1 = c.first_unit_marginal(&u, pc);
        assert!((m1 - (c.f(&u, pc, 1) - c.f(&u, pc, 0))).abs() < 1e-9);
    }

    #[test]
    fn convexity_first_marginal_below_slope() {
        let m = CrossLayerModels::paper();
        let c = cost(&m);
        for sig in [-110.0, -80.0, -50.0] {
            for idle in [0.0, 2.0, 10.0] {
                for pc in [-10.0, 0.0, 10.0] {
                    let u = user(sig, 450.0, idle);
                    assert!(c.first_unit_marginal(&u, pc) <= c.slope(&u, pc) + 1e-12);
                }
            }
        }
    }

    /// The shared curve kernel reproduces the three scalar evaluators
    /// bit-for-bit across signal/rate/idle/pc grids, including degenerate
    /// sub-floor signals — the contract that lets the batch pass replace
    /// the per-user scalar construction without perturbing a golden byte.
    #[test]
    fn curve_kernel_matches_scalar_bitwise() {
        let m = CrossLayerModels::paper();
        for pricing in [TailPricing::PerSlot, TailPricing::amortized_default()] {
            let c = EmaCost {
                v: 0.7,
                models: &m,
                tau: 1.0,
                delta_kb: 50.0,
                tail_pricing: pricing,
            };
            for sig in [-140.0, -110.0, -85.3, -50.0, -10.0] {
                for rate in [300.0, 417.5, 600.0] {
                    for idle in [0.0, 0.5, 3.7, 100.0] {
                        for pc in [-12.5, -0.0, 0.0, 3.25, 40.0] {
                            let u = user(sig, rate, idle);
                            let (f0, f1, slope) = c.curves_at(Dbm(sig), rate, idle, pc);
                            assert_eq!(f0.to_bits(), c.f(&u, pc, 0).to_bits());
                            assert_eq!(f1.to_bits(), c.f(&u, pc, 1).to_bits());
                            assert_eq!(slope.to_bits(), c.slope(&u, pc).to_bits());
                        }
                    }
                }
            }
        }
    }

    /// Batch columns equal the per-element kernel row-for-row (and the
    /// output buffer resizes to match shrinking inputs).
    #[test]
    fn batch_curves_match_kernel_rows() {
        let m = CrossLayerModels::paper();
        let c = cost(&m);
        let n = 37;
        let sig: Vec<f64> = (0..n).map(|i| -115.0 + 1.7 * i as f64).collect();
        let rate: Vec<f64> = (0..n).map(|i| 300.0 + 8.0 * i as f64).collect();
        let idle: Vec<f64> = (0..n).map(|i| 0.3 * i as f64).collect();
        let pc: Vec<f64> = (0..n).map(|i| -10.0 + 0.7 * i as f64).collect();
        let mut cols = CurveColumns::default();
        c.curves_into(&sig, &rate, &idle, &pc, &mut cols);
        assert_eq!(cols.len(), n);
        for i in 0..n {
            let (f0, f1, slope) = c.curves_at(Dbm(sig[i]), rate[i], idle[i], pc[i]);
            assert_eq!(cols.f0[i].to_bits(), f0.to_bits(), "row {i}");
            assert_eq!(cols.f1[i].to_bits(), f1.to_bits(), "row {i}");
            assert_eq!(cols.slope[i].to_bits(), slope.to_bits(), "row {i}");
        }
        c.curves_into(&sig[..3], &rate[..3], &idle[..3], &pc[..3], &mut cols);
        assert_eq!(cols.len(), 3);
        assert!(!cols.is_empty());
    }

    #[test]
    fn large_pc_makes_data_attractive() {
        // A starved user (large positive PC) should have negative slope —
        // allocating reduces the objective.
        let m = CrossLayerModels::paper();
        let c = cost(&m);
        let u = user(-80.0, 450.0, 0.0);
        assert!(c.slope(&u, 1e4) < 0.0);
        // A well-fed user (negative PC) has positive slope.
        assert!(c.slope(&u, -1e4) > 0.0);
    }
}
