//! Scratch-reuse regression tests: every scheduler keeps per-slot scratch
//! buffers (RTMA's order/need/ceiling, EMA's DP rows and virtual queues)
//! that are reused across slots for the zero-allocation hot path. A
//! scheduler that has been driven on one population shape must behave
//! exactly like a freshly built one when the context shape changes —
//! stale scratch from the larger population must never leak into the
//! smaller one's allocations or exported queue values.

use jmso_gateway::{Allocation, Scheduler, SlotContext, UserSnapshot};
use jmso_radio::rrc::RrcState;
use jmso_radio::Dbm;
use jmso_sched::{CrossLayerModels, Ema, EmaFast, Rtma};

/// Deterministic, slot-varying synthetic population: signals wander over
/// the paper's [−110, −50] dBm band and rates over 300–600 KB/s.
fn users(n: usize, slot: u64) -> Vec<UserSnapshot> {
    (0..n)
        .map(|id| {
            let k = slot as usize * 31 + id * 17;
            UserSnapshot {
                id,
                signal: Dbm(-50.0 - (k % 61) as f64),
                rate_kbps: 300.0 + (k % 301) as f64,
                buffer_s: (k % 7) as f64,
                remaining_kb: if k.is_multiple_of(5) { 0.0 } else { 10_000.0 },
                active: !k.is_multiple_of(5),
                link_cap_units: 5 + (k % 40) as u64,
                idle_s: 0.0,
                rrc_state: if k.is_multiple_of(2) {
                    RrcState::Dch
                } else {
                    RrcState::Idle
                },
            }
        })
        .collect()
}

/// Drive `sched` through `slots` slots of an `n`-user population,
/// returning every allocation and exported queue snapshot.
fn drive<S: Scheduler>(
    sched: &mut S,
    n: usize,
    slots: u64,
    slot_offset: u64,
) -> Vec<(Vec<u64>, Option<Vec<f64>>)> {
    let mut out = Vec::new();
    let mut alloc = Allocation::zeros(0);
    for slot in 0..slots {
        let snapshot = users(n, slot + slot_offset);
        let ctx = SlotContext {
            slot: slot + slot_offset,
            tau: 1.0,
            delta_kb: 50.0,
            bs_cap_units: 4 * n as u64,
            users: &snapshot,
            soa: None,
        };
        sched.allocate_into(&ctx, &mut alloc);
        alloc.validate(&ctx).expect("allocation within bounds");
        out.push((alloc.0.clone(), sched.queue_values().map(<[f64]>::to_vec)));
    }
    out
}

/// Warm a scheduler on 12 users, then switch to 4-user contexts and
/// compare slot-for-slot against a fresh instance that only ever saw the
/// 4-user population.
fn assert_shape_change_clean<S: Scheduler>(mut dirty: S, mut fresh: S) {
    drive(&mut dirty, 12, 5, 0);
    let after_shrink = drive(&mut dirty, 4, 8, 100);
    let from_fresh = drive(&mut fresh, 4, 8, 100);
    assert_eq!(after_shrink, from_fresh, "stale 12-user scratch leaked");
    for (alloc, q) in &after_shrink {
        assert_eq!(alloc.len(), 4);
        if let Some(q) = q {
            assert_eq!(q.len(), 4, "queue export kept the old shape");
        }
    }
}

#[test]
fn rtma_shape_change_is_clean() {
    assert_shape_change_clean(Rtma::unbounded(), Rtma::unbounded());
}

#[test]
fn ema_dp_shape_change_is_clean() {
    let m = CrossLayerModels::paper;
    assert_shape_change_clean(Ema::new(1.0, m()), Ema::new(1.0, m()));
}

#[test]
fn ema_fast_shape_change_is_clean() {
    let m = CrossLayerModels::paper;
    assert_shape_change_clean(EmaFast::new(1.0, m()), EmaFast::new(1.0, m()));
}

/// RTMA's exported queue view masks users with a zero grant ceiling
/// (fetch complete or link down): their raw per-slot need is meaningless
/// demand, and masking keeps the export independent of stale rate
/// snapshots for finished users.
#[test]
fn rtma_queue_export_masks_finished_users() {
    let mut snapshot = users(6, 3);
    snapshot[2].remaining_kb = 0.0;
    snapshot[2].active = false;
    snapshot[4].link_cap_units = 0;
    let ctx = SlotContext {
        slot: 0,
        tau: 1.0,
        delta_kb: 50.0,
        bs_cap_units: 24,
        users: &snapshot,
        soa: None,
    };
    let mut r = Rtma::unbounded();
    let mut alloc = Allocation::zeros(0);
    r.allocate_into(&ctx, &mut alloc);
    let q = r
        .queue_values()
        .expect("RTMA exports queue values")
        .to_vec();
    assert_eq!(q.len(), 6);
    assert_eq!(q[2], 0.0, "finished user must report zero demand");
    assert_eq!(q[4], 0.0, "capped-out user must report zero demand");
    for (i, &v) in q.iter().enumerate() {
        if i != 2 && i != 4 && snapshot[i].remaining_kb > 0.0 {
            assert!(v > 0.0, "live user {i} should report demand");
        }
    }
}
