//! Property-based tests for the schedulers.
//!
//! The load-bearing property is three-way agreement on EMA's per-slot
//! problem: the paper's Algorithm 2 DP, our exact slope-greedy, and
//! brute-force enumeration must produce identical objective values on
//! random instances.

use jmso_gateway::{Allocation, Scheduler, SlotContext, SnapshotSoA, UserSnapshot};
use jmso_radio::rrc::RrcState;
use jmso_radio::Dbm;
use jmso_sched::ema::{objective, slot_users, solve_dp, solve_dp_reference};
use jmso_sched::ema_fast::solve_greedy;
use jmso_sched::oracle::solve_exhaustive;
use jmso_sched::{
    CrossLayerModels, DefaultMax, EStreamer, Ema, EmaCost, EmaFast, OnOff, ProportionalFair,
    RoundRobin, Rtma, Salsa, SchedulerSpec, SignalThreshold, Throttling, VirtualQueues,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandUser {
    sig: f64,
    rate: f64,
    link_cap: u64,
    idle: f64,
    remaining_kb: f64,
    pc: f64,
}

fn arb_user() -> impl Strategy<Value = RandUser> {
    (
        -110.0f64..-50.0,
        300.0f64..600.0,
        0u64..10,
        0.0f64..10.0,
        0.0f64..5000.0,
        -20.0f64..20.0,
    )
        .prop_map(|(sig, rate, link_cap, idle, remaining_kb, pc)| RandUser {
            sig,
            rate,
            link_cap,
            idle,
            remaining_kb,
            pc,
        })
}

fn snapshots(users: &[RandUser]) -> Vec<UserSnapshot> {
    users
        .iter()
        .enumerate()
        .map(|(id, u)| UserSnapshot {
            id,
            signal: Dbm(u.sig),
            rate_kbps: u.rate,
            buffer_s: 0.0,
            remaining_kb: u.remaining_kb,
            active: true,
            link_cap_units: u.link_cap,
            idle_s: u.idle,
            rrc_state: RrcState::Dch,
        })
        .collect()
}

proptest! {
    /// DP == greedy == brute force on random tiny instances.
    #[test]
    fn ema_solvers_agree_with_oracle(
        users in proptest::collection::vec(arb_user(), 1..5),
        budget in 0u64..12,
        v in 0.01f64..20.0,
    ) {
        let snaps = snapshots(&users);
        let ctx = SlotContext {
            slot: 0,
            tau: 1.0,
            delta_kb: 50.0,
            bs_cap_units: budget,
            users: &snaps, soa: None,
        };
        let models = CrossLayerModels::paper();
        let cost = EmaCost::new(v, &models, &ctx);
        let mut q = VirtualQueues::new(users.len());
        for (i, u) in users.iter().enumerate() {
            q.update(i, u.pc, 0.0); // sets PCᵢ = pc directly (τ := pc, t := 0)
        }
        let parts = slot_users(&cost, &ctx, &q);
        let (_, oracle_obj) = solve_exhaustive(&parts, budget);
        let dp = solve_dp(&parts, budget);
        let fast = solve_greedy(&parts, budget);
        let dp_obj = objective(&parts, &dp);
        let fast_obj = objective(&parts, &fast);
        prop_assert!((dp_obj - oracle_obj).abs() < 1e-6, "dp {dp_obj} vs oracle {oracle_obj}");
        prop_assert!((fast_obj - oracle_obj).abs() < 1e-6, "fast {fast_obj} vs oracle {oracle_obj}");
        // Feasibility.
        prop_assert!(dp.iter().sum::<u64>() <= budget);
        prop_assert!(fast.iter().sum::<u64>() <= budget);
        for (a, p) in dp.iter().zip(&parts) {
            prop_assert!(*a <= p.cap);
        }
    }

    /// DP == greedy on larger instances (oracle too slow there).
    #[test]
    fn ema_dp_equals_greedy_larger(
        users in proptest::collection::vec(arb_user(), 1..12),
        budget in 0u64..60,
        v in 0.01f64..20.0,
    ) {
        let snaps = snapshots(&users);
        let ctx = SlotContext {
            slot: 0, tau: 1.0, delta_kb: 50.0, bs_cap_units: budget, users: &snaps, soa: None,
        };
        let models = CrossLayerModels::paper();
        let cost = EmaCost::new(v, &models, &ctx);
        let mut q = VirtualQueues::new(users.len());
        for (i, u) in users.iter().enumerate() {
            q.update(i, u.pc, 0.0);
        }
        let parts = slot_users(&cost, &ctx, &q);
        let dp = solve_dp(&parts, budget);
        let fast = solve_greedy(&parts, budget);
        let dp_obj = objective(&parts, &dp);
        let fast_obj = objective(&parts, &fast);
        prop_assert!((dp_obj - fast_obj).abs() < 1e-6, "dp {dp_obj} vs fast {fast_obj}");
    }

    /// Differential test for the monotone-deque DP: on random instances
    /// (P ≤ 8, C ≤ 64) the O(P·C) solver must match the retained naive
    /// O(P·C·φ_max) reference in objective value, and its allocation must
    /// pass `Allocation::validate` against the generating context.
    #[test]
    fn deque_dp_matches_reference(
        users in proptest::collection::vec(arb_user(), 1..9),
        budget in 0u64..65,
        v in 0.01f64..20.0,
    ) {
        let snaps = snapshots(&users);
        let ctx = SlotContext {
            slot: 0, tau: 1.0, delta_kb: 50.0, bs_cap_units: budget, users: &snaps, soa: None,
        };
        let models = CrossLayerModels::paper();
        let cost = EmaCost::new(v, &models, &ctx);
        let mut q = VirtualQueues::new(users.len());
        for (i, u) in users.iter().enumerate() {
            q.update(i, u.pc, 0.0);
        }
        let parts = slot_users(&cost, &ctx, &q);
        let fast = solve_dp(&parts, budget);
        let naive = solve_dp_reference(&parts, budget);
        let fast_obj = objective(&parts, &fast);
        let naive_obj = objective(&parts, &naive);
        prop_assert!(
            (fast_obj - naive_obj).abs() < 1e-9,
            "deque {fast_obj} ({fast:?}) vs reference {naive_obj} ({naive:?})"
        );
        // Scatter into a full per-user allocation and check Eq. (1)/(2).
        let mut alloc = Allocation::zeros(snaps.len());
        for (part, &units) in parts.iter().zip(&fast) {
            alloc.0[part.id] = units;
        }
        prop_assert!(alloc.validate(&ctx).is_ok(), "{:?}", alloc.validate(&ctx));
    }

    /// Every policy produces a feasible allocation on random contexts.
    #[test]
    fn all_policies_feasible(
        users in proptest::collection::vec(arb_user(), 1..20),
        budget in 0u64..200,
        slots in 1u64..12,
    ) {
        let snaps = snapshots(&users);
        let models = CrossLayerModels::paper();
        let mut policies: Vec<Box<dyn Scheduler>> = vec![
            Box::new(DefaultMax::new()),
            Box::new(Rtma::unbounded()),
            Box::new(Rtma::with_threshold(SignalThreshold { min_dbm: -80.0 })),
            Box::new(Ema::new(1.0, models)),
            Box::new(EmaFast::new(1.0, models)),
            Box::new(Throttling::new(1.25)),
            Box::new(OnOff::new(10.0, 40.0)),
            Box::new(Salsa::new(1.0, 3.0, 0.2)),
            Box::new(EStreamer::new(5.0, 60.0)),
            Box::new(RoundRobin::new()),
            Box::new(ProportionalFair::new(0.05)),
        ];
        for pol in policies.iter_mut() {
            for slot in 0..slots {
                let ctx = SlotContext {
                    slot, tau: 1.0, delta_kb: 50.0, bs_cap_units: budget, users: &snaps, soa: None,
                };
                let a = pol.allocate(&ctx);
                prop_assert!(a.validate(&ctx).is_ok(),
                    "{} produced invalid allocation: {:?}", pol.name(), a.validate(&ctx));
            }
        }
    }

    /// RTMA never allocates to users below its threshold, and exhausts
    /// either the budget or every admissible user's ceiling.
    #[test]
    fn rtma_threshold_and_work_conservation(
        users in proptest::collection::vec(arb_user(), 1..15),
        budget in 1u64..150,
        threshold in -110.0f64..-50.0,
    ) {
        let snaps = snapshots(&users);
        let ctx = SlotContext {
            slot: 0, tau: 1.0, delta_kb: 50.0, bs_cap_units: budget, users: &snaps, soa: None,
        };
        let mut r = Rtma::with_threshold(SignalThreshold { min_dbm: threshold });
        let Allocation(a) = r.allocate(&ctx);
        let mut admissible_headroom = 0u64;
        for (u, &got) in snaps.iter().zip(&a) {
            if u.signal.value() < threshold {
                prop_assert_eq!(got, 0, "below-threshold user got data");
            } else {
                admissible_headroom += u.usable_cap_units(50.0) - got;
            }
        }
        let total: u64 = a.iter().sum();
        // Work conservation: either the BS budget is exhausted or every
        // admissible user is at their ceiling.
        prop_assert!(total == budget || admissible_headroom == 0,
            "left {admissible_headroom} headroom with {} budget unused", budget - total);
    }

    /// Scheduler specs build and serde-roundtrip for arbitrary parameters.
    #[test]
    fn spec_roundtrip(phi_raw in 100.0f64..2000.0, v_raw in 0.25f64..50.0) {
        // Snap to an exactly-representable grid: the JSON layer may lose
        // the last ulp of arbitrary doubles.
        let phi = (phi_raw * 4.0).round() / 4.0;
        let v = (v_raw * 4.0).round() / 4.0;
        for spec in [
            SchedulerSpec::rtma(phi),
            SchedulerSpec::ema_dp(v),
            SchedulerSpec::ema_fast(v),
        ] {
            let j = serde_json::to_string(&spec).unwrap();
            let back: SchedulerSpec = serde_json::from_str(&j).unwrap();
            prop_assert_eq!(&back, &spec);
            let _ = spec.build(1.0, &CrossLayerModels::paper());
        }
    }
}

proptest! {
    /// Every policy with an SoA fast path must allocate bit-identically
    /// whether it reads the AoS snapshots or the contiguous SoA mirror —
    /// the contract that lets the engine and multicell loops hand either
    /// representation to any scheduler.
    #[test]
    fn soa_context_allocates_identically_to_aos(
        users in proptest::collection::vec(arb_user(), 1..12),
        budget in 0u64..60,
        inactive_mask in proptest::collection::vec(prop::bool::ANY, 12),
        v in 0.05f64..5.0,
        phi in 700.0f64..1300.0,
    ) {
        let mut snaps = snapshots(&users);
        for (s, &off) in snaps.iter_mut().zip(&inactive_mask) {
            if off {
                // Mirror the engine's retired/roamed rows: no demand, no
                // capacity, inactive.
                s.active = false;
                s.remaining_kb = 0.0;
                s.link_cap_units = 0;
            }
        }
        let mut soa = SnapshotSoA::new();
        soa.fill_from(&snaps, 1.0, 50.0);
        let aos_ctx = SlotContext {
            slot: 0, tau: 1.0, delta_kb: 50.0, bs_cap_units: budget, users: &snaps, soa: None,
        };
        let soa_ctx = SlotContext { soa: Some(&soa), ..aos_ctx };
        let models = CrossLayerModels::paper();
        let build_all = || -> Vec<Box<dyn Scheduler>> {
            vec![
                SchedulerSpec::Default.build(1.0, &models),
                SchedulerSpec::RtmaUnbounded.build(1.0, &models),
                SchedulerSpec::rtma(phi).build(1.0, &models),
                SchedulerSpec::ema_dp(v).build(1.0, &models),
                SchedulerSpec::ema_fast(v).build(1.0, &models),
            ]
        };
        for (mut via_aos, mut via_soa) in build_all().into_iter().zip(build_all()) {
            let a = via_aos.allocate(&aos_ctx);
            let b = via_soa.allocate(&soa_ctx);
            prop_assert_eq!(&a.0, &b.0, "{} diverged between AoS and SoA", via_aos.name());
        }
    }
}

/// Integral-need strategy: rates divisible by δ/τ so ⌈τp/δ⌉ is exact and
/// no tranche unit is partially wasted.
fn arb_integral_rate_user() -> impl Strategy<Value = RandUser> {
    (
        -110.0f64..-50.0,
        6u32..13, // rate = 50·k ∈ [300, 600]
        0u64..12,
    )
        .prop_map(|(sig, k, link_cap)| RandUser {
            sig,
            rate: 50.0 * k as f64,
            link_cap,
            idle: 0.0,
            remaining_kb: 1e9,
            pc: 0.0,
        })
}

proptest! {
    /// The paper's §IV claim: "RTMA is local optimal in one slot without
    /// the energy limitation". With integral needs and empty buffers,
    /// RTMA's allocation achieves exactly the exhaustive minimum of the
    /// Eq. (8) next-slot rebuffering.
    #[test]
    fn rtma_is_locally_optimal_per_slot(
        users in proptest::collection::vec(arb_integral_rate_user(), 1..5),
        budget in 0u64..14,
    ) {
        use jmso_sched::ema::slot_users;
        use jmso_sched::oracle::min_rebuffer_exhaustive;

        let snaps = snapshots(&users);
        let ctx = SlotContext {
            slot: 0, tau: 1.0, delta_kb: 50.0, bs_cap_units: budget, users: &snaps, soa: None,
        };
        let mut rtma = Rtma::unbounded();
        let Allocation(alloc) = rtma.allocate(&ctx);
        let rtma_rebuf: f64 = snaps
            .iter()
            .zip(&alloc)
            .map(|(u, &phi)| (1.0 - 50.0 * phi as f64 / u.rate_kbps).max(0.0))
            .sum();

        let models = CrossLayerModels::paper();
        let cost = EmaCost::new(1.0, &models, &ctx);
        let q = VirtualQueues::new(users.len());
        let parts = slot_users(&cost, &ctx, &q);
        let carry = vec![0.0; parts.len()];
        // Users with zero capacity are excluded from the oracle's search
        // space but still stall a full slot each.
        let unreachable = (users.len() - parts.len()) as f64;
        let best = min_rebuffer_exhaustive(&parts, &carry, 50.0, 1.0, budget) + unreachable;
        prop_assert!(
            rtma_rebuf <= best + 1e-9,
            "RTMA {rtma_rebuf} vs exhaustive optimum {best}"
        );
    }
}
