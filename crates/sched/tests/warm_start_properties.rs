//! Multi-slot properties for the PR 6 solver reductions.
//!
//! `sched_properties.rs` pins single-slot agreement between the DP, the
//! greedy, and brute force. This file pins the *stateful* claims: a
//! warm-started [`solve_dp_with`] driven across many slots — with the
//! scratch (and its input cache) carried over, queues evolving under
//! Eq. (16), pc-clamped regimes, and fault-like per-slot perturbations of
//! the radio inputs — must produce exactly the allocation a cold
//! [`solve_dp_reference`] computes from scratch each slot. It also pins
//! the Lyapunov dominance pruning: a user whose curve marks them
//! dominated receives zero units from both solvers.

use jmso_gateway::{SlotContext, UserSnapshot};
use jmso_radio::rrc::RrcState;
use jmso_radio::Dbm;
use jmso_sched::ema::{
    objective, slot_users, solve_dp_reference, solve_dp_with, DpScratch, SlotUser,
};
use jmso_sched::ema_fast::{solve_greedy_with, GreedyScratch};
use jmso_sched::{CrossLayerModels, EmaCost, VirtualQueues};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandUser {
    sig: f64,
    rate: f64,
    link_cap: u64,
    idle: f64,
    remaining_kb: f64,
}

/// `link_cap` starts at 0, so outage slots (the deepest "fault") are a
/// first-class part of the distribution, not a corner case.
fn arb_user() -> impl Strategy<Value = RandUser> {
    (
        -110.0f64..-50.0,
        300.0f64..600.0,
        0u64..10,
        0.0f64..10.0,
        0.0f64..5000.0,
    )
        .prop_map(|(sig, rate, link_cap, idle, remaining_kb)| RandUser {
            sig,
            rate,
            link_cap,
            idle,
            remaining_kb,
        })
}

fn snapshots(users: &[RandUser]) -> Vec<UserSnapshot> {
    users
        .iter()
        .enumerate()
        .map(|(id, u)| UserSnapshot {
            id,
            signal: Dbm(u.sig),
            rate_kbps: u.rate,
            buffer_s: 0.0,
            remaining_kb: u.remaining_kb,
            active: true,
            link_cap_units: u.link_cap,
            idle_s: u.idle,
            rrc_state: RrcState::Dch,
        })
        .collect()
}

const N_USERS: usize = 6;

proptest! {
    /// Warm-started DP ≡ cold reference, slot by slot, across a run whose
    /// radio inputs are redrawn every slot (fades, outages, draining
    /// videos) while the queues and the solver scratch persist. Each slot
    /// is solved twice through the same scratch, so the warm-start cache
    /// *hit* path (identical inputs → cached allocation) is exercised on
    /// every slot too, and an optional queue clamp runs the pc-clamped
    /// regime end to end.
    #[test]
    fn warm_dp_tracks_cold_reference_across_slots(
        per_slot in proptest::collection::vec(
            proptest::collection::vec(arb_user(), N_USERS),
            1..10,
        ),
        budget in 0u64..40,
        v in 0.01f64..20.0,
        pc_clamp in proptest::option::of(0.5f64..5.0),
    ) {
        let models = CrossLayerModels::paper();
        let mut q = VirtualQueues::new(N_USERS);
        let mut scratch = DpScratch::default();
        for (slot, users) in per_slot.iter().enumerate() {
            let snaps = snapshots(users);
            let ctx = SlotContext {
                slot: slot as u64,
                tau: 1.0,
                delta_kb: 50.0,
                bs_cap_units: budget,
                users: &snaps,
                soa: None,
            };
            let cost = EmaCost::new(v, &models, &ctx);
            let parts = slot_users(&cost, &ctx, &q);
            let warm = solve_dp_with(&parts, budget, &mut scratch).to_vec();
            let cold = solve_dp_reference(&parts, budget);
            prop_assert_eq!(&warm, &cold, "slot {} diverged", slot);
            // Same inputs again: must come back from the cache, unchanged.
            let cached = solve_dp_with(&parts, budget, &mut scratch).to_vec();
            prop_assert_eq!(&cached, &cold, "slot {} cache hit diverged", slot);
            let mut alloc = vec![0u64; N_USERS];
            for (part, units) in parts.iter().zip(&warm) {
                alloc[part.id] = *units;
            }
            q.apply_allocation(&ctx, &alloc);
            if let Some(bound) = pc_clamp {
                for i in 0..N_USERS {
                    q.clamp(i, bound);
                }
            }
        }
    }

    /// Dominance pruning: a user with `f1 − f0 > 0` and `slope ≥ 0`
    /// receives zero units from both solvers, wherever they sit in the
    /// participant list, and neither solver's answer is perturbed away
    /// from the reference by the pruned row.
    #[test]
    fn dominated_user_receives_zero(
        users in proptest::collection::vec(arb_user(), 1..8),
        budget in 0u64..40,
        v in 0.01f64..20.0,
        pcs in proptest::collection::vec(-20.0f64..20.0, 8),
        cap in 1u64..10,
        f0 in -5.0f64..5.0,
        penalty in 1e-9f64..5.0,
        slope in 0.0f64..3.0,
        pos_seed in 0usize..8,
    ) {
        let snaps = snapshots(&users);
        let ctx = SlotContext {
            slot: 0,
            tau: 1.0,
            delta_kb: 50.0,
            bs_cap_units: budget,
            users: &snaps,
            soa: None,
        };
        let models = CrossLayerModels::paper();
        let cost = EmaCost::new(v, &models, &ctx);
        let mut q = VirtualQueues::new(users.len());
        for (i, pc) in pcs.iter().take(users.len()).enumerate() {
            q.update(i, *pc, 0.0);
        }
        let mut parts = slot_users(&cost, &ctx, &q);
        let dominated = SlotUser {
            id: users.len(),
            pc: 0.0,
            cap,
            rate_kbps: 400.0,
            f0,
            f1: f0 + penalty,
            slope,
        };
        let pos = pos_seed % (parts.len() + 1);
        parts.insert(pos, dominated);

        let mut scratch = DpScratch::default();
        let dp = solve_dp_with(&parts, budget, &mut scratch).to_vec();
        let cold = solve_dp_reference(&parts, budget);
        prop_assert_eq!(&dp, &cold);
        prop_assert_eq!(dp[pos], 0, "DP allocated to a dominated user");

        let mut greedy_scratch = GreedyScratch::default();
        let greedy = solve_greedy_with(&parts, budget, &mut greedy_scratch).to_vec();
        prop_assert_eq!(greedy[pos], 0, "greedy allocated to a dominated user");
        let g_obj = objective(&parts, &greedy);
        let ref_obj = objective(&parts, &cold);
        prop_assert!(
            (g_obj - ref_obj).abs() < 1e-6,
            "greedy objective {g_obj} vs reference {ref_obj}"
        );
    }

    /// The pruned greedy stays objective-equal to the reference DP across
    /// a multi-slot run with persistent scratch and evolving queues (the
    /// stateful analogue of `ema_dp_equals_greedy_larger`).
    #[test]
    fn warm_greedy_tracks_reference_objective_across_slots(
        per_slot in proptest::collection::vec(
            proptest::collection::vec(arb_user(), N_USERS),
            1..10,
        ),
        budget in 0u64..40,
        v in 0.01f64..20.0,
    ) {
        let models = CrossLayerModels::paper();
        let mut q = VirtualQueues::new(N_USERS);
        let mut scratch = GreedyScratch::default();
        for (slot, users) in per_slot.iter().enumerate() {
            let snaps = snapshots(users);
            let ctx = SlotContext {
                slot: slot as u64,
                tau: 1.0,
                delta_kb: 50.0,
                bs_cap_units: budget,
                users: &snaps,
                soa: None,
            };
            let cost = EmaCost::new(v, &models, &ctx);
            let parts = slot_users(&cost, &ctx, &q);
            let greedy = solve_greedy_with(&parts, budget, &mut scratch).to_vec();
            let cold = solve_dp_reference(&parts, budget);
            let g_obj = objective(&parts, &greedy);
            let ref_obj = objective(&parts, &cold);
            prop_assert!(
                (g_obj - ref_obj).abs() < 1e-6,
                "slot {slot}: greedy {g_obj} vs reference {ref_obj}"
            );
            prop_assert!(greedy.iter().sum::<u64>() <= budget);
            let mut alloc = vec![0u64; N_USERS];
            for (part, units) in parts.iter().zip(&greedy) {
                alloc[part.id] = *units;
            }
            q.apply_allocation(&ctx, &alloc);
        }
    }
}
