//! Property-based tests for the media substrate.

use jmso_media::{jain_index, Cdf, ClientPlayback, VideoSession};
use proptest::prelude::*;

proptest! {
    /// Buffer invariants under arbitrary delivery patterns: occupancy never
    /// negative, per-slot rebuffering in [0, τ], playback never exceeds Mᵢ,
    /// and watched time + rebuffer time per active slot equals τ (until the
    /// final partial slot).
    #[test]
    fn buffer_invariants(
        tau in 0.25f64..2.5,
        total_s in 5.0f64..50.0,
        deliveries in proptest::collection::vec(0.0f64..400.0, 1..120),
    ) {
        let rate = 100.0;
        let mut c = ClientPlayback::new(total_s, tau);
        for kb in &deliveries {
            let remaining_before = total_s - c.played_s();
            let o = c.begin_slot();
            prop_assert!(o.occupancy_s >= 0.0);
            prop_assert!(o.rebuffer_s >= 0.0 && o.rebuffer_s <= tau + 1e-12);
            prop_assert!(o.watched_s >= 0.0 && o.watched_s <= tau + 1e-12);
            if o.active {
                // Active slot: watch + stall covers exactly the playback
                // still needed this slot (τ, or less at the video end).
                let needed = tau.min(remaining_before);
                prop_assert!((o.watched_s + o.rebuffer_s - needed).abs() < 1e-9);
            }
            prop_assert!(c.played_s() <= total_s + 1e-9);
            c.deliver(*kb, rate);
        }
    }

    /// Playback-time conservation: total watched seconds never exceed the
    /// playback time of delivered data.
    #[test]
    fn watched_bounded_by_delivered(
        deliveries in proptest::collection::vec(0.0f64..300.0, 1..100),
    ) {
        let rate = 150.0;
        let mut c = ClientPlayback::new(1e6, 1.0);
        let mut delivered_s = 0.0;
        let mut watched_s = 0.0;
        for kb in &deliveries {
            let o = c.begin_slot();
            watched_s += o.watched_s;
            prop_assert!(watched_s <= delivered_s + 1e-9,
                "watched {watched_s} > delivered {delivered_s}");
            c.deliver(*kb, rate);
            delivered_s += kb / rate;
        }
    }

    /// Generous steady delivery ⇒ after startup, no further stalls.
    #[test]
    fn ample_supply_never_stalls_after_startup(tau in 0.5f64..2.0, rate in 100.0f64..600.0) {
        let mut c = ClientPlayback::new(1e6, tau);
        let mut stalls_after_start = 0.0;
        for n in 0..200u64 {
            let o = c.begin_slot();
            if n > 1 {
                stalls_after_start += o.rebuffer_s;
            }
            // Deliver exactly 2 slots' worth of playback every slot.
            c.deliver(2.0 * tau * rate, rate);
        }
        prop_assert_eq!(stalls_after_start, 0.0);
    }

    /// Session byte conservation: received never exceeds total; deliver
    /// returns exactly what was accepted.
    #[test]
    fn session_conservation(
        total in 100.0f64..10_000.0,
        chunks in proptest::collection::vec(0.0f64..800.0, 1..60),
    ) {
        let mut s = VideoSession::cbr(total, 400.0);
        let mut accepted_sum = 0.0;
        for kb in &chunks {
            accepted_sum += s.deliver(*kb);
        }
        prop_assert!((s.received_kb() - accepted_sum).abs() < 1e-9);
        prop_assert!(s.received_kb() <= total + 1e-9);
        prop_assert!((s.received_kb() + s.remaining_kb() - total).abs() < 1e-6);
    }

    /// Jain index always lies in [1/n, 1] for non-negative non-zero input.
    #[test]
    fn jain_bounds(values in proptest::collection::vec(0.0f64..100.0, 1..50)) {
        let idx = jain_index(&values);
        let n = values.len() as f64;
        prop_assert!(idx <= 1.0 + 1e-12);
        if values.iter().any(|v| *v > 0.0) {
            prop_assert!(idx >= 1.0 / n - 1e-12);
        }
    }

    /// CDF: fraction_at_or_below is monotone and hits 1 at the max sample.
    #[test]
    fn cdf_monotone(samples in proptest::collection::vec(-1e3f64..1e3, 1..200)) {
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let c = Cdf::new(samples);
        let mut prev = 0.0;
        for i in -10..=10 {
            let x = i as f64 * 100.0;
            let f = c.fraction_at_or_below(x);
            prop_assert!(f >= prev - 1e-12);
            prev = f;
        }
        prop_assert!((c.fraction_at_or_below(max) - 1.0).abs() < 1e-12);
    }

    /// Quantiles are order-consistent.
    #[test]
    fn cdf_quantiles_ordered(samples in proptest::collection::vec(-50.0f64..50.0, 2..100)) {
        let c = Cdf::new(samples);
        prop_assert!(c.quantile(0.25) <= c.quantile(0.5));
        prop_assert!(c.quantile(0.5) <= c.quantile(0.75));
        prop_assert!(c.quantile(0.75) <= c.quantile(1.0));
    }
}
