//! Workload generation — the paper's §VI setup.
//!
//! "The video length that users require is set as random value ranging from
//! 250 MB to 500 MB with the variable required data rate from 300 KB/s to
//! 600 KB/s." Sizes and rates are drawn uniformly and independently per
//! user from a seeded RNG.
//!
//! For the Fig. 4b / 8b sweeps over "data amount", [`WorkloadSpec::with_mean_size_mb`]
//! rescales the size range around a target mean while preserving the
//! paper's relative spread (250–500 MB has mean 375 MB and spread ±⅓).

use crate::video::{BitrateModel, VideoSession};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Distribution of per-user video sessions.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct WorkloadSpec {
    /// Uniform video size range, KB.
    pub size_range_kb: (f64, f64),
    /// Uniform required-rate range, KB/s.
    pub rate_range_kbps: (f64, f64),
    /// When set, sessions are VBR: the drawn rate is modulated by the given
    /// relative levels (e.g. `[0.75, 1.25]`) switching every
    /// `vbr_segment_slots`.
    pub vbr_levels: Option<Vec<f64>>,
    /// Slots per VBR segment (ignored for CBR).
    pub vbr_segment_slots: u64,
}

impl WorkloadSpec {
    /// The paper's distribution: sizes U[250, 500] MB, rates U[300, 600] KB/s, CBR.
    pub fn paper_default() -> Self {
        Self {
            size_range_kb: (250_000.0, 500_000.0),
            rate_range_kbps: (300.0, 600.0),
            vbr_levels: None,
            vbr_segment_slots: 30,
        }
    }

    /// Rescale the size range to have mean `mean_mb` while keeping the
    /// paper's relative spread (±⅓ of the mean).
    pub fn with_mean_size_mb(mut self, mean_mb: f64) -> Self {
        assert!(mean_mb > 0.0);
        let mean_kb = mean_mb * 1000.0;
        self.size_range_kb = (mean_kb * (250.0 / 375.0), mean_kb * (500.0 / 375.0));
        self
    }

    /// Mean video size implied by the spec, MB.
    pub fn mean_size_mb(&self) -> f64 {
        (self.size_range_kb.0 + self.size_range_kb.1) / 2.0 / 1000.0
    }

    /// Draw one session.
    fn draw(&self, rng: &mut StdRng) -> VideoSession {
        let size = draw_uniform(rng, self.size_range_kb);
        let rate = draw_uniform(rng, self.rate_range_kbps);
        let bitrate = match &self.vbr_levels {
            None => BitrateModel::Cbr { kbps: rate },
            Some(levels) => BitrateModel::Vbr {
                rates_kbps: levels.iter().map(|l| l * rate).collect(),
                segment_slots: self.vbr_segment_slots,
            },
        };
        VideoSession::new(size, bitrate)
    }
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self::paper_default()
    }
}

fn draw_uniform(rng: &mut StdRng, (lo, hi): (f64, f64)) -> f64 {
    debug_assert!(hi >= lo);
    if hi > lo {
        rng.random_range(lo..hi)
    } else {
        lo
    }
}

/// Generate `n_users` sessions deterministically from `seed`.
pub fn generate_sessions(spec: &WorkloadSpec, n_users: usize, seed: u64) -> Vec<VideoSession> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00_D15E_A5E5);
    (0..n_users).map(|_| spec.draw(&mut rng)).collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn sessions_within_paper_ranges() {
        let spec = WorkloadSpec::paper_default();
        for s in generate_sessions(&spec, 200, 1) {
            assert!((250_000.0..=500_000.0).contains(&s.total_kb));
            let r = s.bitrate.mean_rate();
            assert!((300.0..=600.0).contains(&r));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = WorkloadSpec::paper_default();
        assert_eq!(
            generate_sessions(&spec, 40, 9),
            generate_sessions(&spec, 40, 9)
        );
        assert_ne!(
            generate_sessions(&spec, 40, 9),
            generate_sessions(&spec, 40, 10)
        );
    }

    #[test]
    fn mean_size_rescaling() {
        let spec = WorkloadSpec::paper_default().with_mean_size_mb(100.0);
        assert!((spec.mean_size_mb() - 100.0).abs() < 1e-9);
        let (lo, hi) = spec.size_range_kb;
        assert!((lo - 100_000.0 * 250.0 / 375.0).abs() < 1e-6);
        assert!((hi - 100_000.0 * 500.0 / 375.0).abs() < 1e-6);
        // Paper default already has mean 375 MB.
        assert!((WorkloadSpec::paper_default().mean_size_mb() - 375.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_mean_near_target() {
        let spec = WorkloadSpec::paper_default().with_mean_size_mb(350.0);
        let sessions = generate_sessions(&spec, 4000, 7);
        let mean_mb = sessions.iter().map(|s| s.total_kb).sum::<f64>() / 4000.0 / 1000.0;
        assert!(
            (mean_mb - 350.0).abs() < 10.0,
            "mean {mean_mb} not near 350"
        );
    }

    #[test]
    fn vbr_workload_builds_vbr_sessions() {
        let spec = WorkloadSpec {
            vbr_levels: Some(vec![0.8, 1.2]),
            ..WorkloadSpec::paper_default()
        };
        let s = &generate_sessions(&spec, 1, 3)[0];
        match &s.bitrate {
            BitrateModel::Vbr { rates_kbps, .. } => {
                assert_eq!(rates_kbps.len(), 2);
                assert!((rates_kbps[1] / rates_kbps[0] - 1.5).abs() < 1e-9);
            }
            other => panic!("expected VBR, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_point_ranges() {
        let spec = WorkloadSpec {
            size_range_kb: (1000.0, 1000.0),
            rate_range_kbps: (400.0, 400.0),
            ..WorkloadSpec::paper_default()
        };
        let s = &generate_sessions(&spec, 3, 0)[2];
        assert_eq!(s.total_kb, 1000.0);
        assert_eq!(s.bitrate.mean_rate(), 400.0);
    }
}
