//! QoE metrics: rebuffering aggregates, Jain fairness (Figs. 2/6), CDFs.

use serde::{Deserialize, Serialize};

/// Jain fairness index `(Σxᵢ)² / (n·Σxᵢ²)` over per-user shares.
///
/// The paper applies it to per-slot shares `Fᵢ = dᵢ/d_need(i)` (§VI-A);
/// a value near 1 means equal service. Degenerate inputs: an empty slice
/// or all-zero shares (nobody needed anything) count as perfectly fair.
///
/// ```
/// use jmso_media::jain_index;
///
/// assert_eq!(jain_index(&[1.0, 1.0, 1.0, 1.0]), 1.0); // equal shares
/// assert_eq!(jain_index(&[1.0, 0.0, 0.0, 0.0]), 0.25); // one hog: 1/n
/// ```
pub fn jain_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|x| x * x).sum();
    if sum_sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sum_sq)
}

/// Aggregated rebuffering statistics for one user or one population.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RebufferStats {
    /// Total rebuffering seconds (Σ cᵢ(n)).
    pub total_s: f64,
    /// Slots with any stall.
    pub stall_slots: u64,
    /// Slots over which the average is taken.
    pub slots: u64,
}

impl RebufferStats {
    /// Average rebuffering per slot (the paper's `PC` with Γ = `slots`).
    pub fn avg_per_slot(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.total_s / self.slots as f64
        }
    }

    /// Merge two stats (e.g. across users).
    pub fn merge(self, other: Self) -> Self {
        Self {
            total_s: self.total_s + other.total_s,
            stall_slots: self.stall_slots + other.stall_slots,
            slots: self.slots + other.slots,
        }
    }
}

/// Empirical CDF over a set of samples.
///
/// Used by the figure harness to regenerate the paper's CDF plots
/// (Figs. 2, 3, 6, 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from raw samples (NaNs are rejected).
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "CDF samples must not contain NaN"
        );
        samples.sort_by(f64::total_cmp);
        Self { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X ≤ x): fraction of samples at or below `x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (q ∈ \[0,1\]) by the nearest-rank method.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[rank - 1]
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// Evenly spaced `(x, P(X ≤ x))` points for plotting, `points ≥ 2`.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2);
        if self.sorted.is_empty() {
            return vec![];
        }
        let lo = self.sorted[0];
        let hi = self.sorted[self.sorted.len() - 1];
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }
}

/// Arithmetic mean helper (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn jain_equal_shares_is_one() {
        assert!((jain_index(&[0.5, 0.5, 0.5, 0.5]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[2.0, 2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_single_hog_is_one_over_n() {
        // One user takes everything: index = 1/n.
        let idx = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_degenerate_inputs() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn jain_known_value() {
        // (1+2+3)²/(3·(1+4+9)) = 36/42.
        let idx = jain_index(&[1.0, 2.0, 3.0]);
        assert!((idx - 36.0 / 42.0).abs() < 1e-12);
    }

    #[test]
    fn rebuffer_stats_avg_and_merge() {
        let a = RebufferStats {
            total_s: 10.0,
            stall_slots: 4,
            slots: 100,
        };
        let b = RebufferStats {
            total_s: 5.0,
            stall_slots: 1,
            slots: 50,
        };
        assert!((a.avg_per_slot() - 0.1).abs() < 1e-12);
        let m = a.merge(b);
        assert_eq!(m.total_s, 15.0);
        assert_eq!(m.stall_slots, 5);
        assert_eq!(m.slots, 150);
        assert_eq!(RebufferStats::default().avg_per_slot(), 0.0);
    }

    #[test]
    fn cdf_fraction_and_quantiles() {
        let c = Cdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(c.len(), 4);
        assert!((c.fraction_at_or_below(2.0) - 0.5).abs() < 1e-12);
        assert!((c.fraction_at_or_below(0.5) - 0.0).abs() < 1e-12);
        assert!((c.fraction_at_or_below(4.0) - 1.0).abs() < 1e-12);
        assert_eq!(c.quantile(0.5), 2.0);
        assert_eq!(c.median(), 2.0);
        assert_eq!(c.quantile(1.0), 4.0);
        assert_eq!(c.quantile(0.0), 1.0);
        assert!((c.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn cdf_series_is_monotone() {
        let c = Cdf::new((0..100).map(|i| (i as f64).sin()).collect());
        let s = c.series(20);
        assert_eq!(s.len(), 20);
        for w in s.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert!((s.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn cdf_rejects_nan() {
        Cdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
