//! DASH-style adaptive bitrate (ABR): a ladder of encoded rates per
//! session and a per-chunk rung-selection policy.
//!
//! The paper holds each user's bitrate `pᵢ` constant; the related work
//! (rate-prediction-aware adaptive video, utility-optimal scheduling)
//! makes it a decision variable. Here a session's native CBR rate is the
//! top of a [`BitrateLadder`] of multiplicative rungs (e.g. `[0.5, 0.75,
//! 1.0]`), the video is fetched in fixed-duration chunks, and at every
//! chunk boundary an [`AbrPolicy`] picks the next chunk's rung from the
//! client's buffer level and a throughput prediction. Re-encoding a
//! chunk at rung `r` scales its bytes by `multiplier[r]` while its
//! playback duration stays fixed, so the invariant
//! `remaining_kb / current_rate == remaining_playback_seconds` holds
//! across switches (see [`AbrClient`]).
//!
//! **Bit-identity contract:** a single-rung ladder `[1.0]` never stages
//! a switch (both policies return the only rung) and prices every chunk
//! at the native rate (`1.0 * native` is exact in IEEE 754), so an
//! ABR-enabled run with that ladder is bit-identical to a constant-
//! bitrate run. The engine's property tests pin this on every run path.

use serde::{Deserialize, Serialize};

/// Ordered ladder of bitrate rungs, as multipliers on the session's
/// native rate. Rung 0 is the lowest quality; the last rung is the
/// highest (typically `1.0`, the native encoding).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct BitrateLadder {
    /// Strictly ascending, positive multipliers on the native rate.
    pub multipliers: Vec<f64>,
}

impl BitrateLadder {
    /// The degenerate single-rung ladder: native rate only. ABR runs
    /// with this ladder are bit-identical to constant-bitrate runs.
    pub fn single_rung() -> Self {
        Self {
            multipliers: vec![1.0],
        }
    }

    /// Number of rungs.
    pub fn len(&self) -> usize {
        self.multipliers.len()
    }

    /// True when the ladder has no rungs (invalid; see
    /// [`BitrateLadder::validate`]).
    pub fn is_empty(&self) -> bool {
        self.multipliers.is_empty()
    }

    /// The encoded rate of rung `rung` for a session with the given
    /// native rate, KB/s.
    pub fn rate_kbps(&self, rung: usize, native_kbps: f64) -> f64 {
        self.multipliers[rung] * native_kbps
    }

    /// Bytes of one `chunk_s`-second chunk at rung `rung`, KB.
    pub fn chunk_kb(&self, rung: usize, native_kbps: f64, chunk_s: f64) -> f64 {
        self.rate_kbps(rung, native_kbps) * chunk_s
    }

    /// Structural checks: at least one rung, every multiplier positive
    /// and finite, strictly ascending order.
    pub fn validate(&self) -> Result<(), String> {
        if self.multipliers.is_empty() {
            return Err("ladder needs at least one rung".to_string());
        }
        for (i, &m) in self.multipliers.iter().enumerate() {
            if !m.is_finite() || m <= 0.0 {
                return Err(format!(
                    "rung {i} multiplier {m} must be positive and finite"
                ));
            }
        }
        for w in self.multipliers.windows(2) {
            if w[1] <= w[0] {
                return Err(format!(
                    "rungs must be strictly ascending, got {} then {}",
                    w[0], w[1]
                ));
            }
        }
        Ok(())
    }
}

/// Inputs to a per-chunk rung decision, observed at the chunk boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbrInputs {
    /// Playback-buffer occupancy `rᵢ(n)` at the start of the slot, s.
    pub buffer_s: f64,
    /// Predicted deliverable throughput for the next chunk, KB/s. The
    /// engine derives it from the Eq. (1) link capacity of the current
    /// signal block, which the sinusoidal/Markov signal structure makes
    /// exact in expectation.
    pub predicted_kbps: f64,
}

/// Per-chunk rung-selection policy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum AbrPolicy {
    /// Buffer-based (BBA-style): step one rung down when the buffer sits
    /// below `low_s`, one rung up above `high_s`, hold in between.
    BufferBased {
        /// Buffer level below which quality steps down, seconds.
        low_s: f64,
        /// Buffer level above which quality steps up, seconds.
        high_s: f64,
    },
    /// Rate-prediction-based: pick the highest rung whose encoded rate
    /// fits inside `safety × predicted_kbps` (rung 0 when none does).
    RateBased {
        /// Fraction of the predicted throughput to spend, in `(0, 1]`.
        safety: f64,
    },
}

impl Default for AbrPolicy {
    fn default() -> Self {
        AbrPolicy::BufferBased {
            low_s: 4.0,
            high_s: 12.0,
        }
    }
}

impl AbrPolicy {
    /// Choose the next chunk's rung. Deterministic in its arguments;
    /// the result is always a valid rung index.
    pub fn select(
        &self,
        ladder: &BitrateLadder,
        native_kbps: f64,
        cur: usize,
        inp: AbrInputs,
    ) -> usize {
        let top = ladder.len() - 1;
        match *self {
            AbrPolicy::BufferBased { low_s, high_s } => {
                if inp.buffer_s < low_s {
                    cur.saturating_sub(1)
                } else if inp.buffer_s > high_s {
                    (cur + 1).min(top)
                } else {
                    cur.min(top)
                }
            }
            AbrPolicy::RateBased { safety } => {
                let budget = safety * inp.predicted_kbps;
                let mut pick = 0;
                for (r, &m) in ladder.multipliers.iter().enumerate() {
                    if m * native_kbps <= budget {
                        pick = r;
                    }
                }
                pick
            }
        }
    }

    /// Parameter checks.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            AbrPolicy::BufferBased { low_s, high_s } => {
                if !low_s.is_finite() || low_s < 0.0 {
                    Err(format!("low_s {low_s} must be finite and non-negative"))
                } else if !high_s.is_finite() || high_s < low_s {
                    Err(format!("high_s {high_s} must be finite and ≥ low_s"))
                } else {
                    Ok(())
                }
            }
            AbrPolicy::RateBased { safety } => {
                if safety.is_finite() && safety > 0.0 && safety <= 1.0 {
                    Ok(())
                } else {
                    Err(format!("safety {safety} must lie in (0, 1]"))
                }
            }
        }
    }
}

/// Scenario-level ABR configuration: ladder, chunking, policy.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct AbrSpec {
    /// The bitrate ladder (multipliers on each session's native rate).
    pub ladder: BitrateLadder,
    /// Chunk duration in slots (each chunk carries this many slots of
    /// playback at the chosen rung).
    #[serde(default = "default_chunk_slots")]
    pub chunk_slots: u64,
    /// Per-chunk rung-selection policy.
    #[serde(default)]
    pub policy: AbrPolicy,
    /// Rung every session starts on (index into the ladder).
    #[serde(default = "default_initial_rung_top")]
    pub initial_rung: Option<usize>,
}

fn default_chunk_slots() -> u64 {
    4
}

fn default_initial_rung_top() -> Option<usize> {
    None
}

impl AbrSpec {
    /// The identity spec: single rung, bit-identical to no ABR at all.
    pub fn single_rung() -> Self {
        Self {
            ladder: BitrateLadder::single_rung(),
            chunk_slots: default_chunk_slots(),
            policy: AbrPolicy::default(),
            initial_rung: None,
        }
    }

    /// The rung sessions start on: `initial_rung` when given, else the
    /// top (native) rung.
    pub fn start_rung(&self) -> usize {
        self.initial_rung
            .unwrap_or_else(|| self.ladder.len().saturating_sub(1))
    }

    /// Structural and parameter checks.
    pub fn validate(&self) -> Result<(), String> {
        self.ladder.validate()?;
        self.policy.validate()?;
        if self.chunk_slots == 0 {
            return Err("chunk_slots must be positive".to_string());
        }
        if let Some(r) = self.initial_rung {
            if r >= self.ladder.len() {
                return Err(format!(
                    "initial_rung {r} out of range for a {}-rung ladder",
                    self.ladder.len()
                ));
            }
        }
        Ok(())
    }
}

/// A staged rung switch, applied at the end of the slot that completed
/// the chunk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbrSwitch {
    /// Rung left.
    pub from: usize,
    /// Rung entered.
    pub to: usize,
    /// `new_rate / old_rate`: the factor the session's unfetched bytes
    /// scale by (re-encoding the remaining chunks at the new rung).
    pub ratio: f64,
}

/// Per-user ABR client state: current rung, its encoded rate, and the
/// bytes left in the in-flight chunk.
///
/// The state machine is deliberately split in two so the engine's
/// sharded loop stays race-free: [`AbrClient::on_delivery`] (called from
/// per-user accounting, possibly in parallel) only touches this user's
/// state and *stages* a switch; [`AbrClient::apply_pending`] (called
/// serially, in user order) commits it, returning the [`AbrSwitch`] the
/// caller uses to rescale the session and record telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AbrClient {
    /// Current ladder rung.
    pub rung: usize,
    /// Encoded rate of the current rung, KB/s.
    pub rate_kbps: f64,
    /// Bytes left in the chunk being fetched, KB.
    pub chunk_rem_kb: f64,
    /// Rung switch staged at a chunk boundary, not yet applied.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub pending: Option<usize>,
}

impl AbrClient {
    /// A client starting its first chunk on `rung`.
    pub fn new(ladder: &BitrateLadder, rung: usize, native_kbps: f64, chunk_s: f64) -> Self {
        Self {
            rung,
            rate_kbps: ladder.rate_kbps(rung, native_kbps),
            chunk_rem_kb: ladder.chunk_kb(rung, native_kbps, chunk_s),
            pending: None,
        }
    }

    /// Account `kb` of delivered video against the in-flight chunk; at a
    /// chunk boundary (and while the session still has bytes to fetch)
    /// consult `policy` and stage the next chunk's rung. The fresh chunk
    /// is priced at the rung that will be in effect after
    /// [`AbrClient::apply_pending`].
    #[allow(clippy::too_many_arguments)]
    pub fn on_delivery(
        &mut self,
        kb: f64,
        session_done: bool,
        ladder: &BitrateLadder,
        policy: &AbrPolicy,
        native_kbps: f64,
        chunk_s: f64,
        inp: AbrInputs,
    ) {
        self.chunk_rem_kb -= kb;
        if self.chunk_rem_kb > 1e-9 || session_done {
            return;
        }
        let next = policy.select(ladder, native_kbps, self.rung, inp);
        if next != self.rung {
            self.pending = Some(next);
        }
        self.chunk_rem_kb = ladder.chunk_kb(next, native_kbps, chunk_s);
    }

    /// Commit a staged switch: update rung and rate, return the switch
    /// descriptor (None when nothing was staged).
    pub fn apply_pending(&mut self, ladder: &BitrateLadder, native_kbps: f64) -> Option<AbrSwitch> {
        let to = self.pending.take()?;
        let from = self.rung;
        let old_rate = self.rate_kbps;
        self.rung = to;
        self.rate_kbps = ladder.rate_kbps(to, native_kbps);
        Some(AbrSwitch {
            from,
            to,
            ratio: self.rate_kbps / old_rate,
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn ladder3() -> BitrateLadder {
        BitrateLadder {
            multipliers: vec![0.5, 0.75, 1.0],
        }
    }

    #[test]
    fn ladder_validation() {
        assert!(ladder3().validate().is_ok());
        assert!(BitrateLadder {
            multipliers: vec![]
        }
        .validate()
        .is_err());
        assert!(BitrateLadder {
            multipliers: vec![0.5, 0.5]
        }
        .validate()
        .is_err());
        assert!(BitrateLadder {
            multipliers: vec![1.0, 0.5]
        }
        .validate()
        .is_err());
        assert!(BitrateLadder {
            multipliers: vec![-1.0]
        }
        .validate()
        .is_err());
        assert!(BitrateLadder {
            multipliers: vec![f64::NAN]
        }
        .validate()
        .is_err());
    }

    #[test]
    fn single_rung_rate_is_exactly_native() {
        let ladder = BitrateLadder::single_rung();
        for native in [300.0f64, 417.3, 599.999] {
            assert_eq!(ladder.rate_kbps(0, native).to_bits(), native.to_bits());
        }
    }

    #[test]
    fn buffer_policy_steps_one_rung() {
        let l = ladder3();
        let p = AbrPolicy::BufferBased {
            low_s: 4.0,
            high_s: 12.0,
        };
        let at = |buffer_s, cur| {
            p.select(
                &l,
                400.0,
                cur,
                AbrInputs {
                    buffer_s,
                    predicted_kbps: 0.0,
                },
            )
        };
        assert_eq!(at(1.0, 2), 1, "starved: down");
        assert_eq!(at(1.0, 0), 0, "floor holds");
        assert_eq!(at(20.0, 0), 1, "surplus: up");
        assert_eq!(at(20.0, 2), 2, "ceiling holds");
        assert_eq!(at(8.0, 1), 1, "in band: hold");
    }

    #[test]
    fn rate_policy_picks_highest_fitting_rung() {
        let l = ladder3();
        let p = AbrPolicy::RateBased { safety: 0.9 };
        let at = |pred| {
            p.select(
                &l,
                400.0,
                0,
                AbrInputs {
                    buffer_s: 0.0,
                    predicted_kbps: pred,
                },
            )
        };
        // Rung rates: 200 / 300 / 400. Budget = 0.9 × pred.
        assert_eq!(at(500.0), 2);
        assert_eq!(at(350.0), 1);
        assert_eq!(at(100.0), 0, "nothing fits: lowest rung");
    }

    #[test]
    fn policy_validation() {
        assert!(AbrPolicy::default().validate().is_ok());
        assert!(AbrPolicy::BufferBased {
            low_s: 5.0,
            high_s: 2.0
        }
        .validate()
        .is_err());
        assert!(AbrPolicy::RateBased { safety: 0.0 }.validate().is_err());
        assert!(AbrPolicy::RateBased { safety: 1.5 }.validate().is_err());
    }

    #[test]
    fn spec_validation_and_start_rung() {
        let mut spec = AbrSpec {
            ladder: ladder3(),
            chunk_slots: 4,
            policy: AbrPolicy::default(),
            initial_rung: None,
        };
        assert!(spec.validate().is_ok());
        assert_eq!(spec.start_rung(), 2, "defaults to the native rung");
        spec.initial_rung = Some(0);
        assert_eq!(spec.start_rung(), 0);
        spec.initial_rung = Some(3);
        assert!(spec.validate().is_err());
        spec.initial_rung = None;
        spec.chunk_slots = 0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn client_stages_switch_at_chunk_boundary_only() {
        let l = ladder3();
        let p = AbrPolicy::BufferBased {
            low_s: 4.0,
            high_s: 12.0,
        };
        // Native 400 KB/s, 2 s chunks, starting on the top rung: the
        // first chunk is 800 KB.
        let mut c = AbrClient::new(&l, 2, 400.0, 2.0);
        assert_eq!(c.chunk_rem_kb, 800.0);
        let starving = AbrInputs {
            buffer_s: 0.0,
            predicted_kbps: 100.0,
        };
        c.on_delivery(500.0, false, &l, &p, 400.0, 2.0, starving);
        assert!(c.pending.is_none(), "mid-chunk: no decision");
        c.on_delivery(300.0, false, &l, &p, 400.0, 2.0, starving);
        assert_eq!(c.pending, Some(1), "boundary under starvation: down");
        // The fresh chunk is priced at the staged rung (0.75 × 400 × 2 s).
        assert_eq!(c.chunk_rem_kb, 600.0);
        let sw = c.apply_pending(&l, 400.0).unwrap();
        assert_eq!((sw.from, sw.to), (2, 1));
        assert!((sw.ratio - 0.75).abs() < 1e-12);
        assert_eq!(c.rate_kbps, 300.0);
        assert!(c.apply_pending(&l, 400.0).is_none(), "one-shot");
    }

    #[test]
    fn client_holds_rung_without_staging() {
        let l = ladder3();
        let p = AbrPolicy::BufferBased {
            low_s: 4.0,
            high_s: 12.0,
        };
        let mut c = AbrClient::new(&l, 1, 400.0, 1.0);
        let comfy = AbrInputs {
            buffer_s: 8.0,
            predicted_kbps: 1000.0,
        };
        c.on_delivery(300.0, false, &l, &p, 400.0, 1.0, comfy);
        assert!(c.pending.is_none(), "hold: nothing staged");
        assert_eq!(c.chunk_rem_kb, 300.0, "fresh chunk at the held rung");
    }

    #[test]
    fn finished_session_never_decides() {
        let l = ladder3();
        let p = AbrPolicy::default();
        let mut c = AbrClient::new(&l, 2, 400.0, 1.0);
        c.on_delivery(
            400.0,
            true,
            &l,
            &p,
            400.0,
            1.0,
            AbrInputs {
                buffer_s: 0.0,
                predicted_kbps: 0.0,
            },
        );
        assert!(c.pending.is_none());
    }

    #[test]
    fn single_rung_client_is_inert() {
        let l = BitrateLadder::single_rung();
        let p = AbrPolicy::default();
        let native = 437.25f64;
        let mut c = AbrClient::new(&l, 0, native, 4.0);
        assert_eq!(c.rate_kbps.to_bits(), native.to_bits());
        for _ in 0..50 {
            c.on_delivery(
                900.0,
                false,
                &l,
                &p,
                native,
                4.0,
                AbrInputs {
                    buffer_s: 0.0,
                    predicted_kbps: 1.0,
                },
            );
            assert!(c.pending.is_none(), "single rung never stages a switch");
            assert_eq!(c.rate_kbps.to_bits(), native.to_bits());
        }
    }

    #[test]
    fn serde_roundtrip() {
        let spec = AbrSpec {
            ladder: ladder3(),
            chunk_slots: 8,
            policy: AbrPolicy::RateBased { safety: 0.8 },
            initial_rung: Some(1),
        };
        let j = serde_json::to_string(&spec).unwrap();
        let back: AbrSpec = serde_json::from_str(&j).unwrap();
        assert_eq!(back, spec);
        // Defaults fill in for terse specs.
        let terse: AbrSpec =
            serde_json::from_str("{\"ladder\":{\"multipliers\":[0.5,1.0]}}").unwrap();
        assert_eq!(terse.chunk_slots, 4);
        assert_eq!(terse.start_rung(), 1);
    }
}
