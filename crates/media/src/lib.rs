//! Streaming-media substrate for the jmso simulator.
//!
//! Implements the client-side half of the paper's model:
//!
//! * [`video`] — video sessions: total size, CBR/VBR bitrate `pᵢ(n)`,
//!   download progress and playback progress `mᵢ`/`Mᵢ`.
//! * [`buffer`] — the playback buffer: remaining occupancy `rᵢ(n)` (Eq. (7))
//!   and per-slot rebuffering `cᵢ(n)` (Eq. (8)).
//! * [`workload`] — seeded generators for the paper's §VI workload
//!   distributions (video sizes 250–500 MB, rates 300–600 KB/s).
//! * [`metrics`] — QoE aggregation: rebuffering statistics, the Jain
//!   fairness index used in Figs. 2/6, and CDF utilities for the figure
//!   harness.
//! * [`abr`] — DASH-style adaptive bitrate: a ladder of encoded rates
//!   per session and per-chunk rung-selection policies (buffer-based
//!   and rate-prediction-based).

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

pub mod abr;
pub mod buffer;
pub mod metrics;
pub mod video;
pub mod workload;

pub use abr::{AbrClient, AbrInputs, AbrPolicy, AbrSpec, AbrSwitch, BitrateLadder};
pub use buffer::{ClientPlayback, SlotOutcome};
pub use metrics::{jain_index, Cdf, RebufferStats};
pub use video::{BitrateModel, VideoSession};
pub use workload::{generate_sessions, WorkloadSpec};
