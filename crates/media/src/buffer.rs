//! Client playback buffer — Eqs. (7)–(9) of the paper.
//!
//! The *remaining occupancy* `rᵢ(n)` is the playback duration the buffered
//! data can sustain at the beginning of slot `n`:
//!
//! ```text
//! rᵢ(0) = 0
//! rᵢ(n) = max{rᵢ(n−1) − τ, 0} + tᵢ(n−1)        (Eq. 7)
//! ```
//!
//! where `tᵢ(n) = dᵢ(n)/pᵢ(n)` is the playback time carried by the shard
//! delivered in slot `n` (a shard is usable only once fully received, i.e.
//! from the *next* slot). Rebuffering in a slot is the shortfall below one
//! slot of playback, counted only while the video is still playing:
//!
//! ```text
//! cᵢ(n) = max{τ − rᵢ(n), 0}   while mᵢ(n) < Mᵢ, else 0   (Eq. 8)
//! ```
//!
//! Note that the recursion at `n = 0` (`max{0 − τ, 0} + 0 = 0`) reproduces
//! the paper's boundary condition `rᵢ(0) = 0`, so the same update runs on
//! every slot with no special case; initial startup delay therefore counts
//! as rebuffering, exactly as in the paper's model.

use serde::{Deserialize, Serialize};

/// What happened to one client during one slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotOutcome {
    /// Rebuffering time `cᵢ(n)` in this slot, seconds (`∈ [0, τ]`).
    pub rebuffer_s: f64,
    /// Seconds of media actually watched this slot.
    pub watched_s: f64,
    /// Occupancy `rᵢ(n)` at the beginning of the slot, seconds.
    pub occupancy_s: f64,
    /// True while the user was still watching at the start of the slot
    /// (`mᵢ(n) < Mᵢ`); rebuffering accrues only on active slots.
    pub active: bool,
}

/// Per-user playback state machine implementing the paper's buffer model.
///
/// ```
/// use jmso_media::ClientPlayback;
///
/// let mut client = ClientPlayback::new(60.0, 1.0); // 60 s video, τ = 1 s
/// let startup = client.begin_slot();
/// assert_eq!(startup.rebuffer_s, 1.0); // nothing buffered yet
/// client.deliver(900.0, 300.0);        // 900 KB at 300 KB/s = 3 s of media
/// let playing = client.begin_slot();   // the shard is playable next slot
/// assert_eq!(playing.rebuffer_s, 0.0);
/// assert_eq!(playing.watched_s, 1.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClientPlayback {
    tau: f64,
    /// `rᵢ` — playback seconds available at the last `begin_slot`.
    occupancy_s: f64,
    /// `tᵢ(n)` of the shard delivered during the current slot; becomes
    /// available at the next `begin_slot`.
    pending_s: f64,
    /// `mᵢ` — elapsed playback seconds.
    played_s: f64,
    /// `Mᵢ` — total playback seconds.
    total_playback_s: f64,
    /// Σ cᵢ(n) so far.
    total_rebuffer_s: f64,
    /// Number of slots with cᵢ(n) > 0.
    stall_slots: u64,
    /// Slots elapsed before the first frame played (startup delay).
    startup_slots: u64,
    started: bool,
}

impl ClientPlayback {
    /// New client about to watch `total_playback_s` seconds of media,
    /// with slot length `tau`.
    pub fn new(total_playback_s: f64, tau: f64) -> Self {
        assert!(tau > 0.0, "slot length must be positive");
        assert!(total_playback_s > 0.0, "playback length must be positive");
        Self {
            tau,
            occupancy_s: 0.0,
            pending_s: 0.0,
            played_s: 0.0,
            total_playback_s,
            total_rebuffer_s: 0.0,
            stall_slots: 0,
            startup_slots: 0,
            started: false,
        }
    }

    /// Advance to the next slot: apply Eq. (7), account Eq. (8), progress
    /// playback. Call exactly once per slot, before delivering that slot's
    /// shard via [`Self::deliver`].
    pub fn begin_slot(&mut self) -> SlotOutcome {
        // Eq. (7): last slot consumed up to τ seconds; the shard delivered
        // last slot becomes usable now.
        self.occupancy_s = (self.occupancy_s - self.tau).max(0.0) + self.pending_s;
        self.pending_s = 0.0;

        let active = !self.playback_complete();
        let (rebuffer_s, watched_s) = if active {
            // Eq. (8), refined at the video boundary: in the final slot
            // only `Mᵢ − mᵢ` seconds of playback are still needed, so only
            // a shortfall against *that* counts as stalling (the literal
            // formula would charge up to τ even when ε seconds remain;
            // the refinement changes totals by < τ per session — see
            // DESIGN.md §6).
            let needed = self.tau.min(self.total_playback_s - self.played_s);
            let c = (needed - self.occupancy_s).max(0.0);
            (c, needed - c)
        } else {
            (0.0, 0.0)
        };

        self.played_s += watched_s;
        if active {
            self.total_rebuffer_s += rebuffer_s;
            if rebuffer_s > 0.0 {
                self.stall_slots += 1;
            }
            if !self.started {
                if watched_s > 0.0 {
                    self.started = true;
                } else {
                    self.startup_slots += 1;
                }
            }
        }

        SlotOutcome {
            rebuffer_s,
            watched_s,
            occupancy_s: self.occupancy_s,
            active,
        }
    }

    /// Deliver a shard of `kb` kilobytes encoded at `rate_kbps` during the
    /// current slot (`tᵢ(n) = dᵢ(n)/pᵢ(n)`); it becomes playable at the
    /// next [`Self::begin_slot`].
    pub fn deliver(&mut self, kb: f64, rate_kbps: f64) {
        debug_assert!(kb >= 0.0);
        debug_assert!(rate_kbps > 0.0);
        self.pending_s += kb / rate_kbps;
    }

    /// `rᵢ(n)` at the most recent slot start, seconds.
    pub fn occupancy_s(&self) -> f64 {
        self.occupancy_s
    }

    /// `mᵢ` — seconds watched so far.
    pub fn played_s(&self) -> f64 {
        self.played_s
    }

    /// `Mᵢ` — total seconds to watch.
    pub fn total_playback_s(&self) -> f64 {
        self.total_playback_s
    }

    /// True once the entire video has been watched.
    pub fn playback_complete(&self) -> bool {
        self.played_s >= self.total_playback_s - 1e-9
    }

    /// Σ cᵢ(n): total rebuffering so far, seconds.
    pub fn total_rebuffer_s(&self) -> f64 {
        self.total_rebuffer_s
    }

    /// Number of slots in which any rebuffering occurred.
    pub fn stall_slots(&self) -> u64 {
        self.stall_slots
    }

    /// Slots before the first frame played.
    pub fn startup_slots(&self) -> u64 {
        self.startup_slots
    }

    /// Slot length τ.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Abandon the session mid-stream (user churn): truncate `Mᵢ` to the
    /// seconds already watched, so playback is complete from the next
    /// [`Self::begin_slot`] on and no further rebuffering accrues.
    pub fn abandon(&mut self) {
        self.total_playback_s = self.played_s;
        self.occupancy_s = 0.0;
        self.pending_s = 0.0;
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    /// Startup: with no data, every slot is a full stall.
    #[test]
    fn starvation_stalls_full_slots() {
        let mut c = ClientPlayback::new(10.0, 1.0);
        for _ in 0..3 {
            let o = c.begin_slot();
            assert_eq!(o.rebuffer_s, 1.0);
            assert_eq!(o.watched_s, 0.0);
            assert!(o.active);
        }
        assert_eq!(c.total_rebuffer_s(), 3.0);
        assert_eq!(c.stall_slots(), 3);
        assert_eq!(c.startup_slots(), 3);
    }

    /// A shard delivered in slot n is only playable in slot n+1 (Def. 1:
    /// "can be used only in the next slots").
    #[test]
    fn shard_usable_next_slot_only() {
        let mut c = ClientPlayback::new(10.0, 1.0);
        let o0 = c.begin_slot();
        assert_eq!(o0.rebuffer_s, 1.0); // nothing buffered yet
        c.deliver(500.0, 250.0); // 2 s of playback arrives during slot 0
        let o1 = c.begin_slot();
        assert_eq!(o1.occupancy_s, 2.0);
        assert_eq!(o1.rebuffer_s, 0.0);
        assert_eq!(o1.watched_s, 1.0);
    }

    /// Eq. (7) worked example: occupancy drains by τ per slot.
    #[test]
    fn occupancy_recursion_drains() {
        let mut c = ClientPlayback::new(100.0, 1.0);
        c.begin_slot();
        c.deliver(300.0, 100.0); // 3 s
        assert_eq!(c.begin_slot().occupancy_s, 3.0);
        assert_eq!(c.begin_slot().occupancy_s, 2.0);
        assert_eq!(c.begin_slot().occupancy_s, 1.0);
        let o = c.begin_slot();
        assert_eq!(o.occupancy_s, 0.0);
        assert_eq!(o.rebuffer_s, 1.0);
    }

    /// Partial occupancy gives fractional rebuffering.
    #[test]
    fn fractional_rebuffer() {
        let mut c = ClientPlayback::new(100.0, 1.0);
        c.begin_slot();
        c.deliver(25.0, 100.0); // 0.25 s
        let o = c.begin_slot();
        assert!((o.rebuffer_s - 0.75).abs() < 1e-12);
        assert!((o.watched_s - 0.25).abs() < 1e-12);
    }

    /// Rebuffering stops accruing once the video completes (Eq. 8's
    /// mᵢ ≥ Mᵢ branch).
    #[test]
    fn no_rebuffer_after_completion() {
        let mut c = ClientPlayback::new(2.0, 1.0);
        c.begin_slot();
        c.deliver(300.0, 100.0); // 3 s buffered for a 2 s video
        let o1 = c.begin_slot();
        assert_eq!(o1.watched_s, 1.0);
        let o2 = c.begin_slot();
        assert_eq!(o2.watched_s, 1.0);
        assert!(c.playback_complete());
        let o3 = c.begin_slot();
        assert!(!o3.active);
        assert_eq!(o3.rebuffer_s, 0.0);
        assert_eq!(c.total_rebuffer_s(), 1.0); // only the startup slot
    }

    /// Final partial slot: watch only the remaining media.
    #[test]
    fn final_partial_slot() {
        let mut c = ClientPlayback::new(1.5, 1.0);
        c.begin_slot();
        c.deliver(500.0, 100.0); // 5 s buffered
        assert_eq!(c.begin_slot().watched_s, 1.0);
        let o = c.begin_slot();
        assert!((o.watched_s - 0.5).abs() < 1e-12);
        assert!(c.playback_complete());
    }

    /// Startup delay stops counting at first playback.
    #[test]
    fn startup_counter() {
        let mut c = ClientPlayback::new(10.0, 1.0);
        c.begin_slot(); // stall
        c.begin_slot(); // stall
        c.deliver(100.0, 100.0); // 1 s
        c.begin_slot(); // plays
        c.begin_slot(); // stalls again — startup unchanged
        assert_eq!(c.startup_slots(), 2);
        assert_eq!(c.stall_slots(), 3);
    }

    /// Per-slot rebuffering never exceeds τ.
    #[test]
    fn rebuffer_bounded_by_tau() {
        let mut c = ClientPlayback::new(50.0, 2.5);
        for _ in 0..10 {
            let o = c.begin_slot();
            assert!(o.rebuffer_s <= 2.5 + 1e-12);
        }
    }
}
