//! Video session model.
//!
//! A session is a fixed volume of media (`total_kb`) encoded at a bitrate
//! `pᵢ(n)` that the paper allows to vary per slot but hold constant within
//! one ("we consider the video bit rate changes over time but remains same
//! in a slot"). The total playback time `Mᵢ` follows from volume and rates.

use serde::{Deserialize, Serialize};

/// Requested data rate `pᵢ(n)` as a function of the slot index.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum BitrateModel {
    /// Constant bitrate in KB/s.
    Cbr {
        /// The rate in KB/s.
        kbps: f64,
    },
    /// Variable bitrate: piecewise-constant segments, cycling.
    Vbr {
        /// Per-segment rates in KB/s.
        rates_kbps: Vec<f64>,
        /// Slots per segment.
        segment_slots: u64,
    },
}

impl BitrateModel {
    /// The rate in effect during `slot`, KB/s.
    pub fn rate_at(&self, slot: u64) -> f64 {
        match self {
            BitrateModel::Cbr { kbps } => *kbps,
            BitrateModel::Vbr {
                rates_kbps,
                segment_slots,
            } => {
                let seg = (slot / (*segment_slots).max(1)) as usize % rates_kbps.len();
                rates_kbps[seg]
            }
        }
    }

    /// Mean rate across a cycle (CBR: the rate itself).
    pub fn mean_rate(&self) -> f64 {
        match self {
            BitrateModel::Cbr { kbps } => *kbps,
            BitrateModel::Vbr { rates_kbps, .. } => {
                rates_kbps.iter().sum::<f64>() / rates_kbps.len() as f64
            }
        }
    }
}

/// One user's video-on-demand session.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct VideoSession {
    /// Total media volume in KB (the paper's 250–500 MB).
    pub total_kb: f64,
    /// Requested data rate model `pᵢ(n)`.
    pub bitrate: BitrateModel,
    /// KB fetched through the gateway so far.
    received_kb: f64,
}

impl VideoSession {
    /// New unstarted session.
    pub fn new(total_kb: f64, bitrate: BitrateModel) -> Self {
        assert!(total_kb > 0.0, "video must have positive size");
        assert!(bitrate.mean_rate() > 0.0, "bitrate must be positive");
        Self {
            total_kb,
            bitrate,
            received_kb: 0.0,
        }
    }

    /// Convenience CBR constructor.
    pub fn cbr(total_kb: f64, kbps: f64) -> Self {
        Self::new(total_kb, BitrateModel::Cbr { kbps })
    }

    /// Total playback duration `Mᵢ` in seconds (volume ÷ mean rate; exact
    /// for CBR, the natural generalization for VBR).
    pub fn total_playback_s(&self) -> f64 {
        self.total_kb / self.bitrate.mean_rate()
    }

    /// KB still to be fetched from the server.
    pub fn remaining_kb(&self) -> f64 {
        (self.total_kb - self.received_kb).max(0.0)
    }

    /// KB fetched so far.
    pub fn received_kb(&self) -> f64 {
        self.received_kb
    }

    /// True when the whole file has been fetched.
    pub fn fully_fetched(&self) -> bool {
        self.remaining_kb() <= 1e-9
    }

    /// Record `kb` delivered by the gateway; returns the amount actually
    /// accepted (delivery never exceeds the remaining volume).
    pub fn deliver(&mut self, kb: f64) -> f64 {
        debug_assert!(kb >= 0.0);
        let accepted = kb.min(self.remaining_kb());
        self.received_kb += accepted;
        accepted
    }

    /// The rate `pᵢ(n)` in effect at `slot`, KB/s.
    pub fn rate_at(&self, slot: u64) -> f64 {
        self.bitrate.rate_at(slot)
    }

    /// Cancel the unfetched remainder (user churn): truncate `total_kb` to
    /// what has been received, so the session is fully fetched and the
    /// gateway stops scheduling data for it.
    pub fn cancel_remaining(&mut self) {
        self.total_kb = self.received_kb;
    }

    /// Re-price the unfetched remainder by `ratio` (an ABR rung switch:
    /// the remaining chunks are re-encoded at `new_rate = ratio × old_rate`,
    /// so their bytes scale by the same factor while their playback
    /// duration is unchanged). Returns the signed change in `total_kb`
    /// so the caller can adjust the gateway's source-volume accounting.
    pub fn rescale_remaining(&mut self, ratio: f64) -> f64 {
        debug_assert!(ratio > 0.0 && ratio.is_finite());
        let delta = self.remaining_kb() * (ratio - 1.0);
        self.total_kb += delta;
        delta
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn cbr_session_basics() {
        let mut s = VideoSession::cbr(350_000.0, 500.0);
        assert!((s.total_playback_s() - 700.0).abs() < 1e-9);
        assert_eq!(s.remaining_kb(), 350_000.0);
        assert!(!s.fully_fetched());
        let got = s.deliver(1000.0);
        assert_eq!(got, 1000.0);
        assert_eq!(s.received_kb(), 1000.0);
        assert_eq!(s.remaining_kb(), 349_000.0);
    }

    #[test]
    fn delivery_clamps_at_total() {
        let mut s = VideoSession::cbr(100.0, 10.0);
        assert_eq!(s.deliver(60.0), 60.0);
        assert_eq!(s.deliver(60.0), 40.0);
        assert!(s.fully_fetched());
        assert_eq!(s.deliver(5.0), 0.0);
        assert_eq!(s.received_kb(), 100.0);
    }

    #[test]
    fn vbr_segments_cycle() {
        let b = BitrateModel::Vbr {
            rates_kbps: vec![300.0, 600.0, 450.0],
            segment_slots: 10,
        };
        assert_eq!(b.rate_at(0), 300.0);
        assert_eq!(b.rate_at(9), 300.0);
        assert_eq!(b.rate_at(10), 600.0);
        assert_eq!(b.rate_at(25), 450.0);
        assert_eq!(b.rate_at(30), 300.0); // wrapped
        assert!((b.mean_rate() - 450.0).abs() < 1e-9);
    }

    #[test]
    fn vbr_playback_duration_uses_mean() {
        let s = VideoSession::new(
            90_000.0,
            BitrateModel::Vbr {
                rates_kbps: vec![300.0, 600.0],
                segment_slots: 5,
            },
        );
        assert!((s.total_playback_s() - 200.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive size")]
    fn zero_size_rejected() {
        VideoSession::cbr(0.0, 100.0);
    }

    #[test]
    fn serde_roundtrip() {
        let s = VideoSession::cbr(1000.0, 300.0);
        let j = serde_json::to_string(&s).unwrap();
        let back: VideoSession = serde_json::from_str(&j).unwrap();
        assert_eq!(back, s);
    }
}
