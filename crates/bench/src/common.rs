//! Shared scaffolding for the figure generators: paper-scale scenarios,
//! seed-averaged statistics, and the figure output record.

use jmso_sim::report::Table;
use jmso_sim::{parallel_map, Scenario, SchedulerSpec, SimResult, WorkloadSpec};

/// Seeds averaged over for the sweep figures (the CDF figures use the
/// first seed only, like the paper's single-run CDFs).
pub const SEEDS: [u64; 3] = [42, 1337, 90210];

/// One regenerated figure: id, caption, and the plotted series.
#[derive(Debug, Clone)]
pub struct FigureOutput {
    /// Figure id, e.g. `fig4a`.
    pub id: &'static str,
    /// What the figure shows (printed above the table).
    pub title: String,
    /// The series, one column per curve.
    pub table: Table,
}

impl FigureOutput {
    /// Render title + aligned table.
    pub fn to_text(&self) -> String {
        format!("== {} — {}\n{}", self.id, self.title, self.table.to_text())
    }
}

/// The paper's §VI cell: `n_users` users, 10 000 slots of τ = 1 s,
/// S = 20 MB/s, sinusoidal RSSI, 3G RRC, videos with mean `mean_mb` MB
/// (paper default 375; Figs. 2/3/6/7 use 350) at 300–600 KB/s.
pub fn paper_cell(n_users: usize, mean_mb: f64) -> Scenario {
    let mut s = Scenario::paper_default(n_users);
    s.workload = WorkloadSpec::paper_default().with_mean_size_mb(mean_mb);
    s
}

/// Seed-averaged aggregates of one (scenario, policy) cell.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Mean total rebuffering per user, seconds.
    pub rebuf_per_user_s: f64,
    /// Mean rebuffering per active user-slot, milliseconds (Fig. 5a axis).
    pub rebuf_per_active_ms: f64,
    /// Total energy, kJ (Fig. 8 axis).
    pub energy_total_kj: f64,
    /// Mean energy per active user-slot, mJ (Fig. 5b/9a axis).
    pub energy_per_active_mj: f64,
    /// Tail energy per active user-slot, mJ (Fig. 5b black bars).
    pub tail_per_active_mj: f64,
}

impl RunStats {
    /// Extract from one run.
    pub fn from_result(r: &SimResult) -> Self {
        let active: u64 = r.per_user.iter().map(|u| u.active_slots).sum();
        let tail_mj = r.total_energy().tail.value();
        Self {
            rebuf_per_user_s: r.mean_rebuffer_per_user_s(),
            rebuf_per_active_ms: r.avg_rebuffer_per_active_slot() * 1000.0,
            energy_total_kj: r.total_energy_kj(),
            energy_per_active_mj: r.avg_energy_per_active_slot_mj(),
            tail_per_active_mj: if active == 0 {
                0.0
            } else {
                tail_mj / active as f64
            },
        }
    }

    fn add(self, o: Self) -> Self {
        Self {
            rebuf_per_user_s: self.rebuf_per_user_s + o.rebuf_per_user_s,
            rebuf_per_active_ms: self.rebuf_per_active_ms + o.rebuf_per_active_ms,
            energy_total_kj: self.energy_total_kj + o.energy_total_kj,
            energy_per_active_mj: self.energy_per_active_mj + o.energy_per_active_mj,
            tail_per_active_mj: self.tail_per_active_mj + o.tail_per_active_mj,
        }
    }

    fn scale(self, k: f64) -> Self {
        Self {
            rebuf_per_user_s: self.rebuf_per_user_s * k,
            rebuf_per_active_ms: self.rebuf_per_active_ms * k,
            energy_total_kj: self.energy_total_kj * k,
            energy_per_active_mj: self.energy_per_active_mj * k,
            tail_per_active_mj: self.tail_per_active_mj * k,
        }
    }
}

/// Run `(scenario, policy)` once per seed (in parallel) and average.
pub fn stats_over_seeds(scenario: &Scenario, spec: &SchedulerSpec) -> RunStats {
    let cells: Vec<Scenario> = SEEDS
        .iter()
        .map(|&seed| scenario.with_seed(seed).with_scheduler(spec.clone()))
        .collect();
    let results = parallel_map(&cells, 0, |s| s.run().expect("figure run"));
    results
        .iter()
        .map(RunStats::from_result)
        .fold(RunStats::default(), RunStats::add)
        .scale(1.0 / SEEDS.len() as f64)
}

/// The user counts swept in Figs. 4a/5/8a/9/10.
pub const USER_SWEEP: [usize; 5] = [20, 25, 30, 35, 40];

/// The mean data amounts (MB) swept in Figs. 4b/8b.
pub const SIZE_SWEEP: [f64; 5] = [100.0, 200.0, 300.0, 400.0, 500.0];

/// CDF comparison series: evaluate several sample sets on a common grid.
pub fn cdf_table(x_label: &str, series: Vec<(&str, Vec<f64>)>, points: usize) -> Table {
    use jmso_media::Cdf;
    assert!(!series.is_empty());
    let lo = series
        .iter()
        .flat_map(|(_, s)| s.iter())
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let hi = series
        .iter()
        .flat_map(|(_, s)| s.iter())
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let mut columns = vec![x_label.to_string()];
    let mut cdfs = Vec::with_capacity(series.len());
    for (name, samples) in series {
        columns.push(format!("cdf_{name}"));
        cdfs.push(Cdf::new(samples));
    }
    let mut t = Table::new(columns);
    for i in 0..points {
        let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
        let mut row = vec![x];
        row.extend(cdfs.iter().map(|c| c.fraction_at_or_below(x)));
        t.push(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cell_applies_mean_size() {
        let s = paper_cell(40, 350.0);
        assert_eq!(s.n_users, 40);
        assert!((s.workload.mean_size_mb() - 350.0).abs() < 1e-9);
        assert_eq!(s.slots, 10_000);
    }

    #[test]
    fn cdf_table_shares_one_grid() {
        let t = cdf_table(
            "x",
            vec![("a", vec![0.0, 1.0, 2.0]), ("b", vec![1.0, 3.0])],
            11,
        );
        assert_eq!(t.columns, vec!["x", "cdf_a", "cdf_b"]);
        assert_eq!(t.rows.len(), 11);
        // Grid spans the union of both sample ranges.
        assert_eq!(t.rows[0][0], 0.0);
        assert_eq!(t.rows[10][0], 3.0);
        // CDFs end at 1 on the shared max.
        assert_eq!(t.rows[10][1], 1.0);
        assert_eq!(t.rows[10][2], 1.0);
        // And are monotone.
        for w in t.rows.windows(2) {
            assert!(w[1][1] >= w[0][1]);
            assert!(w[1][2] >= w[0][2]);
        }
    }

    #[test]
    fn run_stats_extracts_axis_normalizations() {
        use jmso_radio::{EnergyBreakdown, MilliJoules};
        use jmso_sim::{SimResult, UserResult};
        let r = SimResult {
            scheduler: "t".into(),
            per_user: vec![UserResult {
                rebuffer_s: 5.0,
                stall_slots: 3,
                startup_slots: 1,
                watched_s: 50.0,
                playback_complete: true,
                fetched_kb: 10_000.0,
                energy: EnergyBreakdown {
                    transmission: MilliJoules(8_000.0),
                    tail: MilliJoules(2_000.0),
                },
                active_slots: 100,
                tx_slots: 60,
                idle_slots: 40,
                rate_kbps: 450.0,
                video_kb: 10_000.0,
            }],
            slots_run: 120,
            slots_configured: 200,
            tau_s: 1.0,
            fairness_series: vec![],
            fairness_window_series: vec![],
            power_series_j: vec![],
            telemetry: None,
            warnings: vec![],
        };
        let s = RunStats::from_result(&r);
        assert!((s.rebuf_per_user_s - 5.0).abs() < 1e-12);
        assert!((s.rebuf_per_active_ms - 50.0).abs() < 1e-12);
        assert!((s.energy_total_kj - 0.01).abs() < 1e-12);
        assert!((s.energy_per_active_mj - 100.0).abs() < 1e-12);
        assert!((s.tail_per_active_mj - 20.0).abs() < 1e-12);
    }
}
