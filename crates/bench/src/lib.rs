//! Figure-regeneration library for the paper's §VI evaluation.
//!
//! Every figure in the paper (Figs. 2–10) has a generator here that builds
//! the paper-scale scenario, runs the policies involved, and returns the
//! plotted series as a [`jmso_sim::report::Table`]. The `repro` binary is
//! a thin CLI over these functions; keeping them in the library makes the
//! harness itself testable.

pub mod ablations;
pub mod common;
pub mod experiments;
pub mod figs_ema;
pub mod figs_panel;
pub mod figs_rtma;

pub use ablations::{
    abl_collector, abl_delta, abl_frames, abl_lte, abl_noise, abl_signal, abl_tail, abl_vbr,
};
pub use common::{paper_cell, FigureOutput, RunStats, SEEDS};
pub use experiments::{exp_arrivals, exp_baselines, exp_multicell, exp_startup, exp_theorem1};
pub use figs_ema::{fig6, fig7, fig8a, fig8b, fig9};
pub use figs_panel::{fig10, headline};
pub use figs_rtma::{fig2, fig3, fig4a, fig4b, fig5};

/// All figure ids in paper order.
pub const ALL_FIGURES: &[&str] = &[
    "fig2", "fig3", "fig4a", "fig4b", "fig5a", "fig5b", "fig6", "fig7", "fig8a", "fig8b", "fig9a",
    "fig9b", "fig10", "headline",
];

/// All ablation ids (not in the paper; see EXPERIMENTS.md).
pub const ALL_ABLATIONS: &[&str] = &[
    "abl_delta",
    "abl_noise",
    "abl_collector",
    "abl_signal",
    "abl_tail",
    "abl_lte",
    "abl_vbr",
    "abl_frames",
    "exp_theorem1",
    "exp_baselines",
    "exp_startup",
    "exp_multicell",
    "exp_arrivals",
];

/// Generate one figure by id (both sub-panels for combined generators).
pub fn generate(id: &str) -> Option<Vec<FigureOutput>> {
    match id {
        "fig2" => Some(vec![fig2()]),
        "fig3" => Some(vec![fig3()]),
        "fig4a" => Some(vec![fig4a()]),
        "fig4b" => Some(vec![fig4b()]),
        "fig5a" => Some(vec![fig5().0]),
        "fig5b" => Some(vec![fig5().1]),
        "fig5" => {
            let (a, b) = fig5();
            Some(vec![a, b])
        }
        "fig6" => Some(vec![fig6()]),
        "fig7" => Some(vec![fig7()]),
        "fig8a" => Some(vec![fig8a()]),
        "fig8b" => Some(vec![fig8b()]),
        "fig9a" => Some(vec![fig9().0]),
        "fig9b" => Some(vec![fig9().1]),
        "fig9" => {
            let (a, b) = fig9();
            Some(vec![a, b])
        }
        "fig10" => Some(vec![fig10()]),
        "headline" => Some(vec![headline()]),
        "abl_delta" => Some(vec![abl_delta()]),
        "abl_noise" => Some(vec![abl_noise()]),
        "abl_collector" => Some(vec![abl_collector()]),
        "abl_signal" => Some(vec![abl_signal()]),
        "abl_tail" => Some(vec![abl_tail()]),
        "abl_lte" => Some(vec![abl_lte()]),
        "abl_vbr" => Some(vec![abl_vbr()]),
        "abl_frames" => Some(vec![abl_frames()]),
        "exp_theorem1" => Some(vec![exp_theorem1()]),
        "exp_baselines" => Some(vec![exp_baselines()]),
        "exp_startup" => Some(vec![exp_startup()]),
        "exp_multicell" => Some(vec![exp_multicell()]),
        "exp_arrivals" => Some(vec![exp_arrivals()]),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_figure_id_is_none() {
        assert!(generate("fig99").is_none());
        assert!(generate("").is_none());
    }

    #[test]
    fn id_lists_are_distinct_and_nonempty() {
        let mut all: Vec<&str> = ALL_FIGURES.to_vec();
        all.extend_from_slice(ALL_ABLATIONS);
        let unique: std::collections::BTreeSet<&&str> = all.iter().collect();
        assert_eq!(unique.len(), all.len(), "no duplicate ids");
        assert!(ALL_FIGURES.len() >= 14);
        assert!(ALL_ABLATIONS.len() >= 10);
    }
}
