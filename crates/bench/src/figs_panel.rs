//! Fig. 10 (the rebuffering–energy panel) and the paper's headline claims.

use crate::common::{paper_cell, FigureOutput, USER_SWEEP};
use jmso_sim::report::Table;
use jmso_sim::{calibrate_default, fit_v_for_omega, parallel_map, SchedulerSpec};

/// Fig. 10 — the "rebuffering time"–"energy" panel: for each user count
/// in 20..40, the (total energy, total rebuffering) point reached by
/// Default, RTMA (α = 1) and EMA (β = 1). RTMA's points drift along the
/// rebuffering axis, EMA's along the energy axis — the paper's headline
/// visual for the two complementary modes.
pub fn fig10() -> FigureOutput {
    let cells: Vec<usize> = USER_SWEEP.to_vec();
    let rows = parallel_map(&cells, 0, |&n| {
        let scenario = paper_cell(n, 350.0);
        let cal = calibrate_default(&scenario).expect("calibration");
        let run = |spec: SchedulerSpec| scenario.with_scheduler(spec).run().expect("fig10 run");
        let default = run(SchedulerSpec::Default);
        let rtma = run(SchedulerSpec::rtma(cal.phi_for_alpha(1.0)));
        let (v, _) =
            fit_v_for_omega(&scenario, cal.omega_for_beta(1.0), 0.02, 100.0, 9).expect("fit V");
        let ema = run(SchedulerSpec::ema_fast(v));
        vec![
            n as f64,
            default.total_energy().total().joules(),
            default.total_rebuffer_s() / n as f64,
            rtma.total_energy().total().joules(),
            rtma.total_rebuffer_s() / n as f64,
            ema.total_energy().total().joules(),
            ema.total_rebuffer_s() / n as f64,
        ]
    });
    let mut table = Table::new(vec![
        "users",
        "default_energy_j",
        "default_rebuf_s",
        "rtma_energy_j",
        "rtma_rebuf_s",
        "ema_energy_j",
        "ema_rebuf_s",
    ]);
    for row in rows {
        table.push(row);
    }
    FigureOutput {
        id: "fig10",
        title: "Rebuffering–energy panel: Default vs RTMA(α=1) vs EMA(β=1), N ∈ 20..40".into(),
        table,
    }
}

/// The paper's headline claims, §VI summary:
///
/// * RTMA reduces rebuffering by ≥ 68 % vs Throttling / ON-OFF / Default;
/// * EMA reduces energy by ≥ 48 % vs SALSA / Default and ≥ 27 % vs
///   EStreamer.
///
/// Measured at N = 40 (the paper's most congested point) on the paper
/// workload; the rows give the reduction achieved against each baseline.
pub fn headline() -> FigureOutput {
    let scenario = paper_cell(40, 350.0);
    let cal = calibrate_default(&scenario).expect("calibration");
    let run = |spec: SchedulerSpec| scenario.with_scheduler(spec).run().expect("headline run");

    let default = run(SchedulerSpec::Default);
    let throttling = run(SchedulerSpec::throttling_default());
    let onoff = run(SchedulerSpec::onoff_default());
    let salsa = run(SchedulerSpec::salsa_default());
    let estreamer = run(SchedulerSpec::estreamer_default());
    let rtma = run(SchedulerSpec::rtma(cal.phi_for_alpha(1.0)));
    // The paper's two EMA claims use two different bounds: the ≥48 % vs
    // Default/SALSA claim is at β = 1 (Ω = Default's rebuffering, §VI-B
    // Fig. 8); the ≥27 % vs EStreamer claim sets Ω to EStreamer's
    // rebuffering (§VI-B Fig. 9).
    let (v_beta1, _) =
        fit_v_for_omega(&scenario, cal.omega_for_beta(1.0), 0.02, 100.0, 9).expect("fit V");
    let ema_beta1 = run(SchedulerSpec::ema_fast(v_beta1));
    let (v_est, _) = fit_v_for_omega(
        &scenario,
        estreamer.avg_rebuffer_per_active_slot(),
        0.02,
        100.0,
        9,
    )
    .expect("fit V");
    let ema_est = run(SchedulerSpec::ema_fast(v_est));

    let pct = |ours: f64, theirs: f64| 100.0 * (1.0 - ours / theirs.max(1e-12));
    let mut table = Table::new(vec![
        "rtma_rebuf_red_vs_default_pct",
        "rtma_rebuf_red_vs_throttling_pct",
        "rtma_rebuf_red_vs_onoff_pct",
        "ema_energy_red_vs_default_pct",
        "ema_energy_red_vs_salsa_pct",
        "ema_energy_red_vs_estreamer_pct",
    ]);
    table.push(vec![
        pct(rtma.total_rebuffer_s(), default.total_rebuffer_s()),
        pct(rtma.total_rebuffer_s(), throttling.total_rebuffer_s()),
        pct(rtma.total_rebuffer_s(), onoff.total_rebuffer_s()),
        pct(ema_beta1.total_energy_kj(), default.total_energy_kj()),
        pct(ema_beta1.total_energy_kj(), salsa.total_energy_kj()),
        pct(ema_est.total_energy_kj(), estreamer.total_energy_kj()),
    ]);
    FigureOutput {
        id: "headline",
        title: "Headline claims at N=40 (paper: RTMA ≥68 % rebuffering reduction, EMA ≥48 %/≥27 % energy reduction)".into(),
        table,
    }
}
