//! RTMA evaluation figures (paper Figs. 2–5).

use crate::common::{
    cdf_table, paper_cell, stats_over_seeds, FigureOutput, SIZE_SWEEP, USER_SWEEP,
};
use jmso_sim::report::Table;
use jmso_sim::{calibrate_default, parallel_map, Scenario, SchedulerSpec, SimResult};

/// Fig. 2/3 setting: 40 users, mean 350 MB, series recording on.
fn cdf_cell() -> Scenario {
    let mut s = paper_cell(40, 350.0);
    s.record_series = true;
    s
}

fn rtma_spec(scenario: &Scenario, alpha: f64) -> SchedulerSpec {
    let cal = calibrate_default(scenario).expect("calibration");
    SchedulerSpec::rtma(cal.phi_for_alpha(alpha))
}

fn run_pair(scenario: &Scenario, spec: SchedulerSpec) -> (SimResult, SimResult) {
    let cells = [scenario.clone(), scenario.with_scheduler(spec)];
    let mut out = parallel_map(&cells[..], 0, |s| s.run().expect("cdf run")).into_iter();
    (out.next().unwrap(), out.next().unwrap())
}

/// Fig. 2 — CDF of the per-slot Jain fairness index, Default vs RTMA
/// (N = 40, 350 MB average, α = 1).
pub fn fig2() -> FigureOutput {
    let scenario = cdf_cell();
    let spec = rtma_spec(&scenario, 1.0);
    let (default, rtma) = run_pair(&scenario, spec);
    FigureOutput {
        id: "fig2",
        title: "CDF of per-slot Jain fairness index (N=40, 350 MB, α=1)".into(),
        table: cdf_table(
            "fairness",
            vec![
                ("default", default.fairness_series),
                ("rtma", rtma.fairness_series),
                ("default_w10", default.fairness_window_series),
                ("rtma_w10", rtma.fairness_window_series),
            ],
            41,
        ),
    }
}

/// Fig. 3 — CDF over users of total rebuffering time, Default vs RTMA.
pub fn fig3() -> FigureOutput {
    let scenario = cdf_cell();
    let spec = rtma_spec(&scenario, 1.0);
    let (default, rtma) = run_pair(&scenario, spec);
    FigureOutput {
        id: "fig3",
        title: "CDF of per-user rebuffering time, seconds (N=40, 350 MB, α=1)".into(),
        table: cdf_table(
            "rebuffer_s",
            vec![
                ("default", default.rebuffer_samples()),
                ("rtma", rtma.rebuffer_samples()),
            ],
            41,
        ),
    }
}

/// Shared body of Figs. 4a/4b: Default vs RTMA at α ∈ {1.2, 1, 0.8} over a
/// scenario sweep, reporting mean rebuffering per user.
fn fig4_body(
    id: &'static str,
    title: String,
    x_label: &str,
    cells: Vec<(f64, Scenario)>,
) -> FigureOutput {
    let rows = parallel_map(&cells, 0, |(x, scenario)| {
        let cal = calibrate_default(scenario).expect("calibration");
        let run = |spec: SchedulerSpec| stats_over_seeds(scenario, &spec).rebuf_per_user_s;
        vec![
            *x,
            run(SchedulerSpec::Default),
            run(SchedulerSpec::rtma(cal.phi_for_alpha(1.2))),
            run(SchedulerSpec::rtma(cal.phi_for_alpha(1.0))),
            run(SchedulerSpec::rtma(cal.phi_for_alpha(0.8))),
        ]
    });
    let mut table = Table::new(vec![
        x_label.to_string(),
        "default".into(),
        "rtma_a1.2".into(),
        "rtma_a1.0".into(),
        "rtma_a0.8".into(),
    ]);
    for row in rows {
        table.push(row);
    }
    FigureOutput { id, title, table }
}

/// Fig. 4a — mean rebuffering per user (s) vs user number.
pub fn fig4a() -> FigureOutput {
    let cells = USER_SWEEP
        .iter()
        .map(|&n| (n as f64, paper_cell(n, 350.0)))
        .collect();
    fig4_body(
        "fig4a",
        "Rebuffering per user (s) vs user number, RTMA α ∈ {1.2, 1.0, 0.8}".into(),
        "users",
        cells,
    )
}

/// Fig. 4b — mean rebuffering per user (s) vs mean data amount (MB), N=30.
pub fn fig4b() -> FigureOutput {
    let cells = SIZE_SWEEP
        .iter()
        .map(|&mb| (mb, paper_cell(30, mb)))
        .collect();
    fig4_body(
        "fig4b",
        "Rebuffering per user (s) vs data amount (MB), N=30, RTMA α ∈ {1.2, 1.0, 0.8}".into(),
        "data_mb",
        cells,
    )
}

/// Figs. 5a/5b — Default vs Throttling vs ON-OFF vs RTMA (Φ = E_Default)
/// over the user sweep: (a) rebuffering per active user-slot (ms),
/// (b) energy per active user-slot (mJ) with the tail share broken out.
pub fn fig5() -> (FigureOutput, FigureOutput) {
    let cells: Vec<(f64, Scenario)> = USER_SWEEP
        .iter()
        .map(|&n| (n as f64, paper_cell(n, 350.0)))
        .collect();
    let rows = parallel_map(&cells, 0, |(x, scenario)| {
        let cal = calibrate_default(scenario).expect("calibration");
        let stats = |spec: SchedulerSpec| stats_over_seeds(scenario, &spec);
        (
            *x,
            stats(SchedulerSpec::Default),
            stats(SchedulerSpec::throttling_default()),
            stats(SchedulerSpec::onoff_default()),
            stats(SchedulerSpec::rtma(cal.phi_for_alpha(1.0))),
        )
    });

    let mut rebuf = Table::new(vec!["users", "default", "throttling", "onoff", "rtma"]);
    let mut energy = Table::new(vec![
        "users",
        "default",
        "default_tail",
        "throttling",
        "throttling_tail",
        "onoff",
        "onoff_tail",
        "rtma",
        "rtma_tail",
    ]);
    for (x, d, t, o, r) in rows {
        rebuf.push(vec![
            x,
            d.rebuf_per_active_ms,
            t.rebuf_per_active_ms,
            o.rebuf_per_active_ms,
            r.rebuf_per_active_ms,
        ]);
        energy.push(vec![
            x,
            d.energy_per_active_mj,
            d.tail_per_active_mj,
            t.energy_per_active_mj,
            t.tail_per_active_mj,
            o.energy_per_active_mj,
            o.tail_per_active_mj,
            r.energy_per_active_mj,
            r.tail_per_active_mj,
        ]);
    }
    (
        FigureOutput {
            id: "fig5a",
            title: "Rebuffering per active user-slot (ms) vs user number".into(),
            table: rebuf,
        },
        FigureOutput {
            id: "fig5b",
            title: "Energy per active user-slot (mJ, tail broken out) vs user number".into(),
            table: energy,
        },
    )
}
