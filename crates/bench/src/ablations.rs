//! Ablations beyond the paper: sensitivity of the headline results to the
//! modeling choices DESIGN.md calls out (frame size δ, RSSI noise,
//! collector fidelity, channel model, EMA tail pricing, RRC profile, VBR).
//!
//! Each ablation fixes the paper cell (N = 40, 350 MB mean) and varies one
//! axis, reporting the metrics the headline claims rest on: Default/RTMA
//! rebuffering and Default/EMA energy.

use crate::common::{paper_cell, FigureOutput};
use jmso_sim::report::Table;
use jmso_sim::{
    calibrate_default, parallel_map, Scenario, SchedulerSpec, SignalSpec, TailPricing, WorkloadSpec,
};

/// Per-cell summary used by most ablations.
struct Row {
    default_rebuf_s: f64,
    rtma_rebuf_s: f64,
    default_kj: f64,
    ema_kj: f64,
}

fn measure(scenario: &Scenario) -> Row {
    let cal = calibrate_default(scenario).expect("calibration");
    let default = scenario.run().expect("default");
    let rtma = scenario
        .with_scheduler(SchedulerSpec::rtma(cal.phi_for_alpha(1.0)))
        .run()
        .expect("rtma");
    let ema = scenario
        .with_scheduler(SchedulerSpec::ema_fast(0.5))
        .run()
        .expect("ema");
    Row {
        default_rebuf_s: default.mean_rebuffer_per_user_s(),
        rtma_rebuf_s: rtma.mean_rebuffer_per_user_s(),
        default_kj: default.total_energy_kj(),
        ema_kj: ema.total_energy_kj(),
    }
}

fn table_of(x_label: &str, xs: &[f64], rows: Vec<Row>) -> Table {
    let mut t = Table::new(vec![
        x_label.to_string(),
        "default_rebuf_s".into(),
        "rtma_rebuf_s".into(),
        "default_kj".into(),
        "ema_v0.5_kj".into(),
    ]);
    for (x, r) in xs.iter().zip(rows) {
        t.push(vec![
            *x,
            r.default_rebuf_s,
            r.rtma_rebuf_s,
            r.default_kj,
            r.ema_kj,
        ]);
    }
    t
}

/// Frame-size sensitivity: the paper leaves δ to the spreading factor; the
/// headline results should not hinge on our 50 KB default.
pub fn abl_delta() -> FigureOutput {
    let deltas = [10.0, 25.0, 50.0, 100.0, 200.0];
    let cells: Vec<Scenario> = deltas
        .iter()
        .map(|&d| {
            let mut s = paper_cell(40, 350.0);
            s.delta_kb = d;
            s
        })
        .collect();
    let rows = parallel_map(&cells, 0, measure);
    FigureOutput {
        id: "abl_delta",
        title: "Sensitivity to frame size δ (KB), N=40".into(),
        table: table_of("delta_kb", &deltas, rows),
    }
}

/// RSSI noise sensitivity (the paper's "30 dBm noise" is ambiguous —
/// DESIGN.md §3): vary σ and watch the headline metrics.
pub fn abl_noise() -> FigureOutput {
    let sigmas = [0.0, 4.0, 8.0, 12.0, 16.0];
    let cells: Vec<Scenario> = sigmas
        .iter()
        .map(|&noise| {
            let mut s = paper_cell(40, 350.0);
            s.signal = SignalSpec::Sine {
                mean_dbm: -80.0,
                amplitude_db: 30.0,
                period_slots: 600.0,
                noise_std_db: noise,
            };
            s
        })
        .collect();
    let rows = parallel_map(&cells, 0, measure);
    FigureOutput {
        id: "abl_noise",
        title: "Sensitivity to RSSI noise σ (dB), N=40".into(),
        table: table_of("noise_db", &sigmas, rows),
    }
}

/// Collector fidelity: stale and noisy channel reports (real gateways read
/// RSSI from measurement reports, not ground truth).
pub fn abl_collector() -> FigureOutput {
    let configs = [(0u64, 0.0f64), (2, 0.0), (4, 2.0), (8, 4.0), (16, 8.0)];
    let cells: Vec<Scenario> = configs
        .iter()
        .map(|&(staleness, noise)| {
            let mut s = paper_cell(40, 350.0);
            s.collector = jmso_sim::CollectorSpec {
                staleness_slots: staleness,
                signal_noise_std_db: noise,
            };
            s
        })
        .collect();
    let rows = parallel_map(&cells, 0, measure);
    let xs: Vec<f64> = configs.iter().map(|&(st, _)| st as f64).collect();
    FigureOutput {
        id: "abl_collector",
        title: "Sensitivity to collector staleness (slots; noise grows with it), N=40".into(),
        table: table_of("staleness_slots", &xs, rows),
    }
}

/// Channel-model ablation: the paper's sine vs a memoryless-ish Markov
/// chain. Rows: 0 = sine, 1 = Markov.
pub fn abl_signal() -> FigureOutput {
    let cells: Vec<Scenario> = vec![paper_cell(40, 350.0), {
        let mut s = paper_cell(40, 350.0);
        s.signal = SignalSpec::Markov {
            min_dbm: -110.0,
            max_dbm: -50.0,
            levels: 16,
            move_prob: 0.3,
        };
        s
    }];
    let rows = parallel_map(&cells, 0, measure);
    FigureOutput {
        id: "abl_signal",
        title: "Channel model ablation (row 0 = paper sine, row 1 = Markov chain), N=40".into(),
        table: table_of("model_idx", &[0.0, 1.0], rows),
    }
}

/// EMA tail-pricing ablation: literal Eq. (5) per-slot increment vs the
/// gap-amortized variant, across V.
pub fn abl_tail() -> FigureOutput {
    let vs = [0.1, 0.5, 2.0, 8.0];
    let scenario = paper_cell(40, 350.0);
    let cells: Vec<(f64, TailPricing)> = vs
        .iter()
        .flat_map(|&v| {
            [
                (v, TailPricing::PerSlot),
                (v, TailPricing::amortized_default()),
            ]
        })
        .collect();
    let results = parallel_map(&cells, 0, |(v, tail)| {
        scenario
            .with_scheduler(SchedulerSpec::EmaFast {
                v: *v,
                tail: *tail,
                pc_clamp: None,
            })
            .run()
            .expect("ema run")
    });
    let mut t = Table::new(vec![
        "v",
        "perslot_kj",
        "perslot_rebuf_s",
        "amortized_kj",
        "amortized_rebuf_s",
    ]);
    for (i, &v) in vs.iter().enumerate() {
        let per = &results[2 * i];
        let amo = &results[2 * i + 1];
        t.push(vec![
            v,
            per.total_energy_kj(),
            per.mean_rebuffer_per_user_s(),
            amo.total_energy_kj(),
            amo.mean_rebuffer_per_user_s(),
        ]);
    }
    FigureOutput {
        id: "abl_tail",
        title: "EMA idle-slot pricing: literal Eq. (5) vs gap-amortized, N=40".into(),
        table: t,
    }
}

/// RRC-profile ablation: the paper's 3G machine vs the LTE two-state
/// profile ("we can obtain similar results in LTE networks", §VI).
/// Rows: 0 = 3G, 1 = LTE.
pub fn abl_lte() -> FigureOutput {
    let cells: Vec<Scenario> = vec![paper_cell(40, 350.0), {
        let mut s = paper_cell(40, 350.0);
        s.models.rrc = jmso_radio::RrcConfig::lte();
        s
    }];
    let rows = parallel_map(&cells, 0, measure);
    FigureOutput {
        id: "abl_lte",
        title: "RRC profile ablation (row 0 = 3G, row 1 = LTE), N=40".into(),
        table: table_of("profile_idx", &[0.0, 1.0], rows),
    }
}

/// Slot-model fidelity: compare Eq. (3)'s slot-level energy against a
/// frame-by-frame simulation with the signal drifting *within* each slot
/// along the paper's sine. The paper's slot aggregation is sound exactly
/// when this error is negligible.
pub fn abl_frames() -> FigureOutput {
    use jmso_radio::{Dbm, FrameLevelLink};
    let link = FrameLevelLink::paper(50.0);
    // The paper's sine: −80 ± 30 dBm over 600 slots. Within-slot drift at
    // slot n is sig(n+1) − sig(n); measure the energy aggregation error at
    // representative phases and shard sizes.
    let sig = |n: f64| -80.0 + 30.0 * (std::f64::consts::TAU * n / 600.0).sin();
    let mut t = Table::new(vec![
        "phase_slots",
        "sig_dbm",
        "drift_db_per_slot",
        "err_500kb_pct",
        "err_2300kb_pct",
    ]);
    for phase in [0.0, 75.0, 150.0, 225.0, 300.0, 450.0] {
        let s0 = sig(phase);
        let s1 = sig(phase + 1.0);
        t.push(vec![
            phase,
            s0,
            s1 - s0,
            100.0 * link.aggregation_error(Dbm(s0), Dbm(s1), 500.0),
            100.0 * link.aggregation_error(Dbm(s0), Dbm(s1), 2300.0),
        ]);
    }
    FigureOutput {
        id: "abl_frames",
        title: "Slot-model energy error vs frame-level simulation (paper sine drift)".into(),
        table: t,
    }
}

/// Workload ablation: CBR vs ±25 % VBR segments. Rows: 0 = CBR, 1 = VBR.
pub fn abl_vbr() -> FigureOutput {
    let cells: Vec<Scenario> = vec![paper_cell(40, 350.0), {
        let mut s = paper_cell(40, 350.0);
        s.workload = WorkloadSpec {
            vbr_levels: Some(vec![0.75, 1.25, 1.0, 0.85, 1.15]),
            ..WorkloadSpec::paper_default().with_mean_size_mb(350.0)
        };
        s
    }];
    let rows = parallel_map(&cells, 0, measure);
    FigureOutput {
        id: "abl_vbr",
        title: "Workload ablation (row 0 = CBR, row 1 = ±25 % VBR), N=40".into(),
        table: table_of("workload_idx", &[0.0, 1.0], rows),
    }
}
