//! Criterion-free hot-path smoke bench.
//!
//! Runs one paper-default 40-user cell (10 000 slots, τ = 1 s, S = 20 MB/s)
//! per scheduler and prints one JSON line per row:
//!
//! ```text
//! {"sched": "EMA(V=1)", "slots_per_sec": 123456.7}
//! ```
//!
//! The output is recorded as `BENCH_PR1.json` at the repo root so slot-loop
//! regressions show up as a diff, without the Criterion machinery (or its
//! multi-minute runtime). Timings cover the full `Engine::run` hot path —
//! collector snapshot, scheduler allocate, transmitter delivery, receiver
//! playback — which is zero-allocation per slot after warm-up.

use jmso_bench::common::paper_cell;
use jmso_sim::SchedulerSpec;
use std::time::Instant;

fn main() {
    let specs = [
        SchedulerSpec::Default,
        SchedulerSpec::RtmaUnbounded,
        SchedulerSpec::Rtma { phi_mj: 900.0 },
        SchedulerSpec::ema_dp(1.0),
        SchedulerSpec::ema_fast(1.0),
        SchedulerSpec::throttling_default(),
        SchedulerSpec::onoff_default(),
        SchedulerSpec::salsa_default(),
        SchedulerSpec::estreamer_default(),
        SchedulerSpec::RoundRobin,
        SchedulerSpec::pf_default(),
    ];
    for spec in specs {
        let scenario = paper_cell(40, 375.0)
            .with_seed(42)
            .with_scheduler(spec.clone());
        let start = Instant::now();
        let result = scenario.run().expect("hotpath run");
        let elapsed = start.elapsed().as_secs_f64();
        let slots_per_sec = (result.slots_run as f64 / elapsed * 10.0).round() / 10.0;
        println!(
            "{{\"sched\": {}, \"slots_per_sec\": {slots_per_sec}}}",
            serde_json::to_string(&spec.label()).expect("label serializes"),
        );
    }
}
