//! Criterion-free hot-path smoke bench.
//!
//! Runs one paper-default 40-user cell (10 000 slots, τ = 1 s, S = 20 MB/s)
//! per scheduler and prints one JSON line per row:
//!
//! ```text
//! {"sched": "EMA(V=1)", "slots_per_sec": 123456.7}
//! ```
//!
//! The output is recorded as `BENCH_PR6.json` at the repo root so slot-loop
//! regressions show up as a diff, without the Criterion machinery (or its
//! multi-minute runtime); `scripts/bench-regress.sh` diffs a fresh run
//! against that baseline. Timings cover the full `Engine::run` hot path —
//! collector snapshot, scheduler allocate, transmitter delivery, receiver
//! playback — which is zero-allocation per slot after warm-up.
//!
//! Every scenario row reports the **best of ten** runs (criterion-style
//! minimum, not mean; `HOTPATH_REPS` overrides, `HOTPATH_VERBOSE` prints
//! every rep). A single-run row is a lottery on this box: the first run
//! in a fresh process is fast, the second is reliably the *slowest*
//! (allocator and branch-predictor state from run one is the worst case),
//! later runs wander within a ±8 % noise band, and the wandering takes
//! ~5–10 reps to visit its floor. The minimum is the stable,
//! reproducible statistic and is what the regression gate compares.
//!
//! Beyond the per-scheduler paper cells, three rows target the active-set
//! engine specifically: a **late-phase** cell whose 8 MB–3.2 GB video mix
//! retires ~80 % of its 40 sessions in the first half of the horizon
//! (timed through both `run` and the all-users `run_reference` loop, so
//! the retirement speedup is visible as a ratio in one file), and a
//! four-cell multicell run exercising the membership-list context build.
//! A **traced** Default row runs the same cell under a capturing
//! `TraceRecorder`, so the telemetry subsystem's overhead is visible as a
//! ratio against the plain Default row.

use jmso_bench::common::paper_cell;
use jmso_gateway::{SlotContext, UserSnapshot};
use jmso_radio::rrc::RrcState;
use jmso_radio::Dbm;
use jmso_sched::ema::{slot_users, solve_dp_with, DpScratch, SlotUser};
use jmso_sched::ema_fast::{solve_greedy_with, GreedyScratch};
use jmso_sched::lyapunov::VirtualQueues;
use jmso_sched::{CrossLayerModels, EmaCost};
use jmso_sim::{
    AbrPolicy, AbrSpec, AdmissionSpec, ArrivalSpec, BitrateLadder, Diurnal, FaultEvent, FaultSpec,
    MultiCellScenario, NullRecorder, Scenario, SchedulerSpec, SessionLength, TraceRecorder,
    WorkerPool,
};
use std::hint::black_box;
use std::time::Instant;

/// The paper cell with a bimodal-ish workload: sizes uniform in
/// 8 MB–3.2 GB at 300–600 KB/s, so most sessions finish mid-run while
/// the largest videos keep the cell busy to the end.
fn late_phase_cell() -> Scenario {
    let mut s = paper_cell(40, 375.0).with_seed(42);
    s.workload.size_range_kb = (8_000.0, 3_200_000.0);
    s
}

/// Two 40-user participant sets for the solver micro rows, identical but
/// for user 0's queue value (so alternating them defeats the DP's
/// warm-start cache and every call is a cold solve).
fn micro_parts() -> (Vec<SlotUser>, Vec<SlotUser>) {
    let snaps: Vec<UserSnapshot> = (0..40)
        .map(|id| {
            let phase = id as f64 / 40.0;
            UserSnapshot {
                id,
                signal: Dbm(-110.0 + 60.0 * phase),
                rate_kbps: 300.0 + 300.0 * phase,
                buffer_s: 30.0 * phase,
                remaining_kb: 1e8,
                active: true,
                link_cap_units: ((65.8 * (-110.0 + 60.0 * phase) + 7567.0) / 50.0).max(0.0) as u64,
                idle_s: 3.0 * phase,
                rrc_state: RrcState::Dch,
            }
        })
        .collect();
    let ctx = SlotContext {
        slot: 500,
        tau: 1.0,
        delta_kb: 50.0,
        bs_cap_units: 400,
        users: &snaps,
        soa: None,
    };
    let models = CrossLayerModels::paper();
    let cost = EmaCost::new(1.0, &models, &ctx);
    let mut queues = VirtualQueues::new(40);
    for i in 0..40 {
        // Mixed pressure: some users starved (positive PC), some surplus.
        queues.update(i, 1.0, (i % 5) as f64 * 0.6);
    }
    let parts_a = slot_users(&cost, &ctx, &queues);
    queues.update(0, 0.5, 0.0);
    let parts_b = slot_users(&cost, &ctx, &queues);
    (parts_a, parts_b)
}

/// Row filter: `hotpath <substring>` runs only the rows whose label
/// contains the substring (no argument runs everything). This is the
/// profiling entry point `scripts/profile.sh` uses to pin one row under
/// the profiler without paying for the rest of the suite.
fn row_enabled(label: &str) -> bool {
    match std::env::args().nth(1) {
        Some(f) => label.contains(&f),
        None => true,
    }
}

fn report(label: &str, slots_run: u64, elapsed_s: f64) {
    let slots_per_sec = (slots_run as f64 / elapsed_s * 10.0).round() / 10.0;
    println!(
        "{{\"sched\": {}, \"slots_per_sec\": {slots_per_sec}}}",
        serde_json::to_string(label).expect("label serializes"),
    );
}

/// Run `body` `HOTPATH_REPS` times (default 10) and report the fastest
/// (see module docs for why the minimum, not a single run, is the right
/// statistic on this host).
fn report_best_of(label: &str, body: impl FnMut() -> u64) {
    report_best_of_default(label, 10, body);
}

/// [`report_best_of`] with a row-specific default rep count
/// (`HOTPATH_REPS` still overrides) — the 1M-user open-system rows run
/// seconds per rep, so ten of them would dominate the whole bench.
fn report_best_of_default(label: &str, default_reps: usize, mut body: impl FnMut() -> u64) {
    if !row_enabled(label) {
        return;
    }
    let reps: usize = std::env::var("HOTPATH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_reps);
    let mut slots_run = 0;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        slots_run = body();
        let rep = start.elapsed().as_secs_f64();
        if std::env::var("HOTPATH_VERBOSE").is_ok() {
            eprintln!("  {label}: rep {:.1} slots/s", slots_run as f64 / rep);
        }
        best = best.min(rep);
    }
    report(label, slots_run, best);
}

fn main() {
    let specs = [
        SchedulerSpec::Default,
        SchedulerSpec::RtmaUnbounded,
        SchedulerSpec::rtma(900.0),
        SchedulerSpec::ema_dp(1.0),
        SchedulerSpec::ema_fast(1.0),
        SchedulerSpec::throttling_default(),
        SchedulerSpec::onoff_default(),
        SchedulerSpec::salsa_default(),
        SchedulerSpec::estreamer_default(),
        SchedulerSpec::RoundRobin,
        SchedulerSpec::pf_default(),
    ];
    for spec in specs {
        let scenario = paper_cell(40, 375.0)
            .with_seed(42)
            .with_scheduler(spec.clone());
        // The DP row runs ~10× slower than the rest, which makes its
        // best-of-N the most noise-prone statistic in the suite (the
        // BENCH_PR8 snapshot recorded it 32% low during a host-wide slow
        // period — see DESIGN.md §7); double its reps so one quiet
        // window is enough to land on the true floor.
        let reps = if spec.label().starts_with("EMA(") {
            20
        } else {
            10
        };
        report_best_of_default(&spec.label(), reps, || {
            scenario.run().expect("hotpath run").slots_run
        });
    }

    let late = late_phase_cell();
    report_best_of("late-phase Default", || {
        late.run().expect("late-phase run").slots_run
    });
    report_best_of("late-phase Default (reference)", || {
        late.run_reference()
            .expect("late-phase reference run")
            .slots_run
    });

    // The EMA solvers on the same retiring workload: the late phase is
    // where the active-set engine shrinks P, so these rows isolate how the
    // DP's table reductions and the greedy's take-all path scale as the
    // cell drains (versus the full-cell rows above).
    for spec in [SchedulerSpec::ema_dp(1.0), SchedulerSpec::ema_fast(1.0)] {
        let late = late_phase_cell().with_scheduler(spec.clone());
        report_best_of(&format!("late-phase {}", spec.label()), || {
            late.run().expect("late-phase EMA run").slots_run
        });
    }

    // Solver micro rows: one representative contended slot (P = 40,
    // C = 400, mixed starved/surplus queues), solved repeatedly. The DP
    // row alternates two inputs differing in one queue value so every call
    // takes the cold path (the warm-start cache would otherwise return the
    // previous answer); the greedy row prices the take-all fast path. The
    // reported number is solver calls per second.
    if row_enabled("micro") {
        let (parts_a, parts_b) = micro_parts();
        let mut scratch = DpScratch::default();
        let iters = 20_000u64;
        let start = Instant::now();
        for i in 0..iters {
            let parts = if i % 2 == 0 { &parts_a } else { &parts_b };
            black_box(solve_dp_with(black_box(parts), 400, &mut scratch));
        }
        report(
            "micro solve_dp (P=40,C=400)",
            iters,
            start.elapsed().as_secs_f64(),
        );

        let mut greedy = GreedyScratch::default();
        let iters = 2_000_000u64;
        let start = Instant::now();
        for i in 0..iters {
            let parts = if i % 2 == 0 { &parts_a } else { &parts_b };
            black_box(solve_greedy_with(black_box(parts), 400, &mut greedy));
        }
        report(
            "micro solve_greedy (P=40,C=400)",
            iters,
            start.elapsed().as_secs_f64(),
        );
    }

    // Telemetry overhead row: the same Default cell with a capturing
    // TraceRecorder attached (every slot). The per-scheduler rows above
    // all run the NullRecorder path, so the traced/untraced ratio bounds
    // the recorder's cost on the hot loop.
    let scenario = paper_cell(40, 375.0).with_seed(42);
    report_best_of("Default (traced)", || {
        let mut rec = TraceRecorder::new();
        scenario.run_with(&mut rec).expect("traced run").slots_run
    });

    // Fault-injection overhead row: the same Default cell with an active
    // declared fault plan (deep fade, link outage, a capacity dip, one
    // departure, one late arrival). The rows above all run the NoFaults
    // path — which monomorphizes to the plain loop — so the faulted /
    // plain ratio bounds the enabled FaultHook's cost on the hot loop.
    let mut scenario = paper_cell(40, 375.0).with_seed(42);
    scenario.faults = FaultSpec::Declared {
        events: vec![
            FaultEvent::DeepFade {
                user: 3,
                from_slot: 1_000,
                until_slot: 3_000,
                depth_db: 20.0,
            },
            FaultEvent::LinkOutage {
                user: 7,
                from_slot: 2_000,
                until_slot: 4_000,
            },
            FaultEvent::CapDegradation {
                from_slot: 5_000,
                until_slot: 7_000,
                factor: 0.6,
            },
            FaultEvent::Departure {
                user: 11,
                slot: 6_000,
            },
            FaultEvent::LateArrival {
                user: 5,
                delay_slots: 500,
            },
        ],
    };
    report_best_of("Default + faults", || {
        scenario.run().expect("faulted run").slots_run
    });

    // ABR overhead row: the same Default cell with a three-rung ladder
    // under the buffer-based policy. The per-scheduler rows all run the
    // constant-bitrate path, so the ABR / plain ratio bounds what chunk
    // accounting, rung decisions and session rescaling add per slot.
    let mut scenario = paper_cell(40, 375.0).with_seed(42);
    scenario.abr = Some(AbrSpec {
        ladder: BitrateLadder {
            multipliers: vec![0.5, 0.75, 1.0],
        },
        chunk_slots: 4,
        policy: AbrPolicy::BufferBased {
            low_s: 4.0,
            high_s: 12.0,
        },
        initial_rung: None,
    });
    report_best_of("Default + ABR", || {
        scenario.run().expect("abr run").slots_run
    });

    // Admission overhead row: a 1 000-user open-system cell whose Poisson
    // arrivals all pass through the feasibility controller. Prices the
    // end-of-slot admission tick on the incrementally-maintained
    // `n_active`/`rate_sum` aggregates (O(1) per candidate), plus the
    // arrival-gated live lists that skip not-yet-arrived users entirely.
    let mut scenario = paper_cell(1_000, 375.0).with_seed(42);
    scenario.slots = 2_000;
    scenario.arrivals = ArrivalSpec::Poisson {
        mean_interval_slots: 1.0,
        diurnal: None,
        session_slots: Some(SessionLength::Exponential { mean_slots: 200.0 }),
    };
    scenario.admission = Some(AdmissionSpec::Feasibility {
        v: 1.0,
        omega_s: None,
        phi_mj: None,
        max_defer_slots: 30,
    });
    report_best_of_default("open-system + admission", 3, || {
        scenario.run().expect("admission run").slots_run
    });

    let mc = MultiCellScenario {
        base: paper_cell(40, 375.0).with_seed(42),
        n_cells: 4,
        handover_prob: 0.05,
    };
    report_best_of("multicell Default x4", || {
        mc.run().expect("multicell run").result.slots_run
    });

    // The same four-cell run on the lockstep worker-pool stepper (one
    // participant per cell, clamped to the machine): the serial/parallel
    // ratio shows what the per-slot barrier protocol buys on this host.
    report_best_of("multicell Default x4 (parallel)", || {
        mc.run_parallel(4)
            .expect("parallel multicell run")
            .result
            .slots_run
    });

    // Sweep-runner row: a 32-cell Default grid on 8 worker-pool threads.
    // Slots aggregate over every cell, so this prices the persistent
    // pool's dispatch plus the chunked-cursor queue, not just one run.
    let grid: Vec<Scenario> = (0..32)
        .map(|i| {
            let mut s = paper_cell(10, 375.0).with_seed(42 + i as u64);
            s.slots = 2_000;
            s
        })
        .collect();
    report_best_of("sweep 8-thread", || {
        let results = jmso_sim::run_scenarios(&grid, 8).expect("sweep run");
        results.iter().map(|r| r.slots_run).sum()
    });

    // Open-system rows: a 1M-user cell under Poisson churn (diurnal rate
    // curve, exponential session truncation) on the sharded engine, timed
    // over a short horizon (the per-slot cost is stationary once the
    // population ramp is underway, so 160 slots price the loop without
    // hour-long reps). shards=1 falls back to the serial loop; wider rows
    // run the lockstep shard protocol on a local pool of that width. On a
    // single-core host every width collapses to roughly serial throughput
    // (the barrier phases serialize on one CPU) — the rows exist so the
    // recorded scaling stays honest per machine rather than extrapolated.
    let mut open = paper_cell(1_000_000, 375.0).with_seed(42);
    open.slots = 160;
    open.arrivals = ArrivalSpec::Poisson {
        mean_interval_slots: 0.01,
        diurnal: Some(Diurnal {
            period_slots: 5_000,
            depth: 0.5,
        }),
        session_slots: Some(SessionLength::Exponential { mean_slots: 200.0 }),
    };
    for shards in [1usize, 4, 8] {
        let pool = WorkerPool::new(shards.saturating_sub(1));
        report_best_of_default(&format!("open-system 1M (shards={shards})"), 3, || {
            let mut rec = NullRecorder;
            open.run_sharded_on(&pool, shards, &mut rec)
                .expect("open-system run")
                .slots_run
        });
    }
}
