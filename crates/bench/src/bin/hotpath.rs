//! Criterion-free hot-path smoke bench.
//!
//! Runs one paper-default 40-user cell (10 000 slots, τ = 1 s, S = 20 MB/s)
//! per scheduler and prints one JSON line per row:
//!
//! ```text
//! {"sched": "EMA(V=1)", "slots_per_sec": 123456.7}
//! ```
//!
//! The output is recorded as `BENCH_PR5.json` at the repo root so slot-loop
//! regressions show up as a diff, without the Criterion machinery (or its
//! multi-minute runtime); `scripts/bench-regress.sh` diffs a fresh run
//! against that baseline. Timings cover the full `Engine::run` hot path —
//! collector snapshot, scheduler allocate, transmitter delivery, receiver
//! playback — which is zero-allocation per slot after warm-up.
//!
//! Beyond the per-scheduler paper cells, three rows target the active-set
//! engine specifically: a **late-phase** cell whose 8 MB–3.2 GB video mix
//! retires ~80 % of its 40 sessions in the first half of the horizon
//! (timed through both `run` and the all-users `run_reference` loop, so
//! the retirement speedup is visible as a ratio in one file), and a
//! four-cell multicell run exercising the membership-list context build.
//! A **traced** Default row runs the same cell under a capturing
//! `TraceRecorder`, so the telemetry subsystem's overhead is visible as a
//! ratio against the plain Default row.

use jmso_bench::common::paper_cell;
use jmso_sim::{FaultEvent, FaultSpec, MultiCellScenario, Scenario, SchedulerSpec, TraceRecorder};
use std::time::Instant;

/// The paper cell with a bimodal-ish workload: sizes uniform in
/// 8 MB–3.2 GB at 300–600 KB/s, so most sessions finish mid-run while
/// the largest videos keep the cell busy to the end.
fn late_phase_cell() -> Scenario {
    let mut s = paper_cell(40, 375.0).with_seed(42);
    s.workload.size_range_kb = (8_000.0, 3_200_000.0);
    s
}

fn report(label: &str, slots_run: u64, elapsed_s: f64) {
    let slots_per_sec = (slots_run as f64 / elapsed_s * 10.0).round() / 10.0;
    println!(
        "{{\"sched\": {}, \"slots_per_sec\": {slots_per_sec}}}",
        serde_json::to_string(label).expect("label serializes"),
    );
}

fn main() {
    let specs = [
        SchedulerSpec::Default,
        SchedulerSpec::RtmaUnbounded,
        SchedulerSpec::rtma(900.0),
        SchedulerSpec::ema_dp(1.0),
        SchedulerSpec::ema_fast(1.0),
        SchedulerSpec::throttling_default(),
        SchedulerSpec::onoff_default(),
        SchedulerSpec::salsa_default(),
        SchedulerSpec::estreamer_default(),
        SchedulerSpec::RoundRobin,
        SchedulerSpec::pf_default(),
    ];
    for spec in specs {
        let scenario = paper_cell(40, 375.0)
            .with_seed(42)
            .with_scheduler(spec.clone());
        let start = Instant::now();
        let result = scenario.run().expect("hotpath run");
        report(
            &spec.label(),
            result.slots_run,
            start.elapsed().as_secs_f64(),
        );
    }

    let late = late_phase_cell();
    let start = Instant::now();
    let result = late.run().expect("late-phase run");
    report(
        "late-phase Default",
        result.slots_run,
        start.elapsed().as_secs_f64(),
    );
    let start = Instant::now();
    let result = late.run_reference().expect("late-phase reference run");
    report(
        "late-phase Default (reference)",
        result.slots_run,
        start.elapsed().as_secs_f64(),
    );

    // Telemetry overhead row: the same Default cell with a capturing
    // TraceRecorder attached (every slot). The per-scheduler rows above
    // all run the NullRecorder path, so the traced/untraced ratio bounds
    // the recorder's cost on the hot loop.
    let scenario = paper_cell(40, 375.0).with_seed(42);
    let mut rec = TraceRecorder::new();
    let start = Instant::now();
    let result = scenario.run_with(&mut rec).expect("traced run");
    report(
        "Default (traced)",
        result.slots_run,
        start.elapsed().as_secs_f64(),
    );

    // Fault-injection overhead row: the same Default cell with an active
    // declared fault plan (deep fade, link outage, a capacity dip, one
    // departure, one late arrival). The rows above all run the NoFaults
    // path — which monomorphizes to the plain loop — so the faulted /
    // plain ratio bounds the enabled FaultHook's cost on the hot loop.
    let mut scenario = paper_cell(40, 375.0).with_seed(42);
    scenario.faults = FaultSpec::Declared {
        events: vec![
            FaultEvent::DeepFade {
                user: 3,
                from_slot: 1_000,
                until_slot: 3_000,
                depth_db: 20.0,
            },
            FaultEvent::LinkOutage {
                user: 7,
                from_slot: 2_000,
                until_slot: 4_000,
            },
            FaultEvent::CapDegradation {
                from_slot: 5_000,
                until_slot: 7_000,
                factor: 0.6,
            },
            FaultEvent::Departure {
                user: 11,
                slot: 6_000,
            },
            FaultEvent::LateArrival {
                user: 5,
                delay_slots: 500,
            },
        ],
    };
    let start = Instant::now();
    let result = scenario.run().expect("faulted run");
    report(
        "Default + faults",
        result.slots_run,
        start.elapsed().as_secs_f64(),
    );

    let mc = MultiCellScenario {
        base: paper_cell(40, 375.0).with_seed(42),
        n_cells: 4,
        handover_prob: 0.05,
    };
    let start = Instant::now();
    let result = mc.run().expect("multicell run");
    report(
        "multicell Default x4",
        result.result.slots_run,
        start.elapsed().as_secs_f64(),
    );

    // The same four-cell run on the lockstep worker-pool stepper (one
    // participant per cell, clamped to the machine): the serial/parallel
    // ratio shows what the per-slot barrier protocol buys on this host.
    let start = Instant::now();
    let result = mc.run_parallel(4).expect("parallel multicell run");
    report(
        "multicell Default x4 (parallel)",
        result.result.slots_run,
        start.elapsed().as_secs_f64(),
    );

    // Sweep-runner row: a 32-cell Default grid on 8 worker-pool threads.
    // Slots aggregate over every cell, so this prices the persistent
    // pool's dispatch plus the chunked-cursor queue, not just one run.
    let grid: Vec<Scenario> = (0..32)
        .map(|i| {
            let mut s = paper_cell(10, 375.0).with_seed(42 + i as u64);
            s.slots = 2_000;
            s
        })
        .collect();
    let start = Instant::now();
    let results = jmso_sim::run_scenarios(&grid, 8).expect("sweep run");
    let total_slots: u64 = results.iter().map(|r| r.slots_run).sum();
    report("sweep 8-thread", total_slots, start.elapsed().as_secs_f64());
}
