//! `repro` — regenerate the paper's evaluation figures.
//!
//! ```text
//! repro <figure-id>...   regenerate specific figures (fig2 … fig10, headline)
//! repro all              regenerate everything
//! repro --list           list available figure ids
//! ```
//!
//! Each figure prints its series as an aligned table and writes
//! `results/<id>.csv` relative to the working directory. Pass `--chart`
//! to also render each sweep figure as an ASCII line chart, and `--svg`
//! to write `results/<id>.svg` figures.

use jmso_bench::{generate, ALL_ABLATIONS, ALL_FIGURES};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro <figure-id>... | all | ablations | --list");
        eprintln!("figure ids: {}", ALL_FIGURES.join(" "));
        return ExitCode::from(2);
    }
    if args.iter().any(|a| a == "--list") {
        for id in ALL_FIGURES.iter().chain(ALL_ABLATIONS) {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let chart = args.iter().any(|a| a == "--chart");
    let svg = args.iter().any(|a| a == "--svg");
    let mut ids: Vec<&str> = Vec::new();
    for a in &args {
        match a.as_str() {
            "all" => ids.extend_from_slice(ALL_FIGURES),
            "ablations" => ids.extend_from_slice(ALL_ABLATIONS),
            "--chart" | "--svg" => {}
            other => ids.push(other),
        }
    }

    let out_dir = PathBuf::from("results");
    let mut failed = false;
    for id in ids {
        let t0 = std::time::Instant::now();
        match generate(id) {
            None => {
                eprintln!("unknown figure id `{id}` (try --list)");
                failed = true;
            }
            Some(outputs) => {
                for fig in outputs {
                    println!("{}", fig.to_text());
                    if chart {
                        let rendered = jmso_sim::ascii_chart(&fig.table, 64, 16);
                        if !rendered.is_empty() {
                            println!("{rendered}");
                        }
                    }
                    let path = out_dir.join(format!("{}.csv", fig.id));
                    match fig.table.write_csv(&path) {
                        Ok(()) => println!("wrote {} ({:.1?})\n", path.display(), t0.elapsed()),
                        Err(e) => {
                            eprintln!("failed to write {}: {e}", path.display());
                            failed = true;
                        }
                    }
                    if svg {
                        let doc = jmso_sim::svg_chart(&fig.table, &fig.title, 720, 420);
                        if !doc.is_empty() {
                            let path = out_dir.join(format!("{}.svg", fig.id));
                            match std::fs::write(&path, doc) {
                                Ok(()) => println!("wrote {}", path.display()),
                                Err(e) => {
                                    eprintln!("failed to write {}: {e}", path.display());
                                    failed = true;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
