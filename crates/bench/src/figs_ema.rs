//! EMA evaluation figures (paper Figs. 6–9).

use crate::common::{
    cdf_table, paper_cell, stats_over_seeds, FigureOutput, SIZE_SWEEP, USER_SWEEP,
};
use jmso_sim::report::Table;
use jmso_sim::{
    calibrate_default, fit_v_for_omega, parallel_map, Scenario, SchedulerSpec, SimResult,
};

/// Bisection bracket/steps for the Ω → V fit (see `sim::fit_v_for_omega`).
const V_LO: f64 = 0.02;
const V_HI: f64 = 100.0;
const V_ITERS: u32 = 9;

/// EMA spec meeting the rebuffering bound β·R_Default on this scenario.
fn ema_spec_for_beta(scenario: &Scenario, beta: f64) -> SchedulerSpec {
    let cal = calibrate_default(scenario).expect("calibration");
    let omega = cal.omega_for_beta(beta);
    let (v, _) = fit_v_for_omega(scenario, omega, V_LO, V_HI, V_ITERS).expect("fit V");
    SchedulerSpec::ema_fast(v)
}

/// EMA spec meeting an explicit per-active-slot rebuffering bound.
fn ema_spec_for_omega(scenario: &Scenario, omega_s: f64) -> SchedulerSpec {
    let (v, _) = fit_v_for_omega(scenario, omega_s, V_LO, V_HI, V_ITERS).expect("fit V");
    SchedulerSpec::ema_fast(v)
}

fn cdf_cell() -> Scenario {
    let mut s = paper_cell(40, 350.0);
    s.record_series = true;
    s
}

fn run_pair(scenario: &Scenario, spec: SchedulerSpec) -> (SimResult, SimResult) {
    let cells = [scenario.clone(), scenario.with_scheduler(spec)];
    let mut out = parallel_map(&cells[..], 0, |s| s.run().expect("cdf run")).into_iter();
    (out.next().unwrap(), out.next().unwrap())
}

/// Fig. 6 — CDF of the per-slot Jain fairness index, Default vs EMA
/// (N = 40, 350 MB, β = 1).
pub fn fig6() -> FigureOutput {
    let scenario = cdf_cell();
    let spec = ema_spec_for_beta(&scenario, 1.0);
    let (default, ema) = run_pair(&scenario, spec);
    FigureOutput {
        id: "fig6",
        title: "CDF of per-slot Jain fairness index (N=40, 350 MB, β=1)".into(),
        table: cdf_table(
            "fairness",
            vec![
                ("default", default.fairness_series),
                ("ema", ema.fairness_series),
                ("default_w10", default.fairness_window_series),
                ("ema_w10", ema.fairness_window_series),
            ],
            41,
        ),
    }
}

/// Fig. 7 — CDF of per-slot total power (J across all users), Default vs
/// EMA (N = 40, 350 MB, β = 1). Only slots with any active session are
/// compared (after every session ends the series is all-zero padding).
pub fn fig7() -> FigureOutput {
    let scenario = cdf_cell();
    let spec = ema_spec_for_beta(&scenario, 1.0);
    let (default, ema) = run_pair(&scenario, spec);
    let live = |r: &SimResult| -> Vec<f64> {
        r.power_series_j
            .iter()
            .copied()
            .filter(|p| *p > 1e-9)
            .collect()
    };
    FigureOutput {
        id: "fig7",
        title: "CDF of per-slot total power (J), Default vs EMA (N=40, β=1)".into(),
        table: cdf_table(
            "power_j",
            vec![("default", live(&default)), ("ema", live(&ema))],
            41,
        ),
    }
}

/// Shared body of Figs. 8a/8b: total energy (kJ), Default vs EMA at
/// β ∈ {1.2, 1, 0.8}.
fn fig8_body(
    id: &'static str,
    title: String,
    x_label: &str,
    cells: Vec<(f64, Scenario)>,
) -> FigureOutput {
    let rows = parallel_map(&cells, 0, |(x, scenario)| {
        let run = |spec: SchedulerSpec| stats_over_seeds(scenario, &spec).energy_total_kj;
        vec![
            *x,
            run(SchedulerSpec::Default),
            run(ema_spec_for_beta(scenario, 1.2)),
            run(ema_spec_for_beta(scenario, 1.0)),
            run(ema_spec_for_beta(scenario, 0.8)),
        ]
    });
    let mut table = Table::new(vec![
        x_label.to_string(),
        "default".into(),
        "ema_b1.2".into(),
        "ema_b1.0".into(),
        "ema_b0.8".into(),
    ]);
    for row in rows {
        table.push(row);
    }
    FigureOutput { id, title, table }
}

/// Fig. 8a — total energy (kJ) vs user number, EMA β ∈ {1.2, 1.0, 0.8}.
pub fn fig8a() -> FigureOutput {
    let cells = USER_SWEEP
        .iter()
        .map(|&n| (n as f64, paper_cell(n, 350.0)))
        .collect();
    fig8_body(
        "fig8a",
        "Total energy (kJ) vs user number, EMA β ∈ {1.2, 1.0, 0.8}".into(),
        "users",
        cells,
    )
}

/// Fig. 8b — total energy (kJ) vs mean data amount (MB), N=30.
pub fn fig8b() -> FigureOutput {
    let cells = SIZE_SWEEP
        .iter()
        .map(|&mb| (mb, paper_cell(30, mb)))
        .collect();
    fig8_body(
        "fig8b",
        "Total energy (kJ) vs data amount (MB), N=30, EMA β ∈ {1.2, 1.0, 0.8}".into(),
        "data_mb",
        cells,
    )
}

/// Figs. 9a/9b — Default vs SALSA vs EStreamer vs EMA (Ω = EStreamer's
/// rebuffering) over the user sweep: (a) energy per active user-slot (mJ),
/// (b) rebuffering per active user-slot (ms).
pub fn fig9() -> (FigureOutput, FigureOutput) {
    let cells: Vec<(f64, Scenario)> = USER_SWEEP
        .iter()
        .map(|&n| (n as f64, paper_cell(n, 350.0)))
        .collect();
    let rows = parallel_map(&cells, 0, |(x, scenario)| {
        let stats = |spec: SchedulerSpec| stats_over_seeds(scenario, &spec);
        let estreamer = stats(SchedulerSpec::estreamer_default());
        // The paper sets Ω to EStreamer's measured rebuffering.
        let ema_spec = ema_spec_for_omega(scenario, estreamer.rebuf_per_active_ms / 1000.0);
        (
            *x,
            stats(SchedulerSpec::Default),
            stats(SchedulerSpec::salsa_default()),
            estreamer,
            stats(ema_spec),
        )
    });

    let mut energy = Table::new(vec!["users", "default", "salsa", "estreamer", "ema"]);
    let mut rebuf = Table::new(vec!["users", "default", "salsa", "estreamer", "ema"]);
    for (x, d, s, e, m) in rows {
        energy.push(vec![
            x,
            d.energy_per_active_mj,
            s.energy_per_active_mj,
            e.energy_per_active_mj,
            m.energy_per_active_mj,
        ]);
        rebuf.push(vec![
            x,
            d.rebuf_per_active_ms,
            s.rebuf_per_active_ms,
            e.rebuf_per_active_ms,
            m.rebuf_per_active_ms,
        ]);
    }
    (
        FigureOutput {
            id: "fig9a",
            title: "Energy per active user-slot (mJ) vs user number (Ω = EStreamer's rebuffering)"
                .into(),
            table: energy,
        },
        FigureOutput {
            id: "fig9b",
            title: "Rebuffering per active user-slot (ms) vs user number".into(),
            table: rebuf,
        },
    )
}
