//! Extension experiments beyond the paper's figures:
//!
//! * [`exp_theorem1`] — empirical validation of Theorem 1's scalings
//!   (energy gap shrinks like B/V, queue/rebuffering grows at most
//!   linearly in V);
//! * [`exp_baselines`] — RTMA/EMA against the classical cellular
//!   schedulers (round-robin, proportional-fair) the paper does not
//!   compare with, isolating the value of the cross-layer video signals;
//! * [`exp_startup`] — the startup-versus-mid-stream split of Eq. (8)'s
//!   rebuffering for every policy.

use crate::common::{paper_cell, FigureOutput};
use jmso_sched::{drift_bound_b, SchedulerSpec};
use jmso_sim::report::Table;
use jmso_sim::{calibrate_default, fit_v_for_omega, parallel_map, ArrivalSpec, MultiCellScenario};

/// Theorem 1 validation: sweep V and report the measured per-slot energy
/// `E(n)` and queue/rebuffering against the bound terms. Theorem 1 says
/// `PE∞ ≤ E* + B/V` and `PC∞ ≤ (B + V·E*)/ε`: the energy excess over the
/// best observed should shrink no slower than ∝ 1/V, and rebuffering
/// should grow at most ∝ V.
pub fn exp_theorem1() -> FigureOutput {
    let scenario = paper_cell(40, 350.0);
    let vs = [0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0];
    let results = parallel_map(&vs, 0, |&v| {
        scenario
            .with_scheduler(SchedulerSpec::ema_fast(v))
            .run()
            .expect("theorem1 run")
    });
    // t_max: the largest playback time one slot's shard can carry — the
    // best link (4 277 KB/s) at the lowest rate (300 KB/s).
    let t_max = 4277.0 / 300.0;
    let b = drift_bound_b(scenario.n_users, scenario.tau, t_max);
    // E* is unknown; the smallest measured per-slot energy upper-bounds it.
    let e_star_ub = results
        .iter()
        .map(|r| r.total_energy().total().value() / r.slots_run as f64)
        .fold(f64::INFINITY, f64::min);

    let mut t = Table::new(vec![
        "v",
        "pe_mj_per_slot",
        "pe_excess_over_best",
        "b_over_v",
        "pc_s_per_slot",
        "rebuf_per_user_s",
    ]);
    for (v, r) in vs.iter().zip(&results) {
        let pe = r.total_energy().total().value() / r.slots_run as f64;
        let pc = r.total_rebuffer_s() / r.slots_run as f64;
        t.push(vec![
            *v,
            pe,
            pe - e_star_ub,
            b / v,
            pc,
            r.mean_rebuffer_per_user_s(),
        ]);
    }
    FigureOutput {
        id: "exp_theorem1",
        title: format!(
            "Theorem 1 scalings at N=40 (B = {b:.0} s²; energy excess ≲ B/V, rebuffering ≲ ∝V)"
        ),
        table: t,
    }
}

/// RTMA/EMA vs the classical cellular schedulers (extension baselines).
pub fn exp_baselines() -> FigureOutput {
    let users = [20usize, 30, 40];
    let rows = parallel_map(&users, 0, |&n| {
        let scenario = paper_cell(n, 350.0);
        let cal = calibrate_default(&scenario).expect("calibration");
        let run = |spec: SchedulerSpec| scenario.with_scheduler(spec).run().expect("run");
        let rr = run(SchedulerSpec::RoundRobin);
        let pf = run(SchedulerSpec::pf_default());
        let rtma = run(SchedulerSpec::rtma(cal.phi_for_alpha(1.0)));
        let (v, _) =
            fit_v_for_omega(&scenario, cal.omega_for_beta(1.0), 0.02, 100.0, 9).expect("fit");
        let ema = run(SchedulerSpec::ema_fast(v));
        vec![
            n as f64,
            rr.mean_rebuffer_per_user_s(),
            pf.mean_rebuffer_per_user_s(),
            rtma.mean_rebuffer_per_user_s(),
            rr.total_energy_kj(),
            pf.total_energy_kj(),
            ema.total_energy_kj(),
        ]
    });
    let mut t = Table::new(vec![
        "users",
        "rr_rebuf_s",
        "pf_rebuf_s",
        "rtma_rebuf_s",
        "rr_kj",
        "pf_kj",
        "ema_b1_kj",
    ]);
    for row in rows {
        t.push(row);
    }
    FigureOutput {
        id: "exp_baselines",
        title: "RTMA/EMA vs classical cellular schedulers (round-robin, proportional-fair)".into(),
        table: t,
    }
}

/// Multi-cell deployment with roaming users: 4 cells of 5 MB/s each, 40
/// users total (same aggregate capacity as the paper cell), handover
/// probability swept. The framework claim under test: one scheduler
/// instance per BS still beats Default when users roam between
/// schedulers mid-session.
pub fn exp_multicell() -> FigureOutput {
    let probs = [0.0, 0.005, 0.02, 0.05];
    let rows = parallel_map(&probs, 0, |&p| {
        let mut base = paper_cell(40, 350.0);
        base.capacity = jmso_sim::CapacitySpec::Constant { kbps: 5_000.0 };
        let run = |spec: SchedulerSpec| {
            let mc = MultiCellScenario {
                base: base.with_scheduler(spec),
                n_cells: 4,
                handover_prob: p,
            };
            mc.run().expect("multicell run")
        };
        let default = run(SchedulerSpec::Default);
        let rtma = run(SchedulerSpec::RtmaUnbounded);
        let ema = run(SchedulerSpec::ema_fast(0.5));
        vec![
            p,
            default.result.mean_rebuffer_per_user_s(),
            rtma.result.mean_rebuffer_per_user_s(),
            default.result.total_energy_kj(),
            ema.result.total_energy_kj(),
            rtma.handovers as f64,
        ]
    });
    let mut t = Table::new(vec![
        "handover_prob",
        "default_rebuf_s",
        "rtma_rebuf_s",
        "default_kj",
        "ema_v0.5_kj",
        "handovers",
    ]);
    for row in rows {
        t.push(row);
    }
    FigureOutput {
        id: "exp_multicell",
        title: "4-cell deployment with roaming users (per-cell schedulers), N=40".into(),
        table: t,
    }
}

/// Staggered session arrivals: the paper synchronizes all starts; real
/// cells see churn. Sweep the mean inter-arrival gap and check the
/// headline comparisons survive desynchronization.
pub fn exp_arrivals() -> FigureOutput {
    let gaps = [0.0, 10.0, 30.0, 60.0];
    let rows = parallel_map(&gaps, 0, |&gap| {
        let mut scenario = paper_cell(40, 350.0);
        if gap > 0.0 {
            scenario.arrivals = ArrivalSpec::Staggered {
                mean_interval_slots: gap,
            };
        }
        let cal = calibrate_default(&scenario).expect("calibration");
        let run = |spec: SchedulerSpec| scenario.with_scheduler(spec).run().expect("run");
        let default = run(SchedulerSpec::Default);
        let rtma = run(SchedulerSpec::rtma(cal.phi_for_alpha(1.0)));
        let ema = run(SchedulerSpec::ema_fast(0.5));
        vec![
            gap,
            default.mean_rebuffer_per_user_s(),
            rtma.mean_rebuffer_per_user_s(),
            default.total_energy_kj(),
            ema.total_energy_kj(),
        ]
    });
    let mut t = Table::new(vec![
        "mean_gap_slots",
        "default_rebuf_s",
        "rtma_rebuf_s",
        "default_kj",
        "ema_v0.5_kj",
    ]);
    for row in rows {
        t.push(row);
    }
    FigureOutput {
        id: "exp_arrivals",
        title: "Staggered session arrivals (mean inter-arrival gap, slots), N=40".into(),
        table: t,
    }
}

/// Startup vs mid-stream split of Eq. (8)'s rebuffering per policy, N=40.
pub fn exp_startup() -> FigureOutput {
    let scenario = paper_cell(40, 350.0);
    let cal = calibrate_default(&scenario).expect("calibration");
    let specs: Vec<(f64, SchedulerSpec)> = vec![
        (0.0, SchedulerSpec::Default),
        (1.0, SchedulerSpec::rtma(cal.phi_for_alpha(1.0))),
        (2.0, SchedulerSpec::ema_fast(0.5)),
        (3.0, SchedulerSpec::onoff_default()),
        (4.0, SchedulerSpec::estreamer_default()),
        (5.0, SchedulerSpec::RoundRobin),
    ];
    let results = parallel_map(&specs, 0, |(_, spec)| {
        scenario.with_scheduler(spec.clone()).run().expect("run")
    });
    let mut t = Table::new(vec![
        "policy_idx",
        "total_rebuf_s",
        "startup_s",
        "midstream_s",
    ]);
    for ((idx, _), r) in specs.iter().zip(&results) {
        t.push(vec![
            *idx,
            r.total_rebuffer_s(),
            r.total_startup_s(),
            r.total_midstream_rebuffer_s(),
        ]);
    }
    FigureOutput {
        id: "exp_startup",
        title: "Startup vs mid-stream rebuffering split, N=40 (rows: Default, RTMA, EMA(V=0.5), ON-OFF, EStreamer, RoundRobin)".into(),
        table: t,
    }
}
