//! Ablation: the paper's Algorithm 2 DP (naive and monotone-deque forms)
//! vs our exact slope-greedy.
//!
//! All three solve the identical per-slot drift-plus-penalty problem
//! (property tests assert equal objectives); this bench quantifies two
//! structural savings across cell sizes and BS budgets:
//!
//! * `dp_reference` → `dp`: the `O(P·C·φ_max)` naive scan (the seed
//!   implementation) vs the `O(P·C)` sliding-window-minimum DP — the
//!   speedup the zero-allocation PR is measured by, including the paper
//!   scale C = 400;
//! * `dp` → `greedy`: exact DP vs the `O(P log P)` marginal-cost greedy
//!   that large sweeps run (DESIGN.md §6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jmso_gateway::{SlotContext, UserSnapshot};
use jmso_radio::rrc::RrcState;
use jmso_radio::Dbm;
use jmso_sched::ema::{slot_users, solve_dp, solve_dp_reference};
use jmso_sched::ema_fast::solve_greedy;
use jmso_sched::{CrossLayerModels, EmaCost, VirtualQueues};
use std::hint::black_box;

fn users(n: usize) -> Vec<UserSnapshot> {
    (0..n)
        .map(|id| {
            let phase = id as f64 / n.max(1) as f64;
            let sig = -110.0 + 60.0 * phase;
            UserSnapshot {
                id,
                signal: Dbm(sig),
                rate_kbps: 300.0 + 300.0 * phase,
                buffer_s: 0.0,
                remaining_kb: 1e8,
                active: true,
                link_cap_units: ((65.8 * sig + 7567.0) / 50.0).max(0.0) as u64,
                idle_s: phase,
                rrc_state: RrcState::Dch,
            }
        })
        .collect()
}

fn queues(n: usize) -> VirtualQueues {
    let mut q = VirtualQueues::new(n);
    for i in 0..n {
        // A spread of starved and surfeited users.
        q.update(i, (i as f64 % 7.0) - 3.0, 0.0);
    }
    q
}

fn bench_solvers(c: &mut Criterion) {
    let models = CrossLayerModels::paper();
    let mut group = c.benchmark_group("ema_solver");
    for &(n, budget) in &[(10usize, 100u64), (20, 200), (40, 400), (80, 400)] {
        let snaps = users(n);
        let ctx = SlotContext {
            slot: 0,
            tau: 1.0,
            delta_kb: 50.0,
            bs_cap_units: budget,
            users: &snaps,
            soa: None,
        };
        let cost = EmaCost::new(0.3, &models, &ctx);
        let q = queues(n);
        let parts = slot_users(&cost, &ctx, &q);
        let label = format!("n{n}_c{budget}");
        group.bench_with_input(BenchmarkId::new("dp_reference", &label), &(), |b, _| {
            b.iter(|| black_box(solve_dp_reference(&parts, budget)))
        });
        group.bench_with_input(BenchmarkId::new("dp", &label), &(), |b, _| {
            b.iter(|| black_box(solve_dp(&parts, budget)))
        });
        group.bench_with_input(BenchmarkId::new("greedy", &label), &(), |b, _| {
            b.iter(|| black_box(solve_greedy(&parts, budget)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
