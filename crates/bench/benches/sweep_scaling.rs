//! Parallel-sweep scaling: wall-clock of a 16-cell scenario grid at
//! 1, 2, 4 and 8 worker threads through `sim::parallel_map`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jmso_sim::{run_scenarios, Scenario, SchedulerSpec, WorkloadSpec};
use std::hint::black_box;

fn grid() -> Vec<Scenario> {
    (0..16u64)
        .map(|i| {
            let mut s = Scenario::paper_default(20 + (i as usize % 3) * 10);
            s.slots = 400;
            s.seed = i;
            s.workload = WorkloadSpec::paper_default().with_mean_size_mb(20.0);
            s.scheduler = SchedulerSpec::RtmaUnbounded;
            s
        })
        .collect()
}

fn bench_sweep(c: &mut Criterion) {
    let cells = grid();
    let mut group = c.benchmark_group("sweep_16_cells");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| black_box(run_scenarios(&cells, t).expect("sweep")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
