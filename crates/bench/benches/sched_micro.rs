//! Per-slot allocation cost of every policy as the cell fills.
//!
//! Measures one `allocate()` call on a representative congested slot for
//! N ∈ {10, 20, 40, 80} users — the quantity that bounds how many cells a
//! single gateway core can schedule in real time (slots are 1 s).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jmso_gateway::{Scheduler, SlotContext, UserSnapshot};
use jmso_radio::rrc::RrcState;
use jmso_radio::Dbm;
use jmso_sched::{
    CrossLayerModels, DefaultMax, EStreamer, Ema, EmaFast, OnOff, Rtma, Salsa, Throttling,
};
use std::hint::black_box;

fn users(n: usize) -> Vec<UserSnapshot> {
    (0..n)
        .map(|id| {
            // A deterministic spread of signals/rates/buffers resembling a
            // mid-run slot of the paper scenario.
            let phase = id as f64 / n.max(1) as f64;
            UserSnapshot {
                id,
                signal: Dbm(-110.0 + 60.0 * phase),
                rate_kbps: 300.0 + 300.0 * phase,
                buffer_s: 30.0 * phase,
                remaining_kb: 1e8,
                active: true,
                link_cap_units: ((65.8 * (-110.0 + 60.0 * phase) + 7567.0) / 50.0).max(0.0) as u64,
                idle_s: 3.0 * phase,
                rrc_state: RrcState::Dch,
            }
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let models = CrossLayerModels::paper();
    let mut group = c.benchmark_group("allocate_per_slot");
    for &n in &[10usize, 20, 40, 80] {
        let snaps = users(n);
        let ctx = SlotContext {
            slot: 500,
            tau: 1.0,
            delta_kb: 50.0,
            bs_cap_units: 400,
            users: &snaps,
            soa: None,
        };
        let mut policies: Vec<Box<dyn Scheduler>> = vec![
            Box::new(DefaultMax::new()),
            Box::new(Rtma::unbounded()),
            Box::new(Ema::new(0.3, models)),
            Box::new(EmaFast::new(0.3, models)),
            Box::new(Throttling::new(1.25)),
            Box::new(OnOff::new(10.0, 40.0)),
            Box::new(Salsa::new(1.0, 3.0, 0.2)),
            Box::new(EStreamer::new(5.0, 60.0)),
        ];
        for pol in policies.iter_mut() {
            group.bench_with_input(BenchmarkId::new(pol.name().to_string(), n), &n, |b, _| {
                b.iter(|| black_box(pol.allocate(black_box(&ctx))))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
