//! Per-slot allocation cost of every policy as the cell fills.
//!
//! Measures one `allocate()` call on a representative congested slot for
//! N ∈ {10, 20, 40, 80} users — the quantity that bounds how many cells a
//! single gateway core can schedule in real time (slots are 1 s).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jmso_gateway::{Scheduler, SlotContext, UserSnapshot};
use jmso_radio::rrc::RrcState;
use jmso_radio::Dbm;
use jmso_sched::ema::{slot_users, solve_dp_reference, solve_dp_with, DpScratch, SlotUser};
use jmso_sched::ema_fast::{solve_greedy_with, GreedyScratch};
use jmso_sched::lyapunov::VirtualQueues;
use jmso_sched::{
    CrossLayerModels, DefaultMax, EStreamer, Ema, EmaCost, EmaFast, OnOff, Rtma, Salsa, Throttling,
};
use std::hint::black_box;

fn users(n: usize) -> Vec<UserSnapshot> {
    (0..n)
        .map(|id| {
            // A deterministic spread of signals/rates/buffers resembling a
            // mid-run slot of the paper scenario.
            let phase = id as f64 / n.max(1) as f64;
            UserSnapshot {
                id,
                signal: Dbm(-110.0 + 60.0 * phase),
                rate_kbps: 300.0 + 300.0 * phase,
                buffer_s: 30.0 * phase,
                remaining_kb: 1e8,
                active: true,
                link_cap_units: ((65.8 * (-110.0 + 60.0 * phase) + 7567.0) / 50.0).max(0.0) as u64,
                idle_s: 3.0 * phase,
                rrc_state: RrcState::Dch,
            }
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let models = CrossLayerModels::paper();
    let mut group = c.benchmark_group("allocate_per_slot");
    for &n in &[10usize, 20, 40, 80] {
        let snaps = users(n);
        let ctx = SlotContext {
            slot: 500,
            tau: 1.0,
            delta_kb: 50.0,
            bs_cap_units: 400,
            users: &snaps,
            soa: None,
        };
        let mut policies: Vec<Box<dyn Scheduler>> = vec![
            Box::new(DefaultMax::new()),
            Box::new(Rtma::unbounded()),
            Box::new(Ema::new(0.3, models)),
            Box::new(EmaFast::new(0.3, models)),
            Box::new(Throttling::new(1.25)),
            Box::new(OnOff::new(10.0, 40.0)),
            Box::new(Salsa::new(1.0, 3.0, 0.2)),
            Box::new(EStreamer::new(5.0, 60.0)),
        ];
        for pol in policies.iter_mut() {
            group.bench_with_input(BenchmarkId::new(pol.name().to_string(), n), &n, |b, _| {
                b.iter(|| black_box(pol.allocate(black_box(&ctx))))
            });
        }
    }
    group.finish();
}

/// Two participant sets for one contended slot (P = 40, C = 400, mixed
/// starved/surplus queues), identical but for user 0's queue value —
/// alternating them defeats the DP's warm-start cache, so the cold row
/// prices a full table build while the warm row prices a cache hit.
fn micro_parts() -> (Vec<SlotUser>, Vec<SlotUser>) {
    let snaps = users(40);
    let ctx = SlotContext {
        slot: 500,
        tau: 1.0,
        delta_kb: 50.0,
        bs_cap_units: 400,
        users: &snaps,
        soa: None,
    };
    let models = CrossLayerModels::paper();
    let cost = EmaCost::new(1.0, &models, &ctx);
    let mut queues = VirtualQueues::new(40);
    for i in 0..40 {
        queues.update(i, 1.0, (i % 5) as f64 * 0.6);
    }
    let parts_a = slot_users(&cost, &ctx, &queues);
    queues.update(0, 0.5, 0.0);
    let parts_b = slot_users(&cost, &ctx, &queues);
    (parts_a, parts_b)
}

/// The EMA per-slot solvers in isolation: the production DP cold and
/// warm-started, the textbook `O(P·C)` reference it is pinned against,
/// and the slope-greedy. The cold/reference ratio is the PR 1–6 table
/// reduction win; the warm row is the `O(P)` input-compare floor.
fn bench_solvers(c: &mut Criterion) {
    let (parts_a, parts_b) = micro_parts();
    let mut group = c.benchmark_group("solver_micro");

    let mut scratch = DpScratch::default();
    let mut flip = false;
    group.bench_function("solve_dp cold (P=40,C=400)", |b| {
        b.iter(|| {
            flip = !flip;
            let parts = if flip { &parts_a } else { &parts_b };
            black_box(solve_dp_with(black_box(parts), 400, &mut scratch).len())
        })
    });

    let mut scratch = DpScratch::default();
    solve_dp_with(&parts_a, 400, &mut scratch);
    group.bench_function("solve_dp warm hit (P=40,C=400)", |b| {
        b.iter(|| black_box(solve_dp_with(black_box(&parts_a), 400, &mut scratch).len()))
    });

    group.bench_function("solve_dp_reference (P=40,C=400)", |b| {
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let parts = if flip { &parts_a } else { &parts_b };
            black_box(solve_dp_reference(black_box(parts), 400).len())
        })
    });

    let mut greedy = GreedyScratch::default();
    group.bench_function("solve_greedy (P=40,C=400)", |b| {
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let parts = if flip { &parts_a } else { &parts_b };
            black_box(solve_greedy_with(black_box(parts), 400, &mut greedy).len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_policies, bench_solvers);
criterion_main!(benches);
