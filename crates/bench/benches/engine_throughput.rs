//! End-to-end engine throughput: simulated slots per second for a full
//! paper cell under each scheduler (one complete 40-user session horizon
//! per iteration, shortened workload so an iteration stays sub-second).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jmso_sim::{Scenario, SchedulerSpec, WorkloadSpec};
use std::hint::black_box;

fn cell(spec: SchedulerSpec) -> Scenario {
    let mut s = Scenario::paper_default(40);
    s.slots = 1_000;
    // ~35 MB videos: sessions finish inside the horizon, so the bench
    // covers startup, steady state and drain.
    s.workload = WorkloadSpec::paper_default().with_mean_size_mb(35.0);
    s.scheduler = spec;
    s
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_full_run");
    group.sample_size(20);
    for (name, spec) in [
        ("default", SchedulerSpec::Default),
        ("rtma", SchedulerSpec::RtmaUnbounded),
        ("ema_fast", SchedulerSpec::ema_fast(0.3)),
        ("ema_dp", SchedulerSpec::ema_dp(0.3)),
        ("estreamer", SchedulerSpec::estreamer_default()),
        ("round_robin", SchedulerSpec::RoundRobin),
        ("pf", SchedulerSpec::pf_default()),
    ] {
        let scenario = cell(spec);
        group.bench_with_input(BenchmarkId::new(name, 40), &(), |b, _| {
            b.iter(|| black_box(scenario.run().expect("bench run")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
