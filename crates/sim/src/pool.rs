//! A persistent worker pool and a spin barrier for slot-lockstep stepping.
//!
//! [`parallel_map`](crate::parallel_map) used to spawn fresh scoped
//! threads on every call; for sweep grids invoked in a loop (bench rows,
//! figure harnesses) the spawn/join cost dominates cheap cells. The
//! [`WorkerPool`] here is spawned once per process ([`WorkerPool::global`])
//! and parks its workers on a condvar between jobs, so a dispatch costs a
//! mutex hand-off instead of `threads − 1` thread spawns.
//!
//! The pool deliberately exposes exactly one primitive — [`WorkerPool::
//! broadcast`], "run this closure once per participant, caller included" —
//! because both consumers reduce to it:
//!
//! * `parallel_map` passes a closure that drains an atomic-cursor item
//!   queue (each participant loops popping chunks until empty);
//! * the parallel multicell stepper passes a closure that runs the *whole
//!   slot loop*, one participant per cell stripe, synchronizing with a
//!   [`SpinBarrier`] twice per slot — one long-lived broadcast per run
//!   rather than one dispatch per slot, so the per-slot cost is two
//!   barrier rotations and no locks.
//!
//! # Safety model
//!
//! `broadcast` lends the workers a `&(dyn Fn(usize) + Sync)` whose
//! lifetime is erased to `'static` while it sits in the job slot. This is
//! sound because the submitting thread does not return until every
//! participant has deregistered from the job under the pool mutex — the
//! borrow therefore strictly outlives every use, exactly the scoped-thread
//! argument. Worker panics are caught per participant, forwarded to the
//! submitter, and re-raised there (first payload wins), so a panicking job
//! never poisons the pool for the next caller.
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

/// Lock a pool mutex, recovering the guard if a participant panicked
/// while holding it. The pool's own state transitions are all trivially
/// restorable (counters and an `Option<Job>`), so poisoning carries no
/// information beyond the panic we already forward explicitly.
fn lock_state(m: &Mutex<PoolState>) -> MutexGuard<'_, PoolState> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// `Condvar::wait` with the same poison recovery as [`lock_state`].
fn wait_on<'a>(cv: &Condvar, guard: MutexGuard<'a, PoolState>) -> MutexGuard<'a, PoolState> {
    cv.wait(guard)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Type-erased pointer to the job closure. The submitter keeps the real
/// borrow alive for the whole job (see module docs), so dereferencing it
/// from a worker is sound for the duration of the job.
struct JobFn(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and the submitter pins its lifetime past every worker's use; the raw
// pointer itself carries no thread affinity.
unsafe impl Send for JobFn {}

/// One dispatched job: the closure plus the participant slots workers may
/// still claim. Slot 0 always belongs to the submitting thread.
struct Job {
    f: JobFn,
    /// Next participant index to hand to a worker (slot 0 is the caller's).
    next_slot: usize,
    /// Participant slots not yet claimed by a worker.
    unclaimed: usize,
}

/// Mutex-guarded pool state.
struct PoolState {
    /// Bumped once per `broadcast` so parked workers can tell a new job
    /// from a spurious wakeup (and from a job they already served).
    epoch: u64,
    job: Option<Job>,
    /// Worker participants still running the current job.
    active: usize,
    /// First panic payload raised by a worker participant of this job.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// The submitter parks here until `active` drains to zero.
    done_cv: Condvar,
}

/// A long-lived pool of parked worker threads dispatching borrowed jobs.
pub struct WorkerPool {
    shared: &'static PoolShared,
    handles: Vec<JoinHandle<()>>,
    n_workers: usize,
}

impl WorkerPool {
    /// Spawn a pool with `n_workers` parked threads (0 is allowed: every
    /// broadcast then runs entirely on the caller).
    pub fn new(n_workers: usize) -> Self {
        let shared: &'static PoolShared = Box::leak(Box::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                active: 0,
                panic: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }));
        // A failed spawn degrades the pool instead of aborting the run:
        // `n_workers` reflects the threads actually parked, and every
        // consumer already treats participant count as a ceiling.
        let handles: Vec<JoinHandle<()>> = (0..n_workers)
            .filter_map(|_| {
                std::thread::Builder::new()
                    .name("jmso-pool-worker".into())
                    .spawn(move || worker_loop(shared))
                    .ok()
            })
            .collect();
        let n_workers = handles.len();
        Self {
            shared,
            handles,
            n_workers,
        }
    }

    /// The process-wide pool. Sized by the `JMSO_THREADS` env var when set
    /// to a positive integer — the value is the **total participant
    /// count** (caller included), so `JMSO_THREADS=8` parks 7 workers.
    /// This lets bench runs and CI pin shard width reproducibly, and lets
    /// sharded runs deliberately oversubscribe a small host (the barrier's
    /// yield fallback keeps oversubscription livelock-free). Without the
    /// var the pool is sized to `available_parallelism − 1` workers.
    /// Spawned on first use and kept for the process lifetime.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let pinned = std::env::var("JMSO_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n >= 1);
            let threads = pinned.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
            WorkerPool::new(threads.saturating_sub(1))
        })
    }

    /// Workers parked in this pool (participants available beyond the
    /// caller).
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Run `f(slot)` once per participant slot `0..participants`, slot 0
    /// on the calling thread and the rest on pool workers, and return once
    /// every participant has finished. If fewer workers than
    /// `participants − 1` exist, the extra slots are simply not run —
    /// callers must treat participant count as a ceiling, not a promise
    /// (both in-crate consumers drain shared queues, where a missing
    /// participant only shifts work to the others).
    ///
    /// Panics raised inside any participant are re-raised here after all
    /// participants have stopped.
    pub fn broadcast(&self, participants: usize, f: &(dyn Fn(usize) + Sync)) {
        let worker_slots = participants.saturating_sub(1).min(self.n_workers);
        if worker_slots == 0 {
            if participants > 0 {
                f(0);
            }
            return;
        }
        // SAFETY: only the lifetime is erased; this thread blocks below
        // until `active == 0`, so the borrow outlives every worker use.
        let erased: JobFn = JobFn(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                f as *const _,
            )
        });
        {
            let mut st = lock_state(&self.shared.state);
            // Serialize concurrent submitters: a new job may only be
            // posted once the previous one has fully drained (its
            // submitter clears `job` and re-notifies `done_cv`).
            while st.job.is_some() {
                st = wait_on(&self.shared.done_cv, st);
            }
            st.job = Some(Job {
                f: erased,
                next_slot: 1,
                unclaimed: worker_slots,
            });
            st.active = worker_slots;
            st.panic = None;
            st.epoch += 1;
            self.shared.work_cv.notify_all();
        }

        // The caller is participant 0. Catch its panic so the workers are
        // always drained before unwinding out of the pool.
        let caller = catch_unwind(AssertUnwindSafe(|| f(0)));

        let mut st = lock_state(&self.shared.state);
        while st.active > 0 {
            st = wait_on(&self.shared.done_cv, st);
        }
        st.job = None;
        let worker_panic = st.panic.take();
        // Wake any submitter parked on the drain above.
        self.shared.done_cv.notify_all();
        drop(st);

        if let Err(payload) = caller {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock_state(&self.shared.state);
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &'static PoolShared) {
    let mut served_epoch = 0u64;
    loop {
        // Claim a participant slot of a job we have not served yet.
        let (f, slot) = {
            let mut st = lock_state(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch > served_epoch {
                    // A job newer than the one we last served: claim a
                    // slot if any remain, otherwise skip this epoch.
                    served_epoch = st.epoch;
                    if let Some(job) = st.job.as_mut() {
                        if job.unclaimed > 0 {
                            job.unclaimed -= 1;
                            let slot = job.next_slot;
                            job.next_slot += 1;
                            break (job.f.0, slot);
                        }
                    }
                }
                st = wait_on(&shared.work_cv, st);
            }
        };

        // SAFETY: the submitter blocks until we decrement `active`, so the
        // closure behind the pointer is alive for this call.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*f)(slot) }));

        let mut st = lock_state(&shared.state);
        if let Err(payload) = result {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// A reusable spin barrier for slot-lockstep parallel stepping.
///
/// Condvar barriers cost a mutex round-trip per crossing; at two
/// crossings per simulated slot that overhead would rival the slot work
/// itself. Participants here spin with [`std::hint::spin_loop`] on a
/// generation counter instead — appropriate because every participant
/// arrives within microseconds of the others (the phases between
/// crossings are short and balanced by the cell striping).
///
/// After [`SPIN_BUDGET`](Self) polls a waiter downgrades to
/// [`std::thread::yield_now`]: when participants outnumber cores (a
/// pinned `JMSO_THREADS` width on a small host, or a CI box sharing
/// cores) a pure spin would burn whole scheduler quanta waiting for a
/// participant that cannot run until the spinner yields. The budget is
/// large enough that the balanced, under-subscribed case never reaches
/// the syscall.
pub struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// A barrier for `n` participants (`n ≥ 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier needs at least one participant");
        Self {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Polls of the generation counter before a waiter starts yielding
    /// its timeslice (see the type docs for why yielding matters under
    /// oversubscription).
    const SPIN_BUDGET: u32 = 256;

    /// Block until all `n` participants have called `wait`, then release
    /// them together. Reusable: the generation counter makes each
    /// rotation distinct. Spins for [`Self::SPIN_BUDGET`] polls, then
    /// yields between polls.
    pub fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Last arrival: reset for the next rotation, then open the
            // gate. The Release store publishes the reset count (and all
            // writes the arrivals made) to every spinner's Acquire load.
            self.count.store(0, Ordering::Relaxed);
            self.generation
                .store(generation.wrapping_add(1), Ordering::Release);
        } else {
            let mut polls = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                if polls < Self::SPIN_BUDGET {
                    polls += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Interior-mutability cell whose access discipline is a barrier
/// protocol (the multicell stepper's and the sharded engine's): in
/// *serial* phases participant 0 holds exclusive access (everyone else
/// is spinning at the next barrier); in *parallel* phases each cell is
/// touched only by the participant owning it. Every access site states
/// which phase makes it sound.
pub(crate) struct PhaseCell<T>(UnsafeCell<T>);

// SAFETY: cross-thread access is mediated entirely by the barrier
// protocol above; `T: Send` is required because ownership of the interior
// value effectively migrates between participants across barriers.
unsafe impl<T: Send> Sync for PhaseCell<T> {}

impl<T> PhaseCell<T> {
    pub(crate) fn new(value: T) -> Self {
        PhaseCell(UnsafeCell::new(value))
    }

    /// # Safety
    /// Caller must hold phase ownership: no other participant may touch
    /// this cell until the next barrier crossing.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get_mut(&self) -> &mut T {
        &mut *self.0.get()
    }

    /// # Safety
    /// Caller must be in a phase where no participant mutates this cell.
    pub(crate) unsafe fn get(&self) -> &T {
        &*self.0.get()
    }

    pub(crate) fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

/// A length-tagged raw view of a slice shared between shard participants.
///
/// [`PhaseCell`] covers whole values owned by one participant per phase;
/// the sharded engine additionally needs *one* contiguous buffer whose
/// disjoint index ranges are written by different participants within the
/// same parallel phase. Handing each participant a `&mut` to the whole
/// buffer would alias; this wrapper instead derives every access from a
/// raw base pointer, so references only ever materialize per element (or
/// per serial phase) and never overlap.
pub(crate) struct SharedSlice<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: access is mediated by the same barrier protocol as PhaseCell —
// parallel phases touch disjoint indices, serial phases are exclusive.
unsafe impl<T: Send> Send for SharedSlice<T> {}
unsafe impl<T: Send> Sync for SharedSlice<T> {}

impl<T> SharedSlice<T> {
    /// Capture a raw view of `v`'s buffer. The Vec must not be resized
    /// (or dropped) while the view is in use.
    pub(crate) fn new(v: &mut [T]) -> Self {
        Self {
            ptr: v.as_mut_ptr(),
            len: v.len(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// # Safety
    /// `i < len`, and no other participant may access index `i` until the
    /// next barrier crossing.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get_mut(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        &mut *self.ptr.add(i)
    }

    /// # Safety
    /// `i < len`, and no participant may be mutating index `i` this phase.
    pub(crate) unsafe fn get(&self, i: usize) -> &T {
        debug_assert!(i < self.len);
        &*self.ptr.add(i)
    }

    /// # Safety
    /// Caller must be in a serial phase (or a phase where nobody writes):
    /// the returned slice aliases every index.
    pub(crate) unsafe fn as_slice(&self) -> &[T] {
        std::slice::from_raw_parts(self.ptr, self.len)
    }

    /// # Safety
    /// Caller must be in a serial phase with exclusive access (every
    /// other participant parked at a barrier), and must drop the slice
    /// before the next barrier crossing: it aliases every index mutably.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn as_mut_slice(&self) -> &mut [T] {
        std::slice::from_raw_parts_mut(self.ptr, self.len)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn broadcast_runs_every_slot_exactly_once() {
        let pool = WorkerPool::new(3);
        let hits: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        pool.broadcast(4, &|slot| {
            hits[slot].fetch_add(1, Ordering::Relaxed);
        });
        for (slot, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "slot {slot}");
        }
    }

    #[test]
    fn broadcast_reuses_the_same_workers() {
        let pool = WorkerPool::new(2);
        let total = AtomicU64::new(0);
        for _ in 0..100 {
            pool.broadcast(3, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 300);
    }

    #[test]
    fn zero_and_one_participants_run_inline() {
        let pool = WorkerPool::new(2);
        pool.broadcast(0, &|_| panic!("no participants, no calls"));
        let ran = AtomicU64::new(0);
        pool.broadcast(1, &|slot| {
            assert_eq!(slot, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn participant_ceiling_clamps_to_pool_size() {
        let pool = WorkerPool::new(1);
        let hits: Vec<AtomicU64> = (0..8).map(|_| AtomicU64::new(0)).collect();
        pool.broadcast(8, &|slot| {
            hits[slot].fetch_add(1, Ordering::Relaxed);
        });
        let ran: u64 = hits.iter().map(|h| h.load(Ordering::Relaxed)).sum();
        assert_eq!(ran, 2, "caller + one worker");
        assert_eq!(hits[0].load(Ordering::Relaxed), 1, "caller is slot 0");
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(3, &|slot| {
                assert!(slot != 1, "boom in worker");
            });
        }));
        assert!(result.is_err(), "panic must cross the broadcast");
        // The pool still serves jobs afterwards.
        let ok = AtomicU64::new(0);
        pool.broadcast(3, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn caller_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(1);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(2, &|slot| {
                assert!(slot != 0, "boom in caller");
            });
        }));
        assert!(result.is_err());
        let ok = AtomicU64::new(0);
        pool.broadcast(2, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn global_pool_is_shared() {
        let a = WorkerPool::global() as *const _;
        let b = WorkerPool::global() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn spin_barrier_synchronizes_phases() {
        let n = 4;
        let barrier = SpinBarrier::new(n);
        let phase_sum = AtomicU64::new(0);
        let pool = WorkerPool::new(n - 1);
        pool.broadcast(n, &|slot| {
            for round in 0..50u64 {
                phase_sum.fetch_add(round + slot as u64, Ordering::Relaxed);
                barrier.wait();
                // After the barrier every participant must observe the
                // full round's contributions.
                let expect_min = (n as u64) * round;
                assert!(
                    phase_sum.load(Ordering::Relaxed) >= expect_min,
                    "round {round} not fully published"
                );
                barrier.wait();
            }
        });
        // Σ_rounds Σ_slots (round + slot) = 50·(0+1+2+3) + 4·Σ rounds.
        let expect = 50 * 6 + 4 * (49 * 50 / 2);
        assert_eq!(phase_sum.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn spin_barrier_single_participant_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..10 {
            b.wait();
        }
    }
}
