//! Reporting: CSV emission and fixed-width tables for the figure harness.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A rectangular data series: named columns, rows of f64.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Column headers.
    pub columns: Vec<String>,
    /// Row-major data; every row must match `columns` in length.
    pub rows: Vec<Vec<f64>>,
}

impl Table {
    /// Empty table with the given headers.
    pub fn new<S: Into<String>>(columns: Vec<S>) -> Self {
        Self {
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn push(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format_cell(*v)).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV to `path`, creating parent directories.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }

    /// Render as an aligned text table for terminal output.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(|v| format_cell(*v)).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            let _ = write!(out, "{:>width$}  ", c, width = widths[i]);
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "{:>width$}  ", cell, width = widths[i]);
            }
            out.push('\n');
        }
        out
    }
}

fn format_cell(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.6}")
    }
}

/// Per-user breakdown of a [`crate::SimResult`] as a [`Table`] — one row
/// per user, ready for CSV export (`jmso-sim run --per-user out.csv`).
pub fn per_user_table(result: &crate::SimResult) -> Table {
    let mut t = Table::new(vec![
        "user",
        "video_mb",
        "rate_kbps",
        "rebuffer_s",
        "startup_slots",
        "stall_slots",
        "watched_s",
        "completed",
        "fetched_mb",
        "energy_j",
        "tail_j",
        "active_slots",
        "tx_slots",
    ]);
    for (i, u) in result.per_user.iter().enumerate() {
        t.push(vec![
            i as f64,
            u.video_kb / 1000.0,
            u.rate_kbps,
            u.rebuffer_s,
            u.startup_slots as f64,
            u.stall_slots as f64,
            u.watched_s,
            if u.playback_complete { 1.0 } else { 0.0 },
            u.fetched_kb / 1000.0,
            u.energy.total().joules(),
            u.energy.tail.joules(),
            u.active_slots as f64,
            u.tx_slots as f64,
        ]);
    }
    t
}

/// Cumulative energy/rebuffering curves from a run's telemetry summary —
/// one row per emitted trace record, ready for CSV export or
/// [`crate::svg_chart`]. The first column is the number of slots elapsed
/// at that record (the end of its downsampling window).
pub fn telemetry_curves_table(t: &crate::TelemetrySummary) -> Table {
    let mut table = Table::new(vec!["slots", "cum_energy_j", "cum_rebuffer_s"]);
    for (i, (e, r)) in t.cum_energy_mj.iter().zip(&t.cum_rebuffer_s).enumerate() {
        let slots_elapsed = ((i as u64 + 1) * t.every).min(t.slots);
        table.push(vec![slots_elapsed as f64, e / 1000.0, *r]);
    }
    table
}

/// Human-readable telemetry block for terminal output: scheduler latency
/// quantiles, RRC dwell split and run totals.
pub fn telemetry_text(t: &crate::TelemetrySummary) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "telemetry            : {} records over {} slots (every {})",
        t.records, t.slots, t.every
    );
    let _ = writeln!(
        out,
        "  sched latency      : p50 {} ns, p95 {} ns, p99 {} ns, max {} ns",
        t.sched_ns_p50, t.sched_ns_p95, t.sched_ns_p99, t.sched_ns_max
    );
    let _ = writeln!(
        out,
        "  rrc dwell          : DCH {:.1} s, FACH {:.1} s, IDLE {:.1} s ({} transitions)",
        t.dwell_dch_s, t.dwell_fach_s, t.dwell_idle_s, t.rrc_transitions
    );
    let _ = write!(
        out,
        "  totals             : {:.2} kJ energy, {:.1} s rebuffering",
        t.energy_mj_total / 1e6,
        t.rebuffer_s_total
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rendering() {
        let mut t = Table::new(vec!["n", "value"]);
        t.push(vec![20.0, 0.125]);
        t.push(vec![40.0, 1234.5]);
        let csv = t.to_csv();
        assert_eq!(csv, "n,value\n20.000,0.125000\n40.000,1234.5\n");
    }

    #[test]
    fn text_rendering_is_aligned() {
        let mut t = Table::new(vec!["users", "rebuffer_s"]);
        t.push(vec![20.0, 1.5]);
        let txt = t.to_text();
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("users"));
        assert!(lines[1].contains("1.500"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push(vec![1.0]);
    }

    #[test]
    fn writes_file_with_parents() {
        let dir = std::env::temp_dir().join("jmso_report_test");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("sub/out.csv");
        let mut t = Table::new(vec!["x"]);
        t.push(vec![1.0]);
        t.write_csv(&path).unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("x\n"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_formats_compactly() {
        assert_eq!(format_cell(0.0), "0");
        assert_eq!(format_cell(2.0), "2.000");
    }

    fn sample_summary() -> crate::TelemetrySummary {
        crate::TelemetrySummary {
            slots: 10,
            every: 4,
            records: 3,
            sched_ns_p50: 511,
            sched_ns_p95: 1023,
            sched_ns_p99: 1023,
            sched_ns_max: 900,
            dwell_dch_s: 12.0,
            dwell_fach_s: 5.0,
            dwell_idle_s: 3.0,
            rrc_transitions: 4,
            energy_mj_total: 6_000.0,
            rebuffer_s_total: 2.5,
            cum_energy_mj: vec![2_000.0, 4_000.0, 6_000.0],
            cum_rebuffer_s: vec![1.0, 2.0, 2.5],
        }
    }

    #[test]
    fn telemetry_curves_table_tracks_windows() {
        let t = telemetry_curves_table(&sample_summary());
        assert_eq!(t.columns, vec!["slots", "cum_energy_j", "cum_rebuffer_s"]);
        // Windows end at slots 4, 8 and (clamped) 10.
        assert_eq!(t.rows[0][0], 4.0);
        assert_eq!(t.rows[1][0], 8.0);
        assert_eq!(t.rows[2][0], 10.0);
        assert_eq!(t.rows[2][1], 6.0); // mJ → J
        assert_eq!(t.rows[2][2], 2.5);
    }

    #[test]
    fn telemetry_text_mentions_key_figures() {
        let txt = telemetry_text(&sample_summary());
        assert!(txt.contains("p50 511 ns"));
        assert!(txt.contains("DCH 12.0 s"));
        assert!(txt.contains("4 transitions"));
        assert!(txt.contains("2.5 s rebuffering"));
    }

    #[test]
    fn per_user_table_shape() {
        use crate::{SimResult, UserResult};
        use jmso_radio::{EnergyBreakdown, MilliJoules};
        let r = SimResult {
            scheduler: "t".into(),
            per_user: vec![UserResult {
                rebuffer_s: 3.0,
                stall_slots: 2,
                startup_slots: 1,
                watched_s: 90.0,
                playback_complete: true,
                fetched_kb: 45_000.0,
                energy: EnergyBreakdown {
                    transmission: MilliJoules(9_000.0),
                    tail: MilliJoules(1_000.0),
                },
                active_slots: 95,
                tx_slots: 60,
                idle_slots: 35,
                rate_kbps: 500.0,
                video_kb: 45_000.0,
            }],
            slots_run: 100,
            slots_configured: 100,
            tau_s: 1.0,
            fairness_series: vec![],
            fairness_window_series: vec![],
            power_series_j: vec![],
            telemetry: None,
            warnings: vec![],
        };
        let t = per_user_table(&r);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.columns.len(), 13);
        assert_eq!(t.rows[0][3], 3.0); // rebuffer_s
        assert_eq!(t.rows[0][9], 10.0); // energy_j
        assert_eq!(t.rows[0][7], 1.0); // completed
    }
}
