//! Fault injection: timed degradation events layered over a scenario.
//!
//! A [`FaultSpec`] — declared event-by-event in the scenario JSON, or
//! generated from a seed — compiles into a [`FaultPlan`], a validated,
//! query-efficient schedule of:
//!
//! * per-user RSSI faults: deep-fade windows (a dB penalty on top of any
//!   [`jmso_radio::SignalKind`]) and full link outages (RSSI floored at
//!   [`OUTAGE_SIGNAL_DBM`], so the Eq. (1) link capacity clamps to zero);
//! * BS capacity faults: whole-BS degradation windows in single-cell
//!   runs, per-cell degradation and full cell outages in multicell;
//! * user churn: mid-stream departures (the client abandons playback and
//!   the session stops fetching) and late arrivals (an extra delay on the
//!   scenario's arrival process).
//!
//! The engine consumes the plan through the [`FaultHook`] trait. Like the
//! telemetry layer's `NullRecorder`, the [`NoFaults`] implementation makes
//! every hook a constant no-op, so the fault-free hot path monomorphizes
//! to exactly the un-instrumented loop (pinned by the `hotpath` bench and
//! the golden traces, which must not change when faults are absent).
//!
//! **Determinism contract:** faults perturb *state*, never RNG streams.
//! Signal faults are applied to the sampled value after the per-user RNG
//! has advanced, so a faulted run and its fault-free twin draw identical
//! random sequences and differ only where the plan says they should. The
//! telemetry notes emitted for fault windows are derived from the plan
//! alone and are byte-deterministic.

use crate::error::ScenarioError;
use jmso_radio::Dbm;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// RSSI reported during a full link outage: far below any threshold the
/// throughput fits cover, so per-user link capacity (Eq. (1)) is zero.
pub const OUTAGE_SIGNAL_DBM: f64 = -200.0;

/// One timed fault. Windows are half-open slot ranges `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FaultEvent {
    /// User `user`'s RSSI drops by `depth_db` dB during the window.
    DeepFade {
        /// Target user index.
        user: usize,
        /// First faulted slot.
        from_slot: u64,
        /// First slot past the window.
        until_slot: u64,
        /// Fade depth, dB (positive).
        depth_db: f64,
    },
    /// User `user`'s link is fully out during the window.
    LinkOutage {
        /// Target user index.
        user: usize,
        /// First faulted slot.
        from_slot: u64,
        /// First slot past the window.
        until_slot: u64,
    },
    /// BS serving capacity is scaled by `factor` during the window
    /// (single-cell: the one BS; multicell: every cell).
    CapDegradation {
        /// First faulted slot.
        from_slot: u64,
        /// First slot past the window.
        until_slot: u64,
        /// Remaining capacity fraction in `[0, 1]`.
        factor: f64,
    },
    /// One cell of a multicell deployment is fully out (capacity zero)
    /// during the window. In single-cell runs `cell` must be 0 and the
    /// event degrades the whole BS.
    CellOutage {
        /// Target cell index.
        cell: usize,
        /// First faulted slot.
        from_slot: u64,
        /// First slot past the window.
        until_slot: u64,
    },
    /// One cell's capacity is scaled by `factor` during the window.
    CellDegradation {
        /// Target cell index.
        cell: usize,
        /// First faulted slot.
        from_slot: u64,
        /// First slot past the window.
        until_slot: u64,
        /// Remaining capacity fraction in `[0, 1]`.
        factor: f64,
    },
    /// User `user` departs mid-stream at `slot`: playback is abandoned
    /// and nothing further is fetched for them.
    Departure {
        /// Target user index.
        user: usize,
        /// Departure slot.
        slot: u64,
    },
    /// User `user` arrives `delay_slots` later than the scenario's
    /// arrival process dictates.
    LateArrival {
        /// Target user index.
        user: usize,
        /// Extra delay, slots.
        delay_slots: u64,
    },
}

/// Scenario-level fault configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FaultSpec {
    /// No faults (the default; runs are bit-identical to a scenario with
    /// no `faults` field at all).
    #[default]
    None,
    /// An explicit event list.
    Declared {
        /// The events, validated at compile time.
        events: Vec<FaultEvent>,
    },
    /// `n_events` events drawn deterministically from `seed`: a mix of
    /// deep fades, link outages, capacity degradations, and departures
    /// spread over the horizon.
    Generated {
        /// Generator seed (independent of the scenario seed).
        seed: u64,
        /// How many events to draw.
        n_events: usize,
    },
}

impl FaultSpec {
    /// True when no faults are configured.
    pub fn is_none(&self) -> bool {
        matches!(self, FaultSpec::None)
    }

    /// Materialize the event list (generated specs draw it here).
    pub fn events(&self, n_users: usize, slots: u64) -> Vec<FaultEvent> {
        match self {
            FaultSpec::None => Vec::new(),
            FaultSpec::Declared { events } => events.clone(),
            FaultSpec::Generated { seed, n_events } => {
                generate_events(*seed, *n_events, n_users, slots)
            }
        }
    }

    /// Validate against a scenario of `n_users` users, `slots` slots and
    /// `n_cells` cells, and compile into a query-efficient [`FaultPlan`].
    pub fn compile(
        &self,
        n_users: usize,
        slots: u64,
        n_cells: usize,
    ) -> Result<FaultPlan, ScenarioError> {
        FaultPlan::new(self.events(n_users, slots), n_users, slots, n_cells)
    }
}

/// Draw a deterministic mix of events. Windows are 5–15% of the horizon;
/// departures land in the middle half so sessions have started.
fn generate_events(seed: u64, n_events: usize, n_users: usize, slots: u64) -> Vec<FaultEvent> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_0000_0000_0001);
    let slots_f = slots.max(1) as f64;
    (0..n_events)
        .map(|_| {
            let user = (rng.random_range(0.0..1.0) * n_users as f64) as usize % n_users.max(1);
            let from = (rng.random_range(0.0..0.8) * slots_f) as u64;
            let len = ((rng.random_range(0.05..0.15) * slots_f) as u64).max(1);
            let until = (from + len).min(slots);
            match (rng.random_range(0.0..4.0)) as u64 {
                0 => FaultEvent::DeepFade {
                    user,
                    from_slot: from,
                    until_slot: until,
                    depth_db: rng.random_range(5.0..25.0),
                },
                1 => FaultEvent::LinkOutage {
                    user,
                    from_slot: from,
                    until_slot: until,
                },
                2 => FaultEvent::CapDegradation {
                    from_slot: from,
                    until_slot: until,
                    factor: rng.random_range(0.1..0.8),
                },
                _ => FaultEvent::Departure {
                    user,
                    slot: (rng.random_range(0.25..0.75) * slots_f) as u64,
                },
            }
        })
        .collect()
}

/// What a signal-fault window does to the sampled RSSI.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SignalEffect {
    Fade(f64),
    Outage,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct SignalWindow {
    from: u64,
    until: u64,
    effect: SignalEffect,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct CapWindow {
    from: u64,
    until: u64,
    factor: f64,
}

/// A validated, compiled fault schedule. Implements [`FaultHook`]; build
/// one via [`FaultSpec::compile`] or [`FaultPlan::new`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    /// Per-user signal windows.
    signal: Vec<Vec<SignalWindow>>,
    /// BS-wide capacity windows (single-cell events; in multicell these
    /// apply to every cell).
    cap: Vec<CapWindow>,
    /// Per-cell capacity windows (outage = factor 0).
    cell: Vec<Vec<CapWindow>>,
    /// Per-user departure slot.
    departure: Vec<Option<u64>>,
    /// Per-user extra arrival delay.
    arrival_delay: Vec<u64>,
}

impl FaultPlan {
    /// Validate `events` against the scenario dimensions and compile.
    pub fn new(
        events: Vec<FaultEvent>,
        n_users: usize,
        slots: u64,
        n_cells: usize,
    ) -> Result<Self, ScenarioError> {
        let mut plan = FaultPlan {
            events: Vec::new(),
            signal: vec![Vec::new(); n_users],
            cap: Vec::new(),
            cell: vec![Vec::new(); n_cells],
            departure: vec![None; n_users],
            arrival_delay: vec![0; n_users],
        };
        let field = |i: usize, leaf: &str| format!("faults.events[{i}].{leaf}");
        let check_user = |i: usize, user: usize| {
            if user >= n_users {
                Err(ScenarioError::new(
                    field(i, "user"),
                    format!("must be < n_users ({n_users}), got {user}"),
                ))
            } else {
                Ok(())
            }
        };
        let check_window = |i: usize, from: u64, until: u64| {
            if until <= from {
                Err(ScenarioError::new(
                    field(i, "until_slot"),
                    format!("must exceed from_slot ({from}), got {until}"),
                ))
            } else if from >= slots {
                Err(ScenarioError::new(
                    field(i, "from_slot"),
                    format!("must be < slots ({slots}), got {from}"),
                ))
            } else {
                Ok(())
            }
        };
        let check_factor = |i: usize, factor: f64| {
            if !(0.0..=1.0).contains(&factor) {
                Err(ScenarioError::new(
                    field(i, "factor"),
                    format!("must be in [0, 1], got {factor}"),
                ))
            } else {
                Ok(())
            }
        };
        for (i, ev) in events.iter().enumerate() {
            match *ev {
                FaultEvent::DeepFade {
                    user,
                    from_slot,
                    until_slot,
                    depth_db,
                } => {
                    check_user(i, user)?;
                    check_window(i, from_slot, until_slot)?;
                    // NaN must be rejected too, hence the explicit check.
                    if depth_db.is_nan() || depth_db <= 0.0 {
                        return Err(ScenarioError::new(
                            field(i, "depth_db"),
                            format!("must be positive, got {depth_db}"),
                        ));
                    }
                    plan.signal[user].push(SignalWindow {
                        from: from_slot,
                        until: until_slot,
                        effect: SignalEffect::Fade(depth_db),
                    });
                }
                FaultEvent::LinkOutage {
                    user,
                    from_slot,
                    until_slot,
                } => {
                    check_user(i, user)?;
                    check_window(i, from_slot, until_slot)?;
                    plan.signal[user].push(SignalWindow {
                        from: from_slot,
                        until: until_slot,
                        effect: SignalEffect::Outage,
                    });
                }
                FaultEvent::CapDegradation {
                    from_slot,
                    until_slot,
                    factor,
                } => {
                    check_window(i, from_slot, until_slot)?;
                    check_factor(i, factor)?;
                    plan.cap.push(CapWindow {
                        from: from_slot,
                        until: until_slot,
                        factor,
                    });
                }
                FaultEvent::CellOutage {
                    cell,
                    from_slot,
                    until_slot,
                } => {
                    check_window(i, from_slot, until_slot)?;
                    plan.push_cell_window(i, cell, from_slot, until_slot, 0.0, n_cells)?;
                }
                FaultEvent::CellDegradation {
                    cell,
                    from_slot,
                    until_slot,
                    factor,
                } => {
                    check_window(i, from_slot, until_slot)?;
                    check_factor(i, factor)?;
                    plan.push_cell_window(i, cell, from_slot, until_slot, factor, n_cells)?;
                }
                FaultEvent::Departure { user, slot } => {
                    check_user(i, user)?;
                    if slot >= slots {
                        return Err(ScenarioError::new(
                            field(i, "slot"),
                            format!("must be < slots ({slots}), got {slot}"),
                        ));
                    }
                    // Earliest departure wins if several target one user.
                    plan.departure[user] = Some(match plan.departure[user] {
                        Some(prev) => prev.min(slot),
                        None => slot,
                    });
                }
                FaultEvent::LateArrival { user, delay_slots } => {
                    check_user(i, user)?;
                    plan.arrival_delay[user] += delay_slots;
                }
            }
        }
        plan.events = events;
        Ok(plan)
    }

    /// Cell events fold into the whole-BS schedule in single-cell runs
    /// (cell 0 *is* the BS); otherwise they land on their cell.
    fn push_cell_window(
        &mut self,
        i: usize,
        cell: usize,
        from: u64,
        until: u64,
        factor: f64,
        n_cells: usize,
    ) -> Result<(), ScenarioError> {
        if cell >= n_cells {
            return Err(ScenarioError::new(
                format!("faults.events[{i}].cell"),
                format!("must be < n_cells ({n_cells}), got {cell}"),
            ));
        }
        let w = CapWindow {
            from,
            until,
            factor,
        };
        if n_cells == 1 {
            self.cap.push(w);
        } else {
            self.cell[cell].push(w);
        }
        Ok(())
    }

    /// The validated event list.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Extra arrival delay for `user` (late-arrival churn).
    pub fn arrival_delay(&self, user: usize) -> u64 {
        self.arrival_delay[user]
    }

    /// Users this plan touches with signal faults or churn.
    pub fn n_users(&self) -> usize {
        self.signal.len()
    }

    fn cap_factor(&self, slot: u64) -> f64 {
        let mut f = 1.0;
        for w in &self.cap {
            if (w.from..w.until).contains(&slot) {
                f *= w.factor;
            }
        }
        f
    }
}

/// The engine's fault interface. Every method has a no-op default so
/// [`NoFaults`] monomorphizes the fault-free path to exactly the plain
/// loop; [`FaultPlan`] overrides them with schedule lookups.
pub trait FaultHook {
    /// Constant per implementation; `false` lets the compiler fold every
    /// fault branch away.
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    /// Perturb user `user`'s sampled RSSI at `slot`. Called *after* the
    /// signal model's RNG has advanced, so fault-free and faulted runs
    /// share random streams.
    #[inline]
    fn adjust_signal(&self, _slot: u64, _user: usize, sig: Dbm) -> Dbm {
        sig
    }

    /// Scale the BS slot budget (Eq. (2), units) at `slot`.
    #[inline]
    fn adjust_cap_units(&self, _slot: u64, cap_units: u64) -> u64 {
        cap_units
    }

    /// Scale cell `cell`'s serving capacity (KB/s) at `slot` (multicell).
    #[inline]
    fn scale_cell_cap(&self, _slot: u64, _cell: usize, cap_kbps: f64) -> f64 {
        cap_kbps
    }

    /// True once user `user` has departed (at or after their departure
    /// slot). The engine's churn handling is idempotent, so this may keep
    /// returning true after the departure has been applied.
    #[inline]
    fn departed(&self, _slot: u64, _user: usize) -> bool {
        false
    }

    /// Telemetry notes for fault activity at `slot` (window boundaries
    /// and departures). Byte-deterministic; one string per transition.
    fn notes_into(&self, _slot: u64, _out: &mut Vec<String>) {}
}

/// The fault-free hook: every method is the inlined default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultHook for NoFaults {}

/// A reference to a hook is itself a hook, so by-value consumers
/// ([`Engine::into_driver`](crate::engine::Engine::into_driver)) accept
/// borrowed plans without cloning.
impl<F: FaultHook + ?Sized> FaultHook for &F {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn adjust_signal(&self, slot: u64, user: usize, sig: Dbm) -> Dbm {
        (**self).adjust_signal(slot, user, sig)
    }

    #[inline]
    fn adjust_cap_units(&self, slot: u64, cap_units: u64) -> u64 {
        (**self).adjust_cap_units(slot, cap_units)
    }

    #[inline]
    fn scale_cell_cap(&self, slot: u64, cell: usize, cap_kbps: f64) -> f64 {
        (**self).scale_cell_cap(slot, cell, cap_kbps)
    }

    #[inline]
    fn departed(&self, slot: u64, user: usize) -> bool {
        (**self).departed(slot, user)
    }

    fn notes_into(&self, slot: u64, out: &mut Vec<String>) {
        (**self).notes_into(slot, out)
    }
}

/// Runtime-selected hook for front-ends that decide between a fault-free
/// and a faulted run at startup (the live gateway service): `Off` keeps
/// `enabled() == false`, so the block radio tables and the fault-free
/// fast path stay engaged exactly as with [`NoFaults`].
#[derive(Debug, Clone)]
pub enum DynFaults {
    /// No faults; behaves exactly like [`NoFaults`].
    Off,
    /// A compiled fault plan.
    Plan(FaultPlan),
}

impl FaultHook for DynFaults {
    #[inline]
    fn enabled(&self) -> bool {
        match self {
            DynFaults::Off => false,
            DynFaults::Plan(p) => p.enabled(),
        }
    }

    #[inline]
    fn adjust_signal(&self, slot: u64, user: usize, sig: Dbm) -> Dbm {
        match self {
            DynFaults::Off => sig,
            DynFaults::Plan(p) => p.adjust_signal(slot, user, sig),
        }
    }

    #[inline]
    fn adjust_cap_units(&self, slot: u64, cap_units: u64) -> u64 {
        match self {
            DynFaults::Off => cap_units,
            DynFaults::Plan(p) => p.adjust_cap_units(slot, cap_units),
        }
    }

    #[inline]
    fn scale_cell_cap(&self, slot: u64, cell: usize, cap_kbps: f64) -> f64 {
        match self {
            DynFaults::Off => cap_kbps,
            DynFaults::Plan(p) => p.scale_cell_cap(slot, cell, cap_kbps),
        }
    }

    #[inline]
    fn departed(&self, slot: u64, user: usize) -> bool {
        match self {
            DynFaults::Off => false,
            DynFaults::Plan(p) => p.departed(slot, user),
        }
    }

    fn notes_into(&self, slot: u64, out: &mut Vec<String>) {
        if let DynFaults::Plan(p) = self {
            p.notes_into(slot, out)
        }
    }
}

impl FaultHook for FaultPlan {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn adjust_signal(&self, slot: u64, user: usize, sig: Dbm) -> Dbm {
        let mut out = sig;
        for w in &self.signal[user] {
            if (w.from..w.until).contains(&slot) {
                match w.effect {
                    SignalEffect::Fade(db) => out = Dbm(out.value() - db),
                    SignalEffect::Outage => return Dbm(OUTAGE_SIGNAL_DBM),
                }
            }
        }
        out
    }

    fn adjust_cap_units(&self, slot: u64, cap_units: u64) -> u64 {
        let f = self.cap_factor(slot);
        if f >= 1.0 {
            cap_units
        } else {
            (cap_units as f64 * f).floor() as u64
        }
    }

    fn scale_cell_cap(&self, slot: u64, cell: usize, cap_kbps: f64) -> f64 {
        let mut f = self.cap_factor(slot);
        if let Some(windows) = self.cell.get(cell) {
            for w in windows {
                if (w.from..w.until).contains(&slot) {
                    f *= w.factor;
                }
            }
        }
        cap_kbps * f
    }

    fn departed(&self, slot: u64, user: usize) -> bool {
        self.departure[user].is_some_and(|d| slot >= d)
    }

    fn notes_into(&self, slot: u64, out: &mut Vec<String>) {
        for ev in &self.events {
            match *ev {
                FaultEvent::DeepFade {
                    user,
                    from_slot,
                    until_slot,
                    depth_db,
                } => {
                    if from_slot == slot {
                        out.push(format!("deep_fade start user={user} depth_db={depth_db}"));
                    }
                    if until_slot == slot {
                        out.push(format!("deep_fade end user={user}"));
                    }
                }
                FaultEvent::LinkOutage {
                    user,
                    from_slot,
                    until_slot,
                } => {
                    if from_slot == slot {
                        out.push(format!("link_outage start user={user}"));
                    }
                    if until_slot == slot {
                        out.push(format!("link_outage end user={user}"));
                    }
                }
                FaultEvent::CapDegradation {
                    from_slot,
                    until_slot,
                    factor,
                } => {
                    if from_slot == slot {
                        out.push(format!("cap_degradation start factor={factor}"));
                    }
                    if until_slot == slot {
                        out.push("cap_degradation end".to_string());
                    }
                }
                FaultEvent::CellOutage {
                    cell,
                    from_slot,
                    until_slot,
                } => {
                    if from_slot == slot {
                        out.push(format!("cell_outage start cell={cell}"));
                    }
                    if until_slot == slot {
                        out.push(format!("cell_outage end cell={cell}"));
                    }
                }
                FaultEvent::CellDegradation {
                    cell,
                    from_slot,
                    until_slot,
                    factor,
                } => {
                    if from_slot == slot {
                        out.push(format!(
                            "cell_degradation start cell={cell} factor={factor}"
                        ));
                    }
                    if until_slot == slot {
                        out.push(format!("cell_degradation end cell={cell}"));
                    }
                }
                FaultEvent::Departure { user, slot: d } => {
                    if d == slot {
                        out.push(format!("departure user={user}"));
                    }
                }
                FaultEvent::LateArrival { .. } => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(events: Vec<FaultEvent>) -> FaultPlan {
        FaultPlan::new(events, 4, 100, 1).expect("valid plan")
    }

    #[test]
    fn no_faults_hook_is_identity() {
        let h = NoFaults;
        assert!(!h.enabled());
        assert_eq!(h.adjust_signal(5, 0, Dbm(-80.0)), Dbm(-80.0));
        assert_eq!(h.adjust_cap_units(5, 400), 400);
        assert_eq!(h.scale_cell_cap(5, 2, 1000.0), 1000.0);
        assert!(!h.departed(5, 0));
        let mut notes = Vec::new();
        h.notes_into(5, &mut notes);
        assert!(notes.is_empty());
    }

    #[test]
    fn deep_fade_applies_inside_window_only() {
        let p = plan(vec![FaultEvent::DeepFade {
            user: 1,
            from_slot: 10,
            until_slot: 20,
            depth_db: 15.0,
        }]);
        assert_eq!(p.adjust_signal(9, 1, Dbm(-80.0)), Dbm(-80.0));
        assert_eq!(p.adjust_signal(10, 1, Dbm(-80.0)), Dbm(-95.0));
        assert_eq!(p.adjust_signal(19, 1, Dbm(-80.0)), Dbm(-95.0));
        assert_eq!(p.adjust_signal(20, 1, Dbm(-80.0)), Dbm(-80.0));
        // Other users untouched.
        assert_eq!(p.adjust_signal(15, 0, Dbm(-80.0)), Dbm(-80.0));
    }

    #[test]
    fn link_outage_floors_signal() {
        let p = plan(vec![FaultEvent::LinkOutage {
            user: 0,
            from_slot: 0,
            until_slot: 5,
        }]);
        assert_eq!(p.adjust_signal(3, 0, Dbm(-60.0)), Dbm(OUTAGE_SIGNAL_DBM));
        assert_eq!(p.adjust_signal(5, 0, Dbm(-60.0)), Dbm(-60.0));
    }

    #[test]
    fn cap_degradation_scales_units() {
        let p = plan(vec![FaultEvent::CapDegradation {
            from_slot: 2,
            until_slot: 4,
            factor: 0.25,
        }]);
        assert_eq!(p.adjust_cap_units(1, 400), 400);
        assert_eq!(p.adjust_cap_units(2, 400), 100);
        assert_eq!(p.adjust_cap_units(4, 400), 400);
    }

    #[test]
    fn single_cell_folds_cell_events_into_bs() {
        let p = plan(vec![FaultEvent::CellOutage {
            cell: 0,
            from_slot: 1,
            until_slot: 3,
        }]);
        assert_eq!(p.adjust_cap_units(2, 400), 0);
    }

    #[test]
    fn multicell_events_target_their_cell() {
        let p = FaultPlan::new(
            vec![FaultEvent::CellDegradation {
                cell: 2,
                from_slot: 0,
                until_slot: 10,
                factor: 0.5,
            }],
            4,
            100,
            4,
        )
        .expect("valid plan");
        assert_eq!(p.scale_cell_cap(5, 2, 1000.0), 500.0);
        assert_eq!(p.scale_cell_cap(5, 1, 1000.0), 1000.0);
        // Per-cell events leave the single-cell budget untouched.
        assert_eq!(p.adjust_cap_units(5, 400), 400);
    }

    #[test]
    fn departures_latch_and_take_earliest() {
        let p = plan(vec![
            FaultEvent::Departure { user: 2, slot: 50 },
            FaultEvent::Departure { user: 2, slot: 30 },
        ]);
        assert!(!p.departed(29, 2));
        assert!(p.departed(30, 2));
        assert!(p.departed(99, 2), "departure latches");
        assert!(!p.departed(99, 1));
    }

    #[test]
    fn late_arrival_delays_accumulate() {
        let p = plan(vec![
            FaultEvent::LateArrival {
                user: 0,
                delay_slots: 7,
            },
            FaultEvent::LateArrival {
                user: 0,
                delay_slots: 3,
            },
        ]);
        assert_eq!(p.arrival_delay(0), 10);
        assert_eq!(p.arrival_delay(1), 0);
    }

    #[test]
    fn validation_names_field_and_index() {
        let err = FaultPlan::new(
            vec![FaultEvent::DeepFade {
                user: 9,
                from_slot: 0,
                until_slot: 5,
                depth_db: 10.0,
            }],
            4,
            100,
            1,
        )
        .expect_err("plan must be rejected");
        assert!(err.field.contains("events[0].user"), "{err}");
        let err = FaultPlan::new(
            vec![FaultEvent::LinkOutage {
                user: 0,
                from_slot: 5,
                until_slot: 5,
            }],
            4,
            100,
            1,
        )
        .expect_err("plan must be rejected");
        assert!(err.field.contains("until_slot"), "{err}");
        let err = FaultPlan::new(
            vec![FaultEvent::CapDegradation {
                from_slot: 0,
                until_slot: 5,
                factor: 1.5,
            }],
            4,
            100,
            1,
        )
        .expect_err("plan must be rejected");
        assert!(err.field.contains("factor"), "{err}");
        let err = FaultPlan::new(
            vec![FaultEvent::Departure { user: 0, slot: 100 }],
            4,
            100,
            1,
        )
        .expect_err("plan must be rejected");
        assert!(err.field.contains("slot"), "{err}");
        let err = FaultPlan::new(
            vec![FaultEvent::CellOutage {
                cell: 3,
                from_slot: 0,
                until_slot: 5,
            }],
            4,
            100,
            2,
        )
        .expect_err("plan must be rejected");
        assert!(err.field.contains("cell"), "{err}");
    }

    #[test]
    fn generated_events_are_deterministic_and_valid() {
        let spec = FaultSpec::Generated {
            seed: 7,
            n_events: 12,
        };
        let a = spec.events(8, 500);
        let b = spec.events(8, 500);
        assert_eq!(a, b, "seeded generation");
        assert_eq!(a.len(), 12);
        // Every generated event passes validation.
        let plan = spec.compile(8, 500, 1).expect("generated plan compiles");
        assert_eq!(plan.events().len(), 12);
        let c = FaultSpec::Generated {
            seed: 8,
            n_events: 12,
        }
        .events(8, 500);
        assert_ne!(a, c, "different seed, different events");
    }

    #[test]
    fn notes_fire_at_window_boundaries() {
        let p = plan(vec![
            FaultEvent::DeepFade {
                user: 1,
                from_slot: 10,
                until_slot: 20,
                depth_db: 12.0,
            },
            FaultEvent::Departure { user: 2, slot: 10 },
        ]);
        let mut notes = Vec::new();
        p.notes_into(10, &mut notes);
        assert_eq!(notes.len(), 2);
        assert!(notes[0].contains("deep_fade start"));
        assert!(notes[1].contains("departure user=2"));
        notes.clear();
        p.notes_into(15, &mut notes);
        assert!(notes.is_empty());
        p.notes_into(20, &mut notes);
        assert_eq!(notes, vec!["deep_fade end user=1".to_string()]);
    }

    #[test]
    fn spec_serde_roundtrip() {
        let spec = FaultSpec::Declared {
            events: vec![
                FaultEvent::DeepFade {
                    user: 0,
                    from_slot: 1,
                    until_slot: 9,
                    depth_db: 10.0,
                },
                FaultEvent::CapDegradation {
                    from_slot: 3,
                    until_slot: 6,
                    factor: 0.5,
                },
            ],
        };
        let j = serde_json::to_string(&spec).expect("serializes");
        let back: FaultSpec = serde_json::from_str(&j).expect("parses");
        assert_eq!(back, spec);
        let none: FaultSpec = serde_json::from_str(r#"{"kind":"none"}"#).expect("parses");
        assert!(none.is_none());
    }
}
