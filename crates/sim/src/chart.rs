//! Terminal charts: render a [`crate::report::Table`] as an ASCII
//! line chart so `repro` output is readable without leaving the shell.
//!
//! The first column is the x-axis; every further column becomes a series
//! drawn with its own glyph. Values are mapped onto a fixed character
//! grid with nearest-cell plotting — good enough to see who wins, where
//! curves cross, and whether a knob is monotone, which is all the figure
//! harness needs.

use crate::report::Table;
use std::fmt::Write as _;

/// Glyphs assigned to series, in column order.
const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// Render `table` as an ASCII chart of `width`×`height` plot cells.
///
/// Returns an empty string for tables with fewer than two rows or columns
/// (nothing to draw).
pub fn ascii_chart(table: &Table, width: usize, height: usize) -> String {
    let n_series = table.columns.len().saturating_sub(1);
    if table.rows.len() < 2 || n_series == 0 || width < 8 || height < 3 {
        return String::new();
    }

    let xs: Vec<f64> = table.rows.iter().map(|r| r[0]).collect();
    let (x_lo, x_hi) = min_max(&xs);
    let mut y_lo = f64::INFINITY;
    let mut y_hi = f64::NEG_INFINITY;
    for row in &table.rows {
        for v in &row[1..] {
            y_lo = y_lo.min(*v);
            y_hi = y_hi.max(*v);
        }
    }
    if !(y_lo.is_finite() && y_hi.is_finite()) {
        return String::new();
    }
    let x_span = (x_hi - x_lo).max(f64::MIN_POSITIVE);
    let y_span = (y_hi - y_lo).max(f64::MIN_POSITIVE);

    let mut grid = vec![vec![' '; width]; height];
    for row in &table.rows {
        let cx = (((row[0] - x_lo) / x_span) * (width - 1) as f64).round() as usize;
        for (s, v) in row[1..].iter().enumerate() {
            let cy = (((v - y_lo) / y_span) * (height - 1) as f64).round() as usize;
            let glyph = GLYPHS[s % GLYPHS.len()];
            let cell = &mut grid[height - 1 - cy][cx.min(width - 1)];
            // First series to claim a cell keeps it; overlaps show as the
            // earlier (usually more important) series.
            if *cell == ' ' {
                *cell = glyph;
            }
        }
    }

    let mut out = String::new();
    let y_label_w = 10;
    for (r, line) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{y_hi:>9.3}")
        } else if r == height - 1 {
            format!("{y_lo:>9.3}")
        } else {
            " ".repeat(9)
        };
        let _ = writeln!(out, "{label} |{}", line.iter().collect::<String>());
    }
    let _ = writeln!(out, "{} +{}", " ".repeat(y_label_w - 1), "-".repeat(width));
    let _ = writeln!(
        out,
        "{} {:<w$.3}{:>r$.3}",
        " ".repeat(y_label_w - 1),
        x_lo,
        x_hi,
        w = width / 2,
        r = width - width / 2
    );
    // Legend.
    let legend: Vec<String> = table.columns[1..]
        .iter()
        .enumerate()
        .map(|(s, name)| format!("{} {name}", GLYPHS[s % GLYPHS.len()]))
        .collect();
    let _ = writeln!(out, "{}  {}", " ".repeat(y_label_w - 1), legend.join("   "));
    out
}

fn min_max(values: &[f64]) -> (f64, f64) {
    values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
            (lo.min(*v), hi.max(*v))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new(vec!["x", "up", "down"]);
        for i in 0..10 {
            let x = i as f64;
            t.push(vec![x, x * x, 100.0 - 10.0 * x]);
        }
        t
    }

    #[test]
    fn renders_all_series_with_legend() {
        let chart = ascii_chart(&sample_table(), 40, 12);
        assert!(chart.contains('*'), "first series plotted");
        assert!(chart.contains('o'), "second series plotted");
        assert!(chart.contains("* up"), "legend names first series");
        assert!(chart.contains("o down"), "legend names second series");
        // Axis labels carry the extremes.
        assert!(chart.contains("81.000") || chart.contains("100.000"));
    }

    #[test]
    fn extremes_land_on_borders() {
        let mut t = Table::new(vec!["x", "y"]);
        t.push(vec![0.0, 0.0]);
        t.push(vec![1.0, 1.0]);
        let chart = ascii_chart(&t, 20, 5);
        let lines: Vec<&str> = chart.lines().collect();
        // Max value on the top plot row, min on the bottom plot row.
        assert!(lines[0].contains('*'));
        assert!(lines[4].contains('*'));
    }

    #[test]
    fn degenerate_tables_render_empty() {
        let t = Table::new(vec!["x", "y"]);
        assert!(ascii_chart(&t, 40, 10).is_empty());
        let mut one_row = Table::new(vec!["x", "y"]);
        one_row.push(vec![1.0, 2.0]);
        assert!(ascii_chart(&one_row, 40, 10).is_empty());
        let mut no_series = Table::new(vec!["x"]);
        no_series.push(vec![1.0]);
        no_series.push(vec![2.0]);
        assert!(ascii_chart(&no_series, 40, 10).is_empty());
        assert!(ascii_chart(&sample_table(), 4, 10).is_empty(), "too narrow");
    }

    #[test]
    fn constant_series_does_not_panic() {
        let mut t = Table::new(vec!["x", "flat"]);
        t.push(vec![0.0, 5.0]);
        t.push(vec![1.0, 5.0]);
        let chart = ascii_chart(&t, 20, 5);
        assert!(chart.contains('*'));
    }
}
