//! The slotted multi-user simulation engine.
//!
//! Each slot `n` executes the paper's §III pipeline:
//!
//! 1. the BS capacity `S(n)` is sampled and origin arrivals are ingested
//!    into the Data Receiver;
//! 2. every client advances its playback buffer by Eq. (7) and accrues
//!    Eq. (8) rebuffering;
//! 3. the Information Collector snapshots cross-layer state (RSSI,
//!    `pᵢ(n)`, occupancy, RRC idle time) into a [`SlotContext`];
//! 4. the Scheduler decides `φᵢ(n)`; the Data Transmitter enforces
//!    Eq. (1)/(2) and moves bytes;
//! 5. each device is charged either transmission energy (Eq. (3)) or one
//!    slot of tail energy (Eq. (4)), per the Eq. (5) dichotomy, on the
//!    *true* signal (the collector may have reported a noisy one);
//! 6. per-slot fairness (`Fᵢ = dᵢ/d_need`) and total power samples are
//!    recorded for the CDF figures.
//!
//! The engine stops early once every session has been fetched *and*
//! watched — remaining slots can contribute neither rebuffering (Eq. (8)'s
//! `mᵢ ≥ Mᵢ` branch) nor energy (the tail has saturated), so all
//! aggregates are unaffected; `slots_configured` still reflects Γ.
//!
//! Two orthogonal extensions thread through the same loop without
//! touching the fault-free hot path:
//!
//! * **Fault injection** — every run variant is generic over a
//!   [`FaultHook`]; the [`NoFaults`] instantiation monomorphizes every
//!   hook into a no-op, while a compiled
//!   [`FaultPlan`](crate::faults::FaultPlan) perturbs *state* (signals,
//!   capacity, sessions) strictly after the RNG streams have been drawn,
//!   so a faulted run consumes bit-identical random sequences to its
//!   fault-free twin.
//! * **Checkpoint/resume** — [`Engine::run_core`] can capture the full
//!   simulation state at the top of any slot into an
//!   [`EngineCheckpoint`] (periodically to a sidecar file, or once via
//!   [`CkptMode::PauseAt`]) and later resume from it bit-identically:
//!   signal RNGs are fast-forwarded by replaying the recorded number of
//!   samples, and every stateful component restores through its
//!   `export_state`/`import_state` pair.
//! * **Open-system churn** — each user additionally carries a
//!   `departure_slot` (set by the compiled
//!   [`ChurnPlan`](crate::arrivals::ChurnPlan)): from that slot on the
//!   client abandons playback and the origin stops fetching, exactly the
//!   state change a `departure` fault applies, but as a first-class
//!   workload property instead of a perturbation.
//!
//! [`Engine::run_sharded_on`] is the shard-parallel form of the hot
//! path: users are partitioned into contiguous shards, each owned by one
//! worker-pool participant, with two serial phases per slot (scheduling
//! under the shared Eq. (2) BS constraint, and trace recording) fenced
//! by a [`SpinBarrier`]. It is bit-identical to [`Engine::run`] by
//! construction — see the method docs and DESIGN.md §11.
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use crate::error::{atomic_write, CheckpointError, ScenarioError, SimError};
use crate::faults::{FaultHook, NoFaults};
use crate::pool::{PhaseCell, SharedSlice, SpinBarrier, WorkerPool};
use crate::results::{SimResult, SimWarning, UserResult};
use crate::telemetry::{NullRecorder, SlotRecorder};
use jmso_gateway::bs::CapacityModel;
use jmso_gateway::collector::RawUserState;
use jmso_gateway::{
    AdmissionContext, AdmissionController, AdmissionDecision, AdmissionSpec, AdmissionState,
    Allocation, CollectorState, DataReceiver, DataTransmitter, Delivery, FlowState,
    InformationCollector, Scheduler, SlotContext, SnapshotSoA, UnitParams, UserSnapshot,
};
use jmso_media::{jain_index, AbrClient, AbrInputs, AbrSpec, ClientPlayback, VideoSession};
use jmso_radio::rrc::RrcState;
use jmso_radio::signal::{SignalKind, SignalModel};
use jmso_radio::{Dbm, EnergyMeter, MilliJoules, PowerModel, RrcMachine};
use jmso_sched::{drift_bound_b, energy_upper_bound, rebuffer_upper_bound, CrossLayerModels};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

/// Slots sampled per [`SignalModel::sample_into`] block in the hot loop
/// (shared with the multicell stepper, which blocks its radio math the
/// same way).
pub(crate) const SIG_BLOCK_SLOTS: usize = 32;

/// Per-user simulation state.
struct UserSim {
    signal: SignalKind,
    session: VideoSession,
    playback: ClientPlayback,
    rrc: RrcMachine,
    meter: EnergyMeter,
    cur_signal: Dbm,
    /// Block-sampled RSSI for slots `b·B .. (b+1)·B`; refilled whenever
    /// the slot index crosses a block boundary while the user is live.
    sig_block: [Dbm; SIG_BLOCK_SLOTS],
    /// Per-block Eq. (1) link caps derived from `sig_block` by the batch
    /// throughput kernel at the refill boundary. Only maintained (and only
    /// sound) on the fault-free pass-through path — see `run_core`; not
    /// checkpointed, recomputed from the restored `sig_block` on resume.
    ///
    /// Transmission energy deliberately has no such table: the link cap is
    /// read every slot for every user (the table is a one-for-one batch of
    /// the scalar computes it replaced), but `P(sig)` is only needed on
    /// the user-slots that actually transmit, so an eager per-block power
    /// pass can cost more divisions than it saves. Instead `epk_sig` /
    /// `epk_per_kb` memoize the scalar kernel one-deep at transmit time:
    /// strictly fewer evaluations than computing per transmit (the RSSI
    /// holds for up to [`SIG_BLOCK_SLOTS`] slots) and never a wasted one.
    cap_block: [u64; SIG_BLOCK_SLOTS],
    /// Signal at which `epk_per_kb` was computed. Seeded (and reset on
    /// restore) to NaN, which compares unequal to everything, so the
    /// first transmit recomputes; derived state, not checkpointed.
    epk_sig: Dbm,
    /// Memoized Eq. (3) per-KB transmission energy at `epk_sig`.
    epk_per_kb: f64,
    active_slots: u64,
    /// Slot at which this user's session starts (0 = at the beginning).
    arrival_slot: u64,
    /// Slot at which this user abandons their session (`u64::MAX` = they
    /// watch to completion). The open-system workload path — the
    /// first-class form of the fault taxonomy's `departure` event.
    departure_slot: u64,
    /// Rate the gateway believes (e.g. DPI-extracted manifest rate); when
    /// set it overrides the instantaneous session rate in snapshots.
    declared_rate_kbps: Option<f64>,
    /// Signal-model samples drawn so far. Checkpoint restore fast-forwards
    /// the per-user RNG by replaying exactly this many samples (the
    /// block-sampling contract makes replay order irrelevant).
    sig_samples: u64,
}

/// Engine-level knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Slot length τ, seconds.
    pub tau: f64,
    /// Frame length δ, KB.
    pub delta_kb: f64,
    /// Horizon Γ in slots.
    pub slots: u64,
    /// Record per-slot fairness / power series (needed for CDF figures;
    /// off for plain sweeps to save memory).
    pub record_series: bool,
}

/// Checkpoint cadence for [`Engine::run_core`].
#[derive(Debug, Clone, Copy)]
pub enum CkptMode<'a> {
    /// No checkpointing — the plain hot path.
    Off,
    /// Atomically (re)write a sidecar checkpoint every `every` slots.
    EveryToFile {
        /// Checkpoint period in slots (0 disables).
        every: u64,
        /// Sidecar file the checkpoint JSON is atomically renamed into.
        path: &'a Path,
    },
    /// Capture state at the top of the given slot and return
    /// [`RunOutcome::Paused`] instead of finishing the run.
    PauseAt {
        /// Slot to pause at (state is captured before the slot executes).
        slot: u64,
    },
}

/// What a checkpoint-aware run produced.
// `Done` carries the full `SimResult` by value on purpose: it is the
// common case and every caller immediately consumes it.
#[allow(clippy::large_enum_variant)]
pub enum RunOutcome {
    /// The run reached the horizon (or early exit) and finished.
    Done(SimResult),
    /// The run stopped at [`CkptMode::PauseAt`]; feed the checkpoint to a
    /// freshly built engine to continue bit-identically.
    Paused(Box<EngineCheckpoint>),
}

/// Serializable snapshot of one user's mid-run state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct UserCkpt {
    session: VideoSession,
    playback: ClientPlayback,
    rrc: RrcMachine,
    meter: EnergyMeter,
    cur_signal: Dbm,
    sig_block: Vec<f64>,
    active_slots: u64,
    arrival_slot: u64,
    /// Added in v2 (the default keeps the parse permissive; the version
    /// gate still rejects v1 payloads with a clean error).
    #[serde(default = "never_departs")]
    departure_slot: u64,
    declared_rate_kbps: Option<f64>,
    sig_samples: u64,
    /// Added in v3: the user's ABR client state (absent on fixed-bitrate
    /// runs, so their sidecars keep the v2 byte shape and v2 sidecars
    /// parse with the default).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    abr: Option<AbrClient>,
}

/// Serde default for [`UserCkpt::departure_slot`].
fn never_departs() -> u64 {
    u64::MAX
}

/// Loop-local accumulators that live outside the engine components.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LoopCkpt {
    fairness_series: Vec<f64>,
    fairness_window_series: Vec<f64>,
    power_series_j: Vec<f64>,
    window_delivered: Vec<f64>,
    window_need: Vec<f64>,
    slots_run: u64,
    watching: usize,
    done_watching: Vec<bool>,
    retired: Vec<bool>,
    retired_at: Vec<u64>,
    live: Vec<usize>,
    raw: Vec<RawUserState>,
    snapshots: Vec<UserSnapshot>,
}

/// Full engine state captured at the top of a slot.
///
/// A checkpoint taken at slot `k` plus a freshly built engine for the
/// same scenario reproduces the straight run exactly: same
/// [`SimResult`], same telemetry trace bytes (pinned by the
/// checkpoint-resume property test).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineCheckpoint {
    version: u32,
    slot: u64,
    users: Vec<UserCkpt>,
    receiver: Vec<FlowState>,
    collector: CollectorState,
    scheduler: String,
    transmitter_clamps: u64,
    recorder: String,
    loop_state: LoopCkpt,
    /// Added in v3: admission-controller state (absent when no
    /// feasibility controller is installed; the pending-arrival heap is
    /// rebuilt from the users' arrival slots on restore).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    admission: Option<AdmissionCkpt>,
}

/// Checkpoint format version this build writes. v2 added per-user
/// `departure_slot` (open-system churn); v3 added per-user ABR client
/// state and admission-controller state, both behind serde defaults, so
/// v2 sidecars still restore. v4 gates the live list on arrival
/// (pre-arrival users wait in the driver's arrival queue instead of
/// being carried live) and adds the admission aggregates; older
/// sidecars still restore — their live lists are re-gated and the
/// aggregates recomputed on import.
const CKPT_VERSION: u32 = 4;

/// Oldest checkpoint version this build still reads.
const CKPT_MIN_VERSION: u32 = 2;

impl EngineCheckpoint {
    /// Slot the resumed run will execute next.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Serialize to the sidecar JSON payload.
    pub fn to_json(&self) -> Result<String, CheckpointError> {
        serde_json::to_string(self).map_err(|e| CheckpointError::Corrupt {
            reason: format!("serialize: {e:?}"),
        })
    }

    /// Parse a sidecar JSON payload (version-checked).
    pub fn from_json(s: &str) -> Result<Self, CheckpointError> {
        let ck: Self = serde_json::from_str(s).map_err(|e| CheckpointError::Corrupt {
            reason: format!("parse: {e:?}"),
        })?;
        if !(CKPT_MIN_VERSION..=CKPT_VERSION).contains(&ck.version) {
            return Err(CheckpointError::Corrupt {
                reason: format!(
                    "version {} (this build reads {CKPT_MIN_VERSION}..={CKPT_VERSION})",
                    ck.version
                ),
            });
        }
        Ok(ck)
    }

    /// Atomically write the checkpoint to `path`.
    pub fn write_file(&self, path: &Path) -> Result<(), CheckpointError> {
        let json = self.to_json()?;
        atomic_write(path, json.as_bytes()).map_err(|source| CheckpointError::Io {
            path: path.to_path_buf(),
            source,
        })
    }

    /// Read and parse a checkpoint sidecar.
    pub fn read_file(path: &Path) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path).map_err(|source| CheckpointError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        Self::from_json(&text)
    }
}

/// Per-shard mutable state for [`Engine::run_sharded_on`], owned by one
/// pool participant during the parallel phases (A: radio/playback walk,
/// C: accounting) and read-only to participant 0 during phase D.
struct ShardState {
    /// Global user ids in this shard's contiguous range still live, in
    /// ascending order (order-preserving retain) — so the shards'
    /// concatenation is exactly the serial engine's live list.
    live: Vec<usize>,
    /// Min-heap of `(arrival_slot, user)` over this shard's range for
    /// users not yet live — the per-shard half of the serial driver's
    /// arrival gate, drained at the top of phase A. Entries staled by
    /// an admission deferral (phase D moved the arrival later) re-queue
    /// at the current arrival slot.
    arrival_queue: BinaryHeap<Reverse<(u64, usize)>>,
    /// RRC transitions captured during phase C, `(user, from, to)` in
    /// live-walk order, replayed into the recorder by phase D.
    events: Vec<(usize, RrcState, RrcState)>,
    /// Users of this shard whose `done_watching` flag flipped this slot,
    /// in live-walk order — phase D replays the admission aggregate
    /// decrements (and the pre-flip E* membership test) from these.
    flips: Vec<usize>,
    /// Batch-throughput scratch for the per-block cap-table refill.
    v_scratch: [f64; SIG_BLOCK_SLOTS],
    /// Users of this shard that finished watching this slot.
    watching_dec: usize,
    /// Arrived-and-still-watching users after this slot's accounting
    /// (only maintained when a recorder is attached).
    in_system: u64,
    /// Set when a user of this shard retired this slot; live-list
    /// compaction is deferred to the next phase A so phase D can still
    /// replay the retiring slot's records.
    any_retired: bool,
}

/// Participant-0-only state for [`Engine::run_sharded_on`]'s serial
/// phases (B: scheduling, D: recording); everything in here is either
/// order-sensitive (recorder calls, floating-point series sums) or
/// inherently shared (the scheduler deciding against the one BS cap).
struct SerialCtx<'a, R> {
    scheduler: Box<dyn Scheduler>,
    capacity: Box<dyn CapacityModel>,
    receiver: DataReceiver,
    transmitter: DataTransmitter,
    rec: &'a mut R,
    alloc: Allocation,
    deliveries: Vec<Delivery>,
    fairness_scratch: Vec<f64>,
    fairness_series: Vec<f64>,
    fairness_window_series: Vec<f64>,
    power_series_j: Vec<f64>,
    window_delivered: Vec<f64>,
    window_need: Vec<f64>,
    watching: usize,
    slots_run: u64,
    /// Feasibility admission runtime — ticked in phase D (the serial
    /// end-of-slot region), exactly where the serial loop ticks it.
    admission: Option<AdmissionRuntime>,
    /// Slot capacity computed in phase B, carried to phase D for the
    /// admission tick's ε̂ estimate.
    bs_cap_units: u64,
}

/// Per-run ABR machinery installed by [`Engine::set_abr`]: the spec, the
/// per-user native rates the ladder multiplies, and one client state
/// machine per user. Decisions are staged per user during delivery
/// accounting ([`AbrClient::on_delivery`]) and committed in a serial
/// ascending-user pass, so every run path (serial, sharded, reference)
/// observes identical switch order.
struct AbrRuntime {
    spec: AbrSpec,
    /// Chunk length in seconds (`chunk_slots · τ`).
    chunk_s: f64,
    /// Per-user native mean rate, KB/s (the ladder's 1.0 reference).
    native: Vec<f64>,
    clients: Vec<AbrClient>,
}

/// Per-run admission machinery installed by [`Engine::set_admission`] —
/// only for the feasibility policy; `AlwaysAdmit` is the identity and
/// installs nothing, which is what makes it bit-identical to running
/// without admission control.
struct AdmissionRuntime {
    ctl: AdmissionController,
    /// Per-user native mean rate, KB/s (demand estimate for ε̂).
    rates: Vec<f64>,
    /// Lyapunov trade-off weight `V` used in the bound estimates.
    v: f64,
    /// Min-heap of `(arrival_slot, user)` still awaiting a ruling.
    pending: BinaryHeap<Reverse<(u64, usize)>>,
    /// Energy charged to arrived-and-watching users so far, mJ — the
    /// running `E*` estimate's numerator.
    energy_mj: f64,
    /// Arrived-and-watching user-slots accumulated so far.
    user_slots: u64,
    /// Incrementally maintained size of the active population — users
    /// with `arrival_slot ≤ slot` that are not done watching. Updated at
    /// the O(1) event points (arrival commit, `done_watching` flip) so
    /// each admission candidate costs O(1) instead of an O(n_users)
    /// rescan; `admission_aggregates_reference` is the rescan the
    /// reference loop still runs, pinned equal by the admission
    /// property tests.
    n_active: usize,
    /// Running Σ of `rates` over the same active population. A running
    /// float sum is not bit-identical to a fresh rescan (addition order
    /// differs), but the decision threshold only flips at exact ties,
    /// which scenario-valued inputs never produce; the recorded
    /// decisions — the only observable — stay equal.
    rate_sum: f64,
}

/// Serializable slice of an [`AdmissionRuntime`] (the pending heap is
/// derived from per-user arrival slots and rebuilt on restore).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AdmissionCkpt {
    state: AdmissionState,
    energy_mj: f64,
    user_slots: u64,
    /// Added in v4: the incremental active-population aggregates. Absent
    /// in v2/v3 sidecars, where restore recomputes them from the users'
    /// arrival slots and `done_watching` flags (a fresh sum, which may
    /// differ from the original running sum in the last ulps — decision
    /// ties are measure-zero, so continuations stay decision-identical).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    n_active: Option<usize>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    rate_sum: Option<f64>,
}

/// The assembled simulator for one scenario.
pub struct Engine {
    users: Vec<UserSim>,
    scheduler: Box<dyn Scheduler>,
    capacity: Box<dyn CapacityModel>,
    receiver: DataReceiver,
    transmitter: DataTransmitter,
    collector: InformationCollector,
    units: UnitParams,
    models: CrossLayerModels,
    cfg: EngineConfig,
    abr: Option<AbrRuntime>,
    admission: Option<AdmissionRuntime>,
}

impl Engine {
    /// Assemble an engine from its parts. `signals` and `sessions` must
    /// have equal length; sessions' volumes are installed as the origin
    /// source bound for each flow.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        signals: Vec<SignalKind>,
        sessions: Vec<VideoSession>,
        scheduler: Box<dyn Scheduler>,
        capacity: Box<dyn CapacityModel>,
        receiver: DataReceiver,
        collector: InformationCollector,
        models: CrossLayerModels,
        cfg: EngineConfig,
    ) -> Self {
        let n = sessions.len();
        Self::with_arrivals(
            signals,
            sessions,
            vec![0; n],
            scheduler,
            capacity,
            receiver,
            collector,
            models,
            cfg,
        )
    }

    /// [`Engine::new`] with per-user session arrival slots: before their
    /// arrival slot users neither play, fetch, nor consume energy (their
    /// radio is cold). Staggered arrivals model realistic session churn;
    /// the all-zeros vector recovers the paper's synchronized start.
    #[allow(clippy::too_many_arguments)]
    pub fn with_arrivals(
        signals: Vec<SignalKind>,
        sessions: Vec<VideoSession>,
        arrival_slots: Vec<u64>,
        scheduler: Box<dyn Scheduler>,
        capacity: Box<dyn CapacityModel>,
        receiver: DataReceiver,
        collector: InformationCollector,
        models: CrossLayerModels,
        cfg: EngineConfig,
    ) -> Self {
        let n = sessions.len();
        Self::with_churn(
            signals,
            sessions,
            arrival_slots,
            vec![u64::MAX; n],
            scheduler,
            capacity,
            receiver,
            collector,
            models,
            cfg,
        )
    }

    /// [`Engine::with_arrivals`] plus per-user departure slots (`u64::MAX`
    /// = watches to completion): the full open-system workload. From their
    /// departure slot on, a user abandons playback and stops fetching —
    /// the same idempotent state change the `departure` fault applies, so
    /// an all-`MAX` vector is bit-identical to [`Engine::with_arrivals`].
    #[allow(clippy::too_many_arguments)]
    pub fn with_churn(
        signals: Vec<SignalKind>,
        sessions: Vec<VideoSession>,
        arrival_slots: Vec<u64>,
        departure_slots: Vec<u64>,
        scheduler: Box<dyn Scheduler>,
        capacity: Box<dyn CapacityModel>,
        mut receiver: DataReceiver,
        collector: InformationCollector,
        models: CrossLayerModels,
        cfg: EngineConfig,
    ) -> Self {
        assert_eq!(signals.len(), sessions.len(), "one signal per session");
        assert_eq!(
            arrival_slots.len(),
            sessions.len(),
            "one arrival slot per session"
        );
        assert_eq!(
            departure_slots.len(),
            sessions.len(),
            "one departure slot per session"
        );
        assert_eq!(receiver.n_flows(), sessions.len(), "one flow per session");
        assert!(cfg.tau > 0.0 && cfg.delta_kb > 0.0 && cfg.slots > 0);
        for (i, s) in sessions.iter().enumerate() {
            receiver.set_source_volume_kb(i, s.total_kb);
        }
        let users = signals
            .into_iter()
            .zip(sessions)
            .zip(arrival_slots.into_iter().zip(departure_slots))
            .map(|((signal, session), (arrival_slot, departure_slot))| {
                let playback = ClientPlayback::new(session.total_playback_s(), cfg.tau);
                UserSim {
                    signal,
                    session,
                    playback,
                    // Radios start cold (fully idle): the first slot's
                    // promotion is charged with its transmission.
                    rrc: RrcMachine::new_idle(models.rrc),
                    meter: EnergyMeter::new(),
                    cur_signal: Dbm(0.0),
                    sig_block: [Dbm(0.0); SIG_BLOCK_SLOTS],
                    cap_block: [0; SIG_BLOCK_SLOTS],
                    epk_sig: Dbm(f64::NAN),
                    epk_per_kb: 0.0,
                    active_slots: 0,
                    arrival_slot,
                    departure_slot,
                    declared_rate_kbps: None,
                    sig_samples: 0,
                }
            })
            .collect();
        Self {
            users,
            scheduler,
            capacity,
            receiver,
            transmitter: DataTransmitter::new(),
            collector,
            units: UnitParams::new(cfg.delta_kb),
            models,
            cfg,
            abr: None,
            admission: None,
        }
    }

    /// Install gateway-side declared rates (e.g. DPI-extracted manifest
    /// rates): snapshots then expose these instead of the instantaneous
    /// session rate. Client-side playback still uses the true rate.
    pub fn set_declared_rates(&mut self, rates_kbps: &[f64]) {
        assert_eq!(rates_kbps.len(), self.users.len());
        for (u, &r) in self.users.iter_mut().zip(rates_kbps) {
            assert!(r > 0.0, "declared rate must be positive");
            u.declared_rate_kbps = Some(r);
        }
    }

    /// Install DASH-style ABR clients: each user fetches fixed-duration
    /// chunks priced by the ladder rung their policy selects, and the
    /// gateway's advertised demand tracks the rung rate. The single-rung
    /// ladder is bit-identical to the constant-bitrate path (`1.0 ×
    /// native` is exact in IEEE 754 and a one-rung policy never stages a
    /// switch) — pinned by the `abr_properties` test pack.
    ///
    /// Must be called before the run starts; `spec` is assumed validated
    /// (see `AbrSpec::validate`).
    pub fn set_abr(&mut self, spec: &AbrSpec) {
        let chunk_s = spec.chunk_slots as f64 * self.cfg.tau;
        let start = spec.start_rung();
        let native: Vec<f64> = self
            .users
            .iter()
            .map(|u| u.session.bitrate.mean_rate())
            .collect();
        let mut clients = Vec::with_capacity(self.users.len());
        for (i, u) in self.users.iter_mut().enumerate() {
            let c = AbrClient::new(&spec.ladder, start, native[i], chunk_s);
            // A below-native start rung re-prices the whole (unfetched)
            // video at the start rung's rate; the receiver's origin-side
            // volume bound follows the session.
            if c.rate_kbps != native[i] {
                let delta = u.session.rescale_remaining(c.rate_kbps / native[i]);
                self.receiver.adjust_source_volume_kb(i, delta);
            }
            clients.push(c);
        }
        self.abr = Some(AbrRuntime {
            spec: spec.clone(),
            chunk_s,
            native,
            clients,
        });
    }

    /// Install gateway admission control over this run's planned
    /// arrivals. [`AdmissionSpec::AlwaysAdmit`] installs nothing — the
    /// identity, bit-identical to an uncontrolled run on every path. The
    /// feasibility policy rules on each pending arrival at the end of the
    /// slot preceding it (arrivals at slot 0 are admitted by fiat: there
    /// is no earlier decision point). The tick runs in the serial
    /// end-of-slot region of every loop — including `run_sharded_on`'s
    /// phase D — so admission-controlled scenarios shard like any other.
    pub fn set_admission(&mut self, spec: &AdmissionSpec) {
        let AdmissionSpec::Feasibility { v, .. } = spec else {
            return;
        };
        let rates: Vec<f64> = self
            .users
            .iter()
            .map(|u| u.session.bitrate.mean_rate())
            .collect();
        let pending: BinaryHeap<Reverse<(u64, usize)>> = self
            .users
            .iter()
            .enumerate()
            .filter(|(_, u)| u.arrival_slot > 0 && u.arrival_slot != u64::MAX)
            .map(|(i, u)| Reverse((u.arrival_slot, i)))
            .collect();
        // Aggregates start with the slot-0 population (admitted by fiat),
        // summed in ascending user order.
        let mut n_active = 0usize;
        let mut rate_sum = 0.0f64;
        for (i, u) in self.users.iter().enumerate() {
            if u.arrival_slot == 0 {
                n_active += 1;
                rate_sum += rates[i];
            }
        }
        self.admission = Some(AdmissionRuntime {
            ctl: AdmissionController::new(spec.clone(), self.users.len()),
            rates,
            v: *v,
            pending,
            energy_mj: 0.0,
            user_slots: 0,
            n_active,
            rate_sum,
        });
    }

    /// Decision tallies of the installed admission controller (`None`
    /// when no feasibility controller is installed).
    pub fn admission_summary(&self) -> Option<jmso_gateway::AdmissionSummary> {
        self.admission.as_ref().map(|a| a.ctl.summary())
    }

    /// Capture full engine state at the top of `slot`.
    fn capture<R: SlotRecorder>(
        &self,
        slot: u64,
        rec: &R,
        loop_state: LoopCkpt,
    ) -> Result<EngineCheckpoint, CheckpointError> {
        let recorder = rec.export_state().ok_or(CheckpointError::Unsupported {
            reason: "recorder cannot export its state".into(),
        })?;
        let scheduler =
            self.scheduler
                .export_state()
                .ok_or_else(|| CheckpointError::Unsupported {
                    reason: format!(
                        "scheduler {} cannot export its state",
                        self.scheduler.name()
                    ),
                })?;
        Ok(EngineCheckpoint {
            version: CKPT_VERSION,
            slot,
            users: self
                .users
                .iter()
                .enumerate()
                .map(|(i, u)| UserCkpt {
                    session: u.session.clone(),
                    playback: u.playback.clone(),
                    rrc: u.rrc.clone(),
                    meter: u.meter.clone(),
                    cur_signal: u.cur_signal,
                    sig_block: u.sig_block.iter().map(|d| d.0).collect(),
                    active_slots: u.active_slots,
                    arrival_slot: u.arrival_slot,
                    departure_slot: u.departure_slot,
                    declared_rate_kbps: u.declared_rate_kbps,
                    sig_samples: u.sig_samples,
                    abr: self.abr.as_ref().map(|a| a.clients[i]),
                })
                .collect(),
            receiver: self.receiver.export_state(),
            collector: self.collector.export_state(),
            scheduler,
            transmitter_clamps: self.transmitter.clamp_events(),
            recorder,
            loop_state,
            admission: self.admission.as_ref().map(|a| AdmissionCkpt {
                state: a.ctl.export_state(),
                energy_mj: a.energy_mj,
                user_slots: a.user_slots,
                n_active: Some(a.n_active),
                rate_sum: Some(a.rate_sum),
            }),
        })
    }

    /// Restore component state from a checkpoint (everything except the
    /// loop-local accumulators, which [`Engine::run_core`] reinstalls).
    fn restore(&mut self, ck: &EngineCheckpoint) -> Result<(), CheckpointError> {
        if ck.users.len() != self.users.len() {
            return Err(CheckpointError::Restore {
                component: "users",
                reason: format!(
                    "checkpoint has {} users, engine has {}",
                    ck.users.len(),
                    self.users.len()
                ),
            });
        }
        for (u, s) in self.users.iter_mut().zip(&ck.users) {
            if s.sig_block.len() != SIG_BLOCK_SLOTS {
                return Err(CheckpointError::Restore {
                    component: "signal",
                    reason: format!(
                        "sig_block has {} entries, expected {SIG_BLOCK_SLOTS}",
                        s.sig_block.len()
                    ),
                });
            }
            // Fast-forward the freshly seeded signal RNG by replaying the
            // recorded number of samples. The block-sampling contract
            // (`sample_into` consumes the stream in slot order) makes
            // one-at-a-time replay equivalent to the original block cuts.
            for replay_slot in 0..s.sig_samples {
                let _ = u.signal.sample(replay_slot);
            }
            for (dst, &v) in u.sig_block.iter_mut().zip(&s.sig_block) {
                *dst = Dbm(v);
            }
            u.session = s.session.clone();
            u.playback = s.playback.clone();
            u.rrc = s.rrc.clone();
            u.meter = s.meter.clone();
            u.cur_signal = s.cur_signal;
            u.epk_sig = Dbm(f64::NAN);
            u.active_slots = s.active_slots;
            u.arrival_slot = s.arrival_slot;
            u.departure_slot = s.departure_slot;
            u.declared_rate_kbps = s.declared_rate_kbps;
            u.sig_samples = s.sig_samples;
        }
        // ABR presence must agree between the checkpoint and the engine
        // (a spec mismatch would silently change pricing mid-run).
        if let Some(a) = self.abr.as_mut() {
            for (i, s) in ck.users.iter().enumerate() {
                let Some(c) = s.abr else {
                    return Err(CheckpointError::Restore {
                        component: "abr",
                        reason: "checkpoint has no ABR client state but the engine runs ABR".into(),
                    });
                };
                a.clients[i] = c;
            }
        } else if ck.users.iter().any(|s| s.abr.is_some()) {
            return Err(CheckpointError::Restore {
                component: "abr",
                reason: "checkpoint carries ABR client state but the engine runs fixed-bitrate"
                    .into(),
            });
        }
        match (self.admission.as_mut(), &ck.admission) {
            (Some(a), Some(s)) => {
                a.ctl
                    .import_state(&s.state)
                    .map_err(|reason| CheckpointError::Restore {
                        component: "admission",
                        reason,
                    })?;
                a.energy_mj = s.energy_mj;
                a.user_slots = s.user_slots;
                // Rebuild the pending heap from the restored arrival
                // slots: at the top of slot k it holds exactly the
                // arrivals still due after k (the tick at the end of slot
                // k−1 consumed everything due at or before k).
                a.pending = self
                    .users
                    .iter()
                    .enumerate()
                    .filter(|(_, u)| u.arrival_slot > ck.slot && u.arrival_slot != u64::MAX)
                    .map(|(i, u)| Reverse((u.arrival_slot, i)))
                    .collect();
                // v4 sidecars carry the running aggregates verbatim (so a
                // resumed run continues on the exact float sum); legacy
                // sidecars get a fresh rescan over the restored state.
                match (s.n_active, s.rate_sum) {
                    (Some(n), Some(r)) => {
                        a.n_active = n;
                        a.rate_sum = r;
                    }
                    _ => {
                        a.n_active = 0;
                        a.rate_sum = 0.0;
                        // Zip (not index) so a malformed legacy sidecar
                        // fails the loop-state length check downstream
                        // instead of panicking here.
                        let done = &ck.loop_state.done_watching;
                        for (i, (u, d)) in self.users.iter().zip(done).enumerate() {
                            if u.arrival_slot <= ck.slot && !d {
                                a.n_active += 1;
                                a.rate_sum += a.rates[i];
                            }
                        }
                    }
                }
            }
            (None, None) => {}
            _ => {
                return Err(CheckpointError::Restore {
                    component: "admission",
                    reason: "admission-control presence differs between checkpoint and engine"
                        .into(),
                })
            }
        }
        self.receiver
            .import_state(&ck.receiver)
            .map_err(|reason| CheckpointError::Restore {
                component: "receiver",
                reason,
            })?;
        self.collector
            .import_state(&ck.collector)
            .map_err(|reason| CheckpointError::Restore {
                component: "collector",
                reason,
            })?;
        self.scheduler
            .import_state(&ck.scheduler)
            .map_err(|reason| CheckpointError::Restore {
                component: "scheduler",
                reason,
            })?;
        self.transmitter.restore_clamp_events(ck.transmitter_clamps);
        Ok(())
    }

    /// Run to the horizon (or until all sessions complete) and report.
    ///
    /// This is the active-set hot path. The slot loop reuses every
    /// intermediate buffer (`raw`, snapshots, the allocation, deliveries,
    /// fairness scratch, and — inside the stateful policies — their own
    /// DP/sort scratch), so a steady-state slot performs zero heap
    /// allocation; on top of that it only touches users that can still
    /// change the outputs:
    ///
    /// * Per-user RSSI is drawn in [`SIG_BLOCK_SLOTS`]-slot blocks via
    ///   [`SignalModel::sample_into`] — one devirtualized dispatch per
    ///   block instead of one per slot, with the per-user RNG consumed in
    ///   the same slot order as stream sampling.
    /// * `live` holds the indices of users whose accounting can still
    ///   move: users enter at their (final) arrival slot — pre-arrival
    ///   users wait in a heap, draw no signal samples (each noise stream
    ///   is anchored at its owner's arrival slot), and cost nothing per
    ///   slot — and a user is retired once playback is complete *and*
    ///   the RRC tail has fully drained — from then on every
    ///   seed-semantics slot would charge exactly `record_tail(0 mJ)`,
    ///   which is settled in one
    ///   [`EnergyMeter::record_saturated_idle_slots`] call at the end.
    ///   The list is kept sorted (order-preserving compaction, in-order
    ///   insertion) so iteration order (and therefore floating-point
    ///   summation order) matches the reference loop bit for bit.
    /// * `raw` and `snapshots` keep full length with stable indices;
    ///   retired users' frozen entries advertise `remaining_kb == 0`, so
    ///   every scheduler's usable-capacity clamp grants them nothing and
    ///   allocations to live users are unaffected. With a noise-free
    ///   collector only live entries are refreshed
    ///   ([`InformationCollector::snapshot_refresh`]); reported-signal
    ///   noise forces the full per-user pass to keep the collector RNG
    ///   stream aligned.
    ///
    /// [`Engine::run_reference`] is the executable specification of these
    /// claims: it runs the plain all-users loop and must produce an
    /// identical [`SimResult`].
    pub fn run(self) -> SimResult {
        self.run_with(&mut NullRecorder)
    }

    /// [`Engine::run`] with a [`SlotRecorder`] observing every slot.
    ///
    /// Generic over the recorder so the [`NullRecorder`] instantiation
    /// monomorphizes every hook into a no-op — `run()` pays nothing for
    /// the instrumentation (pinned by the `hotpath` bench). The recorder
    /// only ever sees simulation state; wall-clock scheduler timing is
    /// gated on [`SlotRecorder::enabled`] and reported separately.
    pub fn run_with<R: SlotRecorder>(self, rec: &mut R) -> SimResult {
        self.run_faulted_with(rec, &NoFaults)
    }

    /// [`Engine::run_with`] under a [`FaultHook`]. [`NoFaults`]
    /// monomorphizes to exactly the fault-free loop; a compiled
    /// [`FaultPlan`](crate::faults::FaultPlan) perturbs signals, BS
    /// capacity, and sessions after all RNG draws.
    pub fn run_faulted_with<R: SlotRecorder, F: FaultHook>(
        self,
        rec: &mut R,
        faults: &F,
    ) -> SimResult {
        match self.run_core(rec, faults, None, CkptMode::Off) {
            Ok(RunOutcome::Done(r)) => r,
            // `Off` mode performs no I/O, imports no state, never pauses.
            Ok(RunOutcome::Paused(_)) | Err(_) => {
                unreachable!("CkptMode::Off cannot pause or fail")
            }
        }
    }

    /// Resume a run from a checkpoint captured by [`Engine::run_core`].
    /// `self` must be freshly built for the same scenario (same users,
    /// seeds, scheduler kind); the recorder must be of the same kind that
    /// captured the checkpoint.
    pub fn resume_with<R: SlotRecorder, F: FaultHook>(
        self,
        rec: &mut R,
        faults: &F,
        ckpt: &EngineCheckpoint,
    ) -> Result<SimResult, SimError> {
        match self.run_core(rec, faults, Some(ckpt), CkptMode::Off)? {
            RunOutcome::Done(r) => Ok(r),
            RunOutcome::Paused(_) => unreachable!("CkptMode::Off never pauses"),
        }
    }

    /// [`Engine::run_sharded_on`] on the process-wide
    /// [`WorkerPool::global`].
    pub fn run_sharded_with<R: SlotRecorder + Send>(self, rec: &mut R, shards: usize) -> SimResult {
        self.run_sharded_on(WorkerPool::global(), shards, rec)
    }

    /// Shard-parallel form of the hot path: users are partitioned into
    /// `shards` contiguous ranges, each owned by one pool participant,
    /// and every slot runs four lockstep phases fenced by a
    /// [`SpinBarrier`]:
    ///
    /// * **A (parallel)** — each shard samples its users' signal blocks,
    ///   refills their Eq. (1) cap tables, advances playback clocks, and
    ///   refreshes its rows of the shared snapshot buffer (and SoA
    ///   mirror) in place;
    /// * **B (serial)** — participant 0 merges the shards against the
    ///   shared Eq. (2) BS capacity: one scheduler call over the full
    ///   snapshot buffer, then the transmitter moves bytes;
    /// * **C (parallel)** — each shard applies its users' deliveries and
    ///   settles device accounting (Eq. 3/4/5) locally, capturing RRC
    ///   transitions for replay;
    /// * **D (serial)** — participant 0 replays per-user records into the
    ///   recorder in global user order, folds the per-slot series, and
    ///   runs the end-of-slot admission tick, so every floating-point
    ///   sum, every recorder call, and every admission ruling happens in
    ///   the exact serial order.
    ///
    /// Bit-identical to [`Engine::run_with`] by construction: shards
    /// write disjoint rows with the serial loop's exact expressions, and
    /// nothing order-sensitive runs in a parallel phase (pinned by the
    /// `shard_properties` tests). `shards` is a ceiling — the effective
    /// width is clamped to the pool (`workers + 1`); width ≤ 1, or a
    /// collector that is not pass-through (whose per-user RNG stream
    /// must be consumed in global user order), falls back to the serial
    /// loop. Checkpointing and fault hooks stay serial-only.
    pub fn run_sharded_on<R: SlotRecorder + Send>(
        self,
        pool: &WorkerPool,
        shards: usize,
        rec: &mut R,
    ) -> SimResult {
        let width = shards.min(pool.n_workers() + 1);
        if width <= 1 {
            // Requested (or clamped-to) serial width: the serial loop IS
            // the requested execution, not a substitution — no warning.
            return self.run_with(rec);
        }
        if !self.collector.is_pass_through() {
            let mut r = self.run_with(rec);
            r.warnings.push(SimWarning::ShardFallback {
                reason: "collector is not pass-through: its per-user RNG stream must be \
                         consumed in global user order, so the run fell back to the serial loop"
                    .into(),
            });
            return r;
        }
        let Engine {
            mut users,
            scheduler,
            capacity,
            receiver,
            transmitter,
            mut collector,
            units,
            models,
            cfg,
            abr,
            admission,
        } = self;
        // Split the ABR runtime so phase C can stage per-user decisions
        // through a SharedSlice while the spec/native tables stay shared
        // read-only across shards.
        type AbrMeta = (AbrSpec, f64, Vec<f64>);
        let (abr_meta, mut abr_clients): (Option<AbrMeta>, Vec<AbrClient>) = match abr {
            Some(a) => (Some((a.spec, a.chunk_s, a.native)), a.clients),
            None => (None, Vec::new()),
        };
        let n_users = users.len();
        let rec_enabled = rec.enabled();
        let record_series = cfg.record_series;
        let has_admission = admission.is_some();
        let use_soa = scheduler.wants_soa();
        const FAIR_WINDOW: u64 = 10;
        rec.begin_run(n_users, cfg.tau);

        // Shared full-length buffers, one stable row per user. Rows of
        // not-yet-arrived users keep these placeholder contents — the
        // exact frozen row the serial driver's arrival gate never
        // writes, so schedulers see identical inputs on every path.
        let mut raw_buf: Vec<RawUserState> = vec![
            RawUserState {
                signal: Dbm(0.0),
                rate_kbps: 0.0,
                buffer_s: 0.0,
                remaining_kb: 0.0,
                active: false,
                idle_s: 0.0,
                rrc_state: RrcState::Idle,
            };
            n_users
        ];
        let mut snaps_buf: Vec<UserSnapshot> = (0..n_users)
            .map(|id| UserSnapshot {
                id,
                signal: Dbm(0.0),
                rate_kbps: 0.0,
                buffer_s: 0.0,
                remaining_kb: 0.0,
                active: false,
                link_cap_units: 0,
                idle_s: 0.0,
                rrc_state: RrcState::Idle,
            })
            .collect();
        let mut slot_e_buf = vec![0.0f64; n_users];
        let mut done_watching = vec![false; n_users];
        let mut retired = vec![false; n_users];
        let mut retired_at = vec![0u64; n_users];

        // Mirror the serial driver's slot-0 full snapshot pass: derive
        // every row — including not-yet-arrived users' placeholder rows
        // — through the collector once, so a pre-arrival snapshot holds
        // the exact bytes the serial path computes for it (phase A then
        // only ever refreshes arrived rows, like the serial refresh).
        collector.snapshot_into(0, &raw_buf, &mut snaps_buf);

        // The SoA mirror's raw row writer is captured before the mirror
        // moves into the serial context: the pointers target the column
        // Vecs' heap buffers, which are stable across the move.
        let mut soa = SnapshotSoA::new();
        if use_soa {
            soa.resize(n_users);
            soa.fill_from(&snaps_buf, cfg.tau, cfg.delta_kb);
        }
        let soa_rows = use_soa.then(|| soa.rows());

        // One shard of contiguous user ids per participant; their
        // concatenation in shard order is exactly the serial live list
        // (arrived users only — the rest wait in the shard's arrival
        // queue, exactly like the serial driver's gate).
        let shard_cells: Vec<PhaseCell<ShardState>> = (0..width)
            .map(|s| {
                let lo = s * n_users / width;
                let hi = (s + 1) * n_users / width;
                PhaseCell::new(ShardState {
                    live: (lo..hi).filter(|&i| users[i].arrival_slot == 0).collect(),
                    arrival_queue: (lo..hi)
                        .filter(|&i| users[i].arrival_slot > 0 && users[i].arrival_slot != u64::MAX)
                        .map(|i| Reverse((users[i].arrival_slot, i)))
                        .collect(),
                    events: Vec::new(),
                    flips: Vec::new(),
                    v_scratch: [0.0; SIG_BLOCK_SLOTS],
                    watching_dec: 0,
                    in_system: 0,
                    any_retired: false,
                })
            })
            .collect();

        let users_s = SharedSlice::new(&mut users);
        debug_assert_eq!(users_s.len(), n_users);
        let raw_s = SharedSlice::new(&mut raw_buf);
        let snaps_s = SharedSlice::new(&mut snaps_buf);
        let slot_e_s = SharedSlice::new(&mut slot_e_buf);
        let done_s = SharedSlice::new(&mut done_watching);
        let retired_s = SharedSlice::new(&mut retired);
        let retired_at_s = SharedSlice::new(&mut retired_at);
        let abr_s = SharedSlice::new(&mut abr_clients);
        let abr_meta_ref = &abr_meta;

        let serial = PhaseCell::new(SerialCtx {
            scheduler,
            capacity,
            receiver,
            transmitter,
            rec,
            alloc: Allocation::zeros(n_users),
            deliveries: Vec::with_capacity(n_users),
            fairness_scratch: Vec::with_capacity(n_users),
            fairness_series: Vec::new(),
            fairness_window_series: Vec::new(),
            power_series_j: Vec::new(),
            window_delivered: vec![0.0; n_users],
            window_need: vec![0.0; n_users],
            watching: n_users,
            slots_run: 0,
            admission,
            bs_cap_units: 0,
        });

        let barrier = SpinBarrier::new(width);
        let quit = AtomicBool::new(false);
        let collector_ref = &collector;
        let soa_cell = PhaseCell::new(soa);

        pool.broadcast(width, &|p| {
            let my = &shard_cells[p];
            for slot in 0..cfg.slots {
                // ---- Phase A (parallel): per-shard radio & playback ----
                {
                    // SAFETY: parallel phase — shard `p` belongs to this
                    // participant until the next barrier crossing.
                    let sh = unsafe { my.get_mut() };
                    if sh.any_retired {
                        // Compaction deferred from phase C so phase D
                        // could replay the retiring slot's records.
                        // SAFETY: retired flags are frozen in phase A.
                        sh.live.retain(|&i| unsafe { !*retired_s.get(i) });
                        sh.any_retired = false;
                    }
                    // Admit due arrivals into this shard's live list —
                    // the serial driver's arrival gate, split by range.
                    // An entry staled by an admission deferral (phase D
                    // moved the arrival later) re-queues at the current
                    // arrival slot; a rejected user (arrival `u64::MAX`)
                    // is dropped.
                    while let Some(&Reverse((due, i))) = sh.arrival_queue.peek() {
                        if due > slot {
                            break;
                        }
                        sh.arrival_queue.pop();
                        // SAFETY: `i` lies in this shard's disjoint range.
                        let arrival = unsafe { users_s.get(i) }.arrival_slot;
                        if arrival <= slot {
                            // Order-preserving insert keeps the shard's
                            // live list ascending.
                            let pos = sh.live.partition_point(|&j| j < i);
                            sh.live.insert(pos, i);
                        } else if arrival != u64::MAX {
                            sh.arrival_queue.push(Reverse((arrival, i)));
                        }
                    }
                    for k in 0..sh.live.len() {
                        let i = sh.live[k];
                        // SAFETY: `i` lies in this shard's disjoint range.
                        let u = unsafe { users_s.get_mut(i) };
                        debug_assert!(slot >= u.arrival_slot, "live user must have arrived");
                        // Per-user signal block anchored at the final
                        // arrival slot — the serial driver's exact gate.
                        let block_off = ((slot - u.arrival_slot) % SIG_BLOCK_SLOTS as u64) as usize;
                        if block_off == 0 {
                            u.signal.sample_into(slot, &mut u.sig_block);
                            u.sig_samples += SIG_BLOCK_SLOTS as u64;
                            collector_ref.link_caps_into(
                                &u.sig_block,
                                &mut sh.v_scratch,
                                &mut u.cap_block,
                            );
                        }
                        u.cur_signal = u.sig_block[block_off];
                        let link_cap = u.cap_block[block_off];
                        // Gateway-advertised demand: the ABR rung rate
                        // when clients are installed (single-rung = the
                        // native rate, bitwise), else the session rate.
                        // SAFETY: row `i` belongs to this shard.
                        let abr_rate = abr_meta_ref
                            .is_some()
                            .then(|| unsafe { abr_s.get(i) }.rate_kbps);
                        if slot >= u.departure_slot {
                            // Workload churn departure (idempotent).
                            u.session.cancel_remaining();
                            u.playback.abandon();
                        }
                        let outcome = u.playback.begin_slot();
                        if outcome.active {
                            u.active_slots += 1;
                        }
                        let r = RawUserState {
                            signal: u.cur_signal,
                            rate_kbps: abr_rate.unwrap_or_else(|| {
                                u.declared_rate_kbps
                                    .unwrap_or_else(|| u.session.rate_at(slot))
                            }),
                            buffer_s: outcome.occupancy_s,
                            remaining_kb: u.session.remaining_kb(),
                            active: outcome.active,
                            idle_s: u.rrc.idle_seconds(),
                            rrc_state: u.rrc.state(),
                        };
                        // Snapshot refresh: the pass-through collector's
                        // caps path verbatim (report = truth, Eq. (1)
                        // bound from the per-block table — the exact
                        // values `snapshot_refresh_soa` would write). The
                        // signal cache the serial collector maintains is
                        // write-only state here — sharded runs neither
                        // checkpoint nor add noise, so it is never read
                        // again and skipping it cannot change an output.
                        let snap = UserSnapshot {
                            id: i,
                            signal: r.signal,
                            rate_kbps: r.rate_kbps,
                            buffer_s: r.buffer_s,
                            remaining_kb: r.remaining_kb,
                            active: r.active,
                            link_cap_units: link_cap,
                            idle_s: r.idle_s,
                            rrc_state: r.rrc_state,
                        };
                        if let Some(rows) = soa_rows.as_ref() {
                            // SAFETY: row `i` belongs to this shard.
                            unsafe { rows.set_row(&snap, cfg.tau, cfg.delta_kb) };
                        }
                        // SAFETY: disjoint rows per shard (phase A).
                        unsafe {
                            *raw_s.get_mut(i) = r;
                            *snaps_s.get_mut(i) = snap;
                        }
                    }
                }
                barrier.wait();

                // ---- Phase B (serial): merge vs the shared BS cap ----
                if p == 0 {
                    // SAFETY: serial phase — every other participant is
                    // parked at the barrier below.
                    let SerialCtx {
                        scheduler,
                        capacity,
                        receiver,
                        transmitter,
                        rec,
                        alloc,
                        deliveries,
                        slots_run,
                        bs_cap_units: bs_cap_ctx,
                        ..
                    } = unsafe { serial.get_mut() };
                    *slots_run = slot + 1;
                    let cap = capacity.capacity(slot);
                    let bs_cap_units = units.bs_cap_units(cap, cfg.tau);
                    *bs_cap_ctx = bs_cap_units;
                    rec.begin_slot(slot, bs_cap_units);
                    receiver.ingest_slot(slot);
                    // SAFETY: serial phase; no shard writes rows now.
                    let ctx = SlotContext {
                        slot,
                        tau: cfg.tau,
                        delta_kb: cfg.delta_kb,
                        bs_cap_units,
                        users: unsafe { snaps_s.as_slice() },
                        soa: if use_soa {
                            Some(unsafe { soa_cell.get() })
                        } else {
                            None
                        },
                    };
                    if rec_enabled {
                        let t0 = std::time::Instant::now();
                        scheduler.allocate_into(&ctx, alloc);
                        rec.record_sched_latency_ns(t0.elapsed().as_nanos() as u64);
                        rec.record_alloc(&alloc.0);
                        if let Some(q) = scheduler.queue_values() {
                            rec.record_queues(q);
                        }
                        let deg = scheduler.degradations();
                        if !deg.is_empty() {
                            rec.record_degradations(deg);
                        }
                    } else {
                        scheduler.allocate_into(&ctx, alloc);
                    }
                    transmitter.transmit_into(&ctx, alloc, receiver, deliveries);
                }
                barrier.wait();

                // ---- Phase C (parallel): per-shard accounting ----
                {
                    // SAFETY: parallel phase — shard `p` is ours.
                    let sh = unsafe { my.get_mut() };
                    sh.watching_dec = 0;
                    sh.in_system = 0;
                    sh.events.clear();
                    sh.flips.clear();
                    // SAFETY: the serial state is read-only in phase C.
                    let deliveries = &unsafe { serial.get() }.deliveries;
                    for k in 0..sh.live.len() {
                        let i = sh.live[k];
                        // SAFETY: disjoint shard range.
                        let u = unsafe { users_s.get_mut(i) };
                        debug_assert!(slot >= u.arrival_slot, "live user must have arrived");
                        let d = &deliveries[i];
                        let slot_e = if d.kb > 0.0 {
                            let accepted = u.session.deliver(d.kb);
                            debug_assert!(
                                (accepted - d.kb).abs() < 1e-6,
                                "transmitter should never over-deliver"
                            );
                            // Playback advances at the rung rate under
                            // ABR (lower rungs stretch delivered KB into
                            // more playback seconds); the serial loop's
                            // exact expression.
                            if let Some((spec, chunk_s, native)) = abr_meta_ref {
                                // SAFETY: row `i` belongs to this shard.
                                let c = unsafe { abr_s.get_mut(i) };
                                u.playback.deliver(accepted, c.rate_kbps);
                                // SAFETY: own-shard rows, frozen since
                                // phase A.
                                let inp = AbrInputs {
                                    buffer_s: unsafe { raw_s.get(i) }.buffer_s,
                                    predicted_kbps: unsafe { snaps_s.get(i) }.link_cap_units as f64
                                        * cfg.delta_kb
                                        / cfg.tau,
                                };
                                c.on_delivery(
                                    accepted,
                                    u.session.fully_fetched(),
                                    &spec.ladder,
                                    &spec.policy,
                                    native[i],
                                    *chunk_s,
                                    inp,
                                );
                            } else {
                                u.playback.deliver(accepted, u.session.rate_at(slot));
                            }
                            if u.epk_sig.value() != u.cur_signal.value() {
                                u.epk_per_kb = models.power.energy_per_kb(u.cur_signal);
                                u.epk_sig = u.cur_signal;
                            }
                            let e = MilliJoules(u.epk_per_kb * accepted);
                            if rec_enabled {
                                u.rrc.on_transmit_observed(|f, t| sh.events.push((i, f, t)));
                            } else {
                                u.rrc.on_transmit();
                            }
                            u.meter.record_transmission(e);
                            e.value()
                        } else {
                            let e = if rec_enabled {
                                u.rrc
                                    .on_idle_observed(cfg.tau, |f, t| sh.events.push((i, f, t)))
                            } else {
                                u.rrc.on_idle(cfg.tau)
                            };
                            u.meter.record_tail(e);
                            e.value()
                        };
                        if rec_enabled || record_series || has_admission {
                            // SAFETY: disjoint shard range. Phase D's E*
                            // replay needs the per-user energy too.
                            unsafe { *slot_e_s.get_mut(i) = slot_e };
                        }
                        // SAFETY: disjoint shard range (flags below too).
                        let done = unsafe { done_s.get_mut(i) };
                        if !*done && u.session.fully_fetched() && u.playback.playback_complete() {
                            *done = true;
                            sh.watching_dec += 1;
                            if has_admission {
                                sh.flips.push(i);
                            }
                        }
                        if rec_enabled && !*done {
                            sh.in_system += 1;
                        }
                        if *done && u.rrc.state() == RrcState::Idle {
                            unsafe {
                                *retired_s.get_mut(i) = true;
                                *retired_at_s.get_mut(i) = slot;
                            }
                            sh.any_retired = true;
                        }
                    }
                }
                barrier.wait();

                // ---- Phase D (serial): in-order replay & series ----
                if p == 0 {
                    // SAFETY: serial phase (other participants parked).
                    let SerialCtx {
                        receiver,
                        rec,
                        deliveries,
                        fairness_scratch,
                        fairness_series,
                        fairness_window_series,
                        power_series_j,
                        window_delivered,
                        window_need,
                        watching,
                        admission,
                        bs_cap_units,
                        ..
                    } = unsafe { serial.get_mut() };
                    let mut watching_dec = 0usize;
                    let mut in_system = 0u64;
                    if rec_enabled || record_series || has_admission {
                        let mut slot_energy_mj = 0.0;
                        fairness_scratch.clear();
                        for cell in shard_cells.iter() {
                            // SAFETY: shards are quiescent in phase D.
                            let sh = unsafe { cell.get() };
                            let mut ev = 0usize;
                            let mut fl = 0usize;
                            for &i in &sh.live {
                                // SAFETY: exclusive serial phase.
                                let u = unsafe { users_s.get(i) };
                                // RRC transitions precede the user record,
                                // exactly as the serial accounting emits
                                // them; the cursors work because phase C
                                // pushed events (and done-flag flips) in
                                // this same live order.
                                while ev < sh.events.len() && sh.events[ev].0 == i {
                                    let (_, f, t) = sh.events[ev];
                                    rec.record_rrc_transition(i, f, t);
                                    ev += 1;
                                }
                                // SAFETY: exclusive serial phase.
                                let slot_e = unsafe { *slot_e_s.get(i) };
                                slot_energy_mj += slot_e;
                                if let Some(adm) = admission.as_mut() {
                                    let flipped = fl < sh.flips.len() && sh.flips[fl] == i;
                                    if flipped {
                                        fl += 1;
                                    }
                                    // SAFETY: exclusive serial phase.
                                    let done = unsafe { *done_s.get(i) };
                                    // Pre-flip membership, exactly as the
                                    // serial E* accumulator sees it (the
                                    // finishing slot itself still counts).
                                    if !done || flipped {
                                        adm.energy_mj += slot_e;
                                        adm.user_slots += 1;
                                    }
                                    // Membership event point: replay the
                                    // aggregate decrement in the serial
                                    // loop's exact user order.
                                    if flipped {
                                        adm.n_active -= 1;
                                        adm.rate_sum -= adm.rates[i];
                                    }
                                }
                                rec.record_user(i, slot_e, u.playback.total_rebuffer_s());
                                if record_series {
                                    // SAFETY: exclusive serial phase.
                                    let r = unsafe { raw_s.get(i) };
                                    if r.remaining_kb > 0.0 {
                                        let need_kb = (cfg.tau * r.rate_kbps).min(r.remaining_kb);
                                        if need_kb > 0.0 {
                                            fairness_scratch.push(deliveries[i].kb / need_kb);
                                            window_delivered[i] += deliveries[i].kb;
                                            window_need[i] += need_kb;
                                        }
                                    }
                                }
                            }
                            watching_dec += sh.watching_dec;
                            in_system += sh.in_system;
                        }
                        if record_series {
                            if !fairness_scratch.is_empty() {
                                fairness_series.push(jain_index(fairness_scratch.as_slice()));
                            }
                            power_series_j.push(slot_energy_mj / 1000.0);
                            if (slot + 1).is_multiple_of(FAIR_WINDOW) {
                                fairness_scratch.clear();
                                for i in 0..n_users {
                                    if window_need[i] > 0.0 {
                                        fairness_scratch.push(window_delivered[i] / window_need[i]);
                                    }
                                }
                                if !fairness_scratch.is_empty() {
                                    fairness_window_series
                                        .push(jain_index(fairness_scratch.as_slice()));
                                }
                                window_delivered.fill(0.0);
                                window_need.fill(0.0);
                            }
                        }
                    } else {
                        for cell in shard_cells.iter() {
                            // SAFETY: shards are quiescent in phase D.
                            watching_dec += unsafe { cell.get() }.watching_dec;
                        }
                    }
                    // Commit staged ABR switches in ascending user order
                    // — the serial loop's exact commit order, so rung
                    // state, session re-pricing, and switch records are
                    // bit-identical across shard widths.
                    if let Some((spec, _, native)) = abr_meta_ref {
                        for (i, &nat) in native.iter().enumerate() {
                            // SAFETY: exclusive serial phase.
                            let c = unsafe { abr_s.get_mut(i) };
                            if let Some(sw) = c.apply_pending(&spec.ladder, nat) {
                                // SAFETY: exclusive serial phase.
                                let u = unsafe { users_s.get_mut(i) };
                                let delta = u.session.rescale_remaining(sw.ratio);
                                receiver.adjust_source_volume_kb(i, delta);
                                rec.record_abr_switch(i, sw.from, sw.to);
                            }
                        }
                    }
                    if rec_enabled {
                        rec.record_live(in_system);
                    }
                    // Fold the shard flips before the admission tick so a
                    // rejection decrements an up-to-date watch count —
                    // the serial loop's exact ordering.
                    *watching -= watching_dec;
                    if let Some(adm) = admission.as_mut() {
                        // SAFETY: exclusive serial phase — every shard is
                        // parked at the barrier below, so the full user
                        // and done-flag slices are ours. The tick is the
                        // serial loop's end-of-slot tick verbatim; its
                        // deferral/rejection writes are picked up by the
                        // owning shard's arrival queue next phase A.
                        admission_tick(
                            adm,
                            unsafe { users_s.as_mut_slice() },
                            unsafe { done_s.as_mut_slice() },
                            watching,
                            &mut **rec,
                            slot,
                            *bs_cap_units,
                            cfg.tau,
                            cfg.delta_kb,
                        );
                    }
                    rec.end_slot();
                    if *watching == 0 || slot + 1 == cfg.slots {
                        quit.store(true, Ordering::Release);
                    }
                }
                barrier.wait();
                if quit.load(Ordering::Acquire) {
                    break;
                }
            }
        });

        let SerialCtx {
            scheduler,
            capacity,
            receiver,
            transmitter,
            rec,
            fairness_series,
            fairness_window_series,
            power_series_j,
            slots_run,
            ..
        } = serial.into_inner();
        rec.end_run();
        // Settle the idle slots the retired users sat out, exactly as the
        // serial loop does after its exit.
        for i in 0..n_users {
            if retired[i] {
                users[i]
                    .meter
                    .record_saturated_idle_slots(slots_run - 1 - retired_at[i]);
            }
        }
        let engine = Engine {
            users,
            scheduler,
            capacity,
            receiver,
            transmitter,
            collector,
            units,
            models,
            cfg,
            abr: None,
            admission: None,
        };
        let mut result = engine.finish(
            slots_run,
            fairness_series,
            fairness_window_series,
            power_series_j,
        );
        result.telemetry = rec.summary();
        result
    }

    /// The one true hot loop: fault-aware, checkpoint-aware, generic over
    /// recorder and fault hook so the plain `run()` instantiation compiles
    /// to the same code as before either subsystem existed.
    ///
    /// Implemented as a thin cadence loop over [`SlotDriver`]: the engine
    /// converts into a driver ([`Engine::into_driver`]) and steps to the
    /// horizon, so batch runs and live stepping execute the exact same
    /// slot code — the golden traces and the resume ≡ straight-run
    /// proptests pin both at once.
    ///
    /// * `resume` — restore this checkpoint (captured by an earlier run of
    ///   the same scenario) and continue from its slot.
    /// * `mode` — periodic sidecar checkpointing, a one-shot pause, or
    ///   neither. Checkpoints are captured at the *top* of a slot, before
    ///   any of that slot's state changes.
    pub fn run_core<R: SlotRecorder, F: FaultHook>(
        self,
        rec: &mut R,
        faults: &F,
        resume: Option<&EngineCheckpoint>,
        mode: CkptMode<'_>,
    ) -> Result<RunOutcome, SimError> {
        let resumed = resume.is_some();
        let mut drv = self.into_driver(rec, faults, resume)?;
        while !drv.is_finished() {
            let slot = drv.next_slot();
            match mode {
                CkptMode::Off => {}
                CkptMode::EveryToFile { every, path } => {
                    if every > 0 && slot != drv.start_slot() && slot.is_multiple_of(every) {
                        let ck = drv.checkpoint(rec).map_err(SimError::Checkpoint)?;
                        ck.write_file(path).map_err(SimError::Checkpoint)?;
                    }
                }
                CkptMode::PauseAt { slot: pause } => {
                    if slot == pause && (!resumed || slot > drv.start_slot()) {
                        let ck = drv.checkpoint(rec).map_err(SimError::Checkpoint)?;
                        return Ok(RunOutcome::Paused(Box::new(ck)));
                    }
                }
            }
            drv.step(rec);
        }
        Ok(RunOutcome::Done(drv.finish(rec)))
    }

    /// Convert the engine into a [`SlotDriver`] — the resumable stepping
    /// form of the hot loop, executing exactly one slot per
    /// [`SlotDriver::step`] call.
    ///
    /// Every batch run path is a thin loop over the driver (see
    /// [`Engine::run_core`]), so stepping it from a front-end — with
    /// checkpoints, live arrival scheduling, or degradation between
    /// slots — is bit-identical to a batch run by construction: there is
    /// no second loop implementation to drift.
    ///
    /// `faults` is taken by value: pass [`NoFaults`], a compiled
    /// [`FaultPlan`](crate::faults::FaultPlan), a reference to either
    /// (`&F` of any hook is itself a hook), or the runtime-selected
    /// [`DynFaults`](crate::faults::DynFaults).
    ///
    /// On resume the checkpoint is restored exactly as the batch resume
    /// path does: component state imports, per-user RNG fast-forward,
    /// and derived state (SoA mirror, link-cap tables) rebuilt.
    pub fn into_driver<R: SlotRecorder, F: FaultHook>(
        mut self,
        rec: &mut R,
        faults: F,
        resume: Option<&EngineCheckpoint>,
    ) -> Result<SlotDriver<F>, SimError> {
        let n_users = self.users.len();
        let series_cap = if self.cfg.record_series {
            self.cfg.slots as usize
        } else {
            0
        };
        let mut fairness_series = Vec::with_capacity(series_cap);
        let mut fairness_window_series = Vec::with_capacity(series_cap.div_ceil(10));
        let mut power_series_j = Vec::with_capacity(series_cap);
        let fairness_scratch: Vec<f64> = Vec::with_capacity(n_users);
        // 10-slot accumulators for the windowed fairness view.
        let mut window_delivered = vec![0.0f64; n_users];
        let mut window_need = vec![0.0f64; n_users];
        let mut slots_run = 0;

        // Early-exit bookkeeping: a user counts as watching until their
        // session is fully fetched *and* fully watched. Both predicates
        // are monotone, so a per-user flag plus a counter replaces a
        // per-slot O(N) scan over all users.
        let mut watching = n_users;
        let mut done_watching = vec![false; n_users];
        // Retirement bookkeeping: once retired a user leaves the live set
        // and their trailing zero-cost idle slots are settled after the
        // loop.
        let mut retired = vec![false; n_users];
        let mut retired_at = vec![0u64; n_users];
        // Arrival gate: only users whose sessions have started occupy
        // the live set; the rest wait in a min-heap keyed by arrival
        // slot and join (ascending user order within a slot) once due.
        // A user's noise stream is anchored at their final arrival slot
        // — pre-arrival users draw no signal samples at all, so the
        // per-slot work scales with the arrived population, not the
        // scenario's user count.
        let mut live: Vec<usize> = Vec::with_capacity(n_users);
        let mut entered = vec![false; n_users];
        let mut arrival_queue: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        for (i, u) in self.users.iter().enumerate() {
            if u.arrival_slot == 0 {
                live.push(i);
                entered[i] = true;
            } else if u.arrival_slot != u64::MAX {
                arrival_queue.push(Reverse((u.arrival_slot, i)));
            }
        }

        // Per-slot pipeline buffers, hoisted out of the loop and reused.
        // `raw` keeps one stable entry per user; retired users' entries
        // freeze at their retirement-slot values.
        let mut raw: Vec<RawUserState> = vec![
            RawUserState {
                signal: Dbm(0.0),
                rate_kbps: 0.0,
                buffer_s: 0.0,
                remaining_kb: 0.0,
                active: false,
                idle_s: 0.0,
                rrc_state: RrcState::Idle,
            };
            n_users
        ];
        let mut snapshots = Vec::with_capacity(n_users);
        let collector_full_pass = self.collector.needs_full_pass();
        // Block-precomputed radio tables (per-user Eq. (1) caps for a
        // whole RSSI block) are only sound when the reported signal is
        // exactly the sampled one — a pass-through collector — and no
        // fault hook can perturb signals after sampling. Outside that
        // regime the loop falls back to the scalar kernels, which are
        // bit-identical by construction (shared per-element `kernel`).
        let tables_enabled = !faults.enabled() && self.collector.is_pass_through();
        let mut v_scratch = [0.0f64; SIG_BLOCK_SLOTS];
        // The SoA mirror is maintained only for schedulers that read it
        // (Scheduler::wants_soa): column upkeep re-derives unit
        // quantities per live user every slot, which row-walking
        // policies would pay for without ever looking at the result.
        let use_soa = self.scheduler.wants_soa();
        let mut soa = SnapshotSoA::new();

        let mut start_slot = 0;
        if let Some(ck) = resume {
            self.restore(ck).map_err(SimError::Checkpoint)?;
            rec.import_state(&ck.recorder)
                .map_err(|reason| CheckpointError::Restore {
                    component: "recorder",
                    reason,
                })
                .map_err(SimError::Checkpoint)?;
            let ls = &ck.loop_state;
            if ls.done_watching.len() != n_users
                || ls.retired.len() != n_users
                || ls.live.iter().any(|&i| i >= n_users)
            {
                return Err(CheckpointError::Restore {
                    component: "loop state",
                    reason: "user indices out of range".into(),
                }
                .into());
            }
            fairness_series = ls.fairness_series.clone();
            fairness_window_series = ls.fairness_window_series.clone();
            power_series_j = ls.power_series_j.clone();
            window_delivered = ls.window_delivered.clone();
            window_need = ls.window_need.clone();
            slots_run = ls.slots_run;
            watching = ls.watching;
            done_watching = ls.done_watching.clone();
            retired = ls.retired.clone();
            retired_at = ls.retired_at.clone();
            // Re-derive the arrival gate from the restored schedule:
            // pre-arrival users move out of the restored live set
            // (legacy pre-v4 checkpoints carried every user in `live`;
            // current ones never include the un-arrived) and back into
            // the arrival queue. `entered` is exactly "in live or
            // retired" — a user only ever leaves `live` by retiring —
            // so no extra loop state needs checkpointing.
            live = ls.live.clone();
            live.retain(|&i| self.users[i].arrival_slot <= ck.slot);
            entered.fill(false);
            for &i in &live {
                entered[i] = true;
            }
            arrival_queue.clear();
            for i in 0..n_users {
                if retired[i] {
                    entered[i] = true;
                }
                if !entered[i] && self.users[i].arrival_slot != u64::MAX {
                    arrival_queue.push(Reverse((self.users[i].arrival_slot, i)));
                }
            }
            raw = ls.raw.clone();
            snapshots = ls.snapshots.clone();
            // The SoA mirror and the radio tables are derived state, not
            // checkpointed: rebuild both from the restored snapshots and
            // signal blocks so a resumed run re-enters the block mid-way
            // with the exact values the straight run would hold.
            if use_soa {
                soa.fill_from(&snapshots, self.cfg.tau, self.cfg.delta_kb);
            }
            if tables_enabled {
                for u in &mut self.users {
                    self.collector
                        .link_caps_into(&u.sig_block, &mut v_scratch, &mut u.cap_block);
                }
            }
            start_slot = ck.slot;
        } else {
            rec.begin_run(n_users, self.cfg.tau);
        }

        let finished = start_slot >= self.cfg.slots;
        let alloc = Allocation::zeros(n_users);
        let deliveries = Vec::with_capacity(n_users);
        Ok(SlotDriver {
            engine: self,
            faults,
            fairness_series,
            fairness_window_series,
            power_series_j,
            fairness_scratch,
            window_delivered,
            window_need,
            slots_run,
            watching,
            done_watching,
            retired,
            retired_at,
            live,
            arrival_queue,
            entered,
            raw,
            snapshots,
            alloc,
            deliveries,
            fault_notes: Vec::new(),
            collector_full_pass,
            tables_enabled,
            v_scratch,
            cap_hint: vec![0; n_users],
            use_soa,
            soa,
            start_slot,
            next_slot: start_slot,
            finished,
        })
    }
    /// Reference slot loop: every user is visited every slot and signals
    /// are drawn one slot at a time — the plain transcription of the §III
    /// pipeline with none of [`Engine::run`]'s active-set machinery.
    ///
    /// This is the executable specification for the hot path: on any
    /// scenario, `run()` and `run_reference()` must return identical
    /// [`SimResult`]s (pinned by the `active_set_matches_reference`
    /// property test). It is also the baseline the `hotpath` bench
    /// compares against.
    pub fn run_reference(self) -> SimResult {
        self.run_reference_with(&mut NullRecorder)
    }

    /// [`Engine::run_reference`] with a [`SlotRecorder`] observing every
    /// slot. Produces a trace identical to [`Engine::run_with`]'s on any
    /// scenario: per-user records land at stable indices, and the users
    /// the active-set loop skips would only ever contribute zero-energy,
    /// zero-delta records (pinned by the trace-equality property test).
    pub fn run_reference_with<R: SlotRecorder>(self, rec: &mut R) -> SimResult {
        self.run_reference_faulted_with(rec, &NoFaults)
    }

    /// [`Engine::run_reference_with`] under a [`FaultHook`] — the
    /// executable specification for [`Engine::run_faulted_with`]: both
    /// must produce identical results and traces under any fault plan
    /// (checkpointing stays exclusive to the hot path).
    pub fn run_reference_faulted_with<R: SlotRecorder, F: FaultHook>(
        mut self,
        rec: &mut R,
        faults: &F,
    ) -> SimResult {
        let n_users = self.users.len();
        rec.begin_run(n_users, self.cfg.tau);
        let series_cap = if self.cfg.record_series {
            self.cfg.slots as usize
        } else {
            0
        };
        let mut fairness_series = Vec::with_capacity(series_cap);
        let mut fairness_window_series = Vec::with_capacity(series_cap.div_ceil(10));
        let mut power_series_j = Vec::with_capacity(series_cap);
        let mut fairness_scratch: Vec<f64> = Vec::with_capacity(n_users);
        const FAIR_WINDOW: u64 = 10;
        let mut window_delivered = vec![0.0f64; n_users];
        let mut window_need = vec![0.0f64; n_users];
        let mut slots_run = 0;

        let mut unfinished = n_users;
        let mut finished = vec![false; n_users];

        let mut raw: Vec<RawUserState> = Vec::with_capacity(n_users);
        let mut snapshots = Vec::with_capacity(n_users);
        let mut alloc = Allocation::zeros(n_users);
        let mut deliveries = Vec::with_capacity(n_users);
        let mut fault_notes: Vec<String> = Vec::new();

        for slot in 0..self.cfg.slots {
            slots_run = slot + 1;
            let cap = self.capacity.capacity(slot);
            let bs_cap_units =
                faults.adjust_cap_units(slot, self.units.bs_cap_units(cap, self.cfg.tau));
            rec.begin_slot(slot, bs_cap_units);
            if faults.enabled() && rec.enabled() {
                fault_notes.clear();
                faults.notes_into(slot, &mut fault_notes);
                for note in &fault_notes {
                    rec.record_fault(note);
                }
            }
            self.receiver.ingest_slot(slot);

            // Client-side slot advance (Eq. 7/8) and ground-truth state.
            raw.clear();
            for (i, u) in self.users.iter_mut().enumerate() {
                if slot < u.arrival_slot {
                    // Pre-arrival users are invisible to the radio: their
                    // noise stream is anchored at their (final) arrival
                    // slot, so no sample is drawn, and the gateway sees
                    // the same frozen placeholder row the hot loop's
                    // arrival gate never writes.
                    raw.push(RawUserState {
                        signal: Dbm(0.0),
                        rate_kbps: 0.0,
                        buffer_s: 0.0,
                        remaining_kb: 0.0,
                        active: false,
                        idle_s: 0.0,
                        rrc_state: RrcState::Idle,
                    });
                    continue;
                }
                u.cur_signal = u.signal.sample(slot);
                u.sig_samples += 1;
                if faults.enabled() {
                    u.cur_signal = faults.adjust_signal(slot, i, u.cur_signal);
                }
                // Mirrors the hot loop's ABR rate substitution exactly.
                let abr_rate = self.abr.as_ref().map(|a| a.clients[i].rate_kbps);
                if slot >= u.departure_slot || (faults.enabled() && faults.departed(slot, i)) {
                    u.session.cancel_remaining();
                    u.playback.abandon();
                }
                let outcome = u.playback.begin_slot();
                if outcome.active {
                    u.active_slots += 1;
                }
                raw.push(RawUserState {
                    signal: u.cur_signal,
                    rate_kbps: abr_rate.unwrap_or_else(|| {
                        u.declared_rate_kbps
                            .unwrap_or_else(|| u.session.rate_at(slot))
                    }),
                    buffer_s: outcome.occupancy_s,
                    remaining_kb: u.session.remaining_kb(),
                    active: outcome.active,
                    idle_s: u.rrc.idle_seconds(),
                    rrc_state: u.rrc.state(),
                });
            }

            // Gateway pipeline.
            self.collector.snapshot_into(slot, &raw, &mut snapshots);
            let ctx = SlotContext {
                slot,
                tau: self.cfg.tau,
                delta_kb: self.cfg.delta_kb,
                bs_cap_units,
                users: &snapshots,
                soa: None,
            };
            if rec.enabled() {
                let t0 = std::time::Instant::now();
                self.scheduler.allocate_into(&ctx, &mut alloc);
                rec.record_sched_latency_ns(t0.elapsed().as_nanos() as u64);
                rec.record_alloc(&alloc.0);
                if let Some(q) = self.scheduler.queue_values() {
                    rec.record_queues(q);
                }
                let deg = self.scheduler.degradations();
                if !deg.is_empty() {
                    rec.record_degradations(deg);
                }
            } else {
                self.scheduler.allocate_into(&ctx, &mut alloc);
            }
            self.transmitter
                .transmit_into(&ctx, &alloc, &mut self.receiver, &mut deliveries);

            // Device-side accounting (Eq. 3/4/5) and client delivery.
            let mut slot_energy_mj = 0.0;
            let mut in_system = 0u64;
            fairness_scratch.clear();
            for (u_idx, ((u, d), r)) in self.users.iter_mut().zip(&deliveries).zip(&raw).enumerate()
            {
                if slot < u.arrival_slot {
                    continue;
                }
                let slot_e = if d.kb > 0.0 {
                    let accepted = u.session.deliver(d.kb);
                    debug_assert!(
                        (accepted - d.kb).abs() < 1e-6,
                        "transmitter should never over-deliver"
                    );
                    if let Some(a) = self.abr.as_mut() {
                        u.playback.deliver(accepted, a.clients[u_idx].rate_kbps);
                        let inp = AbrInputs {
                            buffer_s: r.buffer_s,
                            predicted_kbps: snapshots[u_idx].link_cap_units as f64
                                * self.cfg.delta_kb
                                / self.cfg.tau,
                        };
                        a.clients[u_idx].on_delivery(
                            accepted,
                            u.session.fully_fetched(),
                            &a.spec.ladder,
                            &a.spec.policy,
                            a.native[u_idx],
                            a.chunk_s,
                            inp,
                        );
                    } else {
                        u.playback.deliver(accepted, u.session.rate_at(slot));
                    }
                    let e = self
                        .models
                        .power
                        .transmission_energy(u.cur_signal, accepted);
                    if rec.enabled() {
                        u.rrc
                            .on_transmit_observed(|f, t| rec.record_rrc_transition(u_idx, f, t));
                    } else {
                        u.rrc.on_transmit();
                    }
                    u.meter.record_transmission(e);
                    e.value()
                } else {
                    let e = if rec.enabled() {
                        u.rrc.on_idle_observed(self.cfg.tau, |f, t| {
                            rec.record_rrc_transition(u_idx, f, t)
                        })
                    } else {
                        u.rrc.on_idle(self.cfg.tau)
                    };
                    u.meter.record_tail(e);
                    e.value()
                };
                slot_energy_mj += slot_e;
                // Mirrors the hot loop's running E* accumulator exactly.
                if let Some(adm) = self.admission.as_mut() {
                    if !finished[u_idx] {
                        adm.energy_mj += slot_e;
                        adm.user_slots += 1;
                    }
                }
                rec.record_user(u_idx, slot_e, u.playback.total_rebuffer_s());
                // Mirrors the hot loop's `record_series` gate so both
                // loops carry identical windowed-fairness state.
                if self.cfg.record_series && r.remaining_kb > 0.0 {
                    let need_kb = (self.cfg.tau * r.rate_kbps).min(r.remaining_kb);
                    if need_kb > 0.0 {
                        fairness_scratch.push(d.kb / need_kb);
                        window_delivered[u_idx] += d.kb;
                        window_need[u_idx] += need_kb;
                    }
                }
                if !finished[u_idx] && u.session.fully_fetched() && u.playback.playback_complete() {
                    finished[u_idx] = true;
                    unfinished -= 1;
                }
                // Mirrors the hot loop's live-population sample exactly.
                if rec.enabled() && !finished[u_idx] {
                    in_system += 1;
                }
            }

            // Commit staged ABR switches — the hot loop's exact pass.
            if let Some(a) = self.abr.as_mut() {
                for i in 0..n_users {
                    if let Some(sw) = a.clients[i].apply_pending(&a.spec.ladder, a.native[i]) {
                        let delta = self.users[i].session.rescale_remaining(sw.ratio);
                        self.receiver.adjust_source_volume_kb(i, delta);
                        rec.record_abr_switch(i, sw.from, sw.to);
                    }
                }
            }

            if self.cfg.record_series {
                if !fairness_scratch.is_empty() {
                    fairness_series.push(jain_index(&fairness_scratch));
                }
                power_series_j.push(slot_energy_mj / 1000.0);
                if (slot + 1).is_multiple_of(FAIR_WINDOW) {
                    fairness_scratch.clear();
                    for i in 0..n_users {
                        if window_need[i] > 0.0 {
                            fairness_scratch.push(window_delivered[i] / window_need[i]);
                        }
                    }
                    if !fairness_scratch.is_empty() {
                        fairness_window_series.push(jain_index(&fairness_scratch));
                    }
                    window_delivered.fill(0.0);
                    window_need.fill(0.0);
                }
            }
            if rec.enabled() {
                rec.record_live(in_system);
            }
            // Mirrors the hot loop's admission tick exactly (`finished` /
            // `unfinished` play the roles of `done_watching`/`watching`),
            // in full-rescan form — the reference loop is where the
            // O(n_users) aggregate specification stays executable.
            if let Some(adm) = self.admission.as_mut() {
                admission_tick_reference(
                    adm,
                    &mut self.users,
                    &mut finished,
                    &mut unfinished,
                    rec,
                    slot,
                    bs_cap_units,
                    self.cfg.tau,
                    self.cfg.delta_kb,
                );
            }
            rec.end_slot();

            if unfinished == 0 {
                break;
            }
        }
        rec.end_run();

        let mut result = self.finish(
            slots_run,
            fairness_series,
            fairness_window_series,
            power_series_j,
        );
        result.telemetry = rec.summary();
        result
    }

    /// Fold the finished per-user state into a [`SimResult`].
    fn finish(
        self,
        slots_run: u64,
        fairness_series: Vec<f64>,
        fairness_window_series: Vec<f64>,
        power_series_j: Vec<f64>,
    ) -> SimResult {
        let per_user = self
            .users
            .into_iter()
            .map(|u| UserResult {
                rebuffer_s: u.playback.total_rebuffer_s(),
                stall_slots: u.playback.stall_slots(),
                startup_slots: u.playback.startup_slots(),
                watched_s: u.playback.played_s(),
                playback_complete: u.playback.playback_complete(),
                fetched_kb: u.session.received_kb(),
                energy: u.meter.breakdown(),
                active_slots: u.active_slots,
                tx_slots: u.meter.slots_transmitting(),
                idle_slots: u.meter.slots_idle(),
                rate_kbps: u.session.bitrate.mean_rate(),
                video_kb: u.session.total_kb,
            })
            .collect();

        SimResult {
            scheduler: self.scheduler.name().to_string(),
            per_user,
            slots_run,
            slots_configured: self.cfg.slots,
            tau_s: self.cfg.tau,
            fairness_series,
            fairness_window_series,
            power_series_j,
            telemetry: None,
            warnings: Vec::new(),
        }
    }
}

/// The resumable stepping form of the engine's hot loop: one slot per
/// [`SlotDriver::step`] call, checkpoint capture between any two slots,
/// and live mutation of the not-yet-executed schedule.
///
/// Built by [`Engine::into_driver`]; every batch run path
/// ([`Engine::run_core`]) is a thin cadence loop over this driver, so
/// stepping it from a front-end (the live gateway service) executes the
/// exact same slot code as a batch run — the determinism tests pin both
/// at once, and a fully stepped driver's result and telemetry are
/// byte-identical to the batch run of the same scenario.
///
/// The driver owns its fault hook (generic, so the [`NoFaults`]
/// instantiation folds every fault branch away exactly as in the batch
/// loop) and every loop-local accumulator; the recorder stays external,
/// passed into each call, so one recorder can outlive crash/rebuild
/// cycles of the driver itself.
pub struct SlotDriver<F: FaultHook = NoFaults> {
    engine: Engine,
    faults: F,
    fairness_series: Vec<f64>,
    fairness_window_series: Vec<f64>,
    power_series_j: Vec<f64>,
    fairness_scratch: Vec<f64>,
    window_delivered: Vec<f64>,
    window_need: Vec<f64>,
    slots_run: u64,
    watching: usize,
    done_watching: Vec<bool>,
    retired: Vec<bool>,
    retired_at: Vec<u64>,
    live: Vec<usize>,
    /// Min-heap of `(arrival_slot, user)` for users that have not yet
    /// entered `live`, drained at the top of each step. Entries staled
    /// by an admission deferral (or a live `set_arrival` reschedule)
    /// re-queue at the user's current arrival slot; `entered` guards
    /// against duplicates.
    arrival_queue: BinaryHeap<Reverse<(u64, usize)>>,
    /// Latched once a user joins `live` (or was restored as retired):
    /// live membership never regresses, so a queue entry for an entered
    /// user is stale by construction and dropped on pop.
    entered: Vec<bool>,
    raw: Vec<RawUserState>,
    snapshots: Vec<UserSnapshot>,
    alloc: Allocation,
    deliveries: Vec<Delivery>,
    fault_notes: Vec<String>,
    collector_full_pass: bool,
    tables_enabled: bool,
    v_scratch: [f64; SIG_BLOCK_SLOTS],
    cap_hint: Vec<u64>,
    use_soa: bool,
    soa: SnapshotSoA,
    start_slot: u64,
    next_slot: u64,
    finished: bool,
}

impl<F: FaultHook> SlotDriver<F> {
    /// Slot the next [`SlotDriver::step`] call will execute.
    pub fn next_slot(&self) -> u64 {
        self.next_slot
    }

    /// Slot this driver started (or resumed) from.
    pub fn start_slot(&self) -> u64 {
        self.start_slot
    }

    /// Configured horizon Γ in slots.
    pub fn horizon(&self) -> u64 {
        self.engine.cfg.slots
    }

    /// Number of users in the scenario.
    pub fn n_users(&self) -> usize {
        self.engine.users.len()
    }

    /// True once the run is over: the horizon was reached or every
    /// session has been fully fetched and watched (the batch loop's
    /// early exit). Further [`SlotDriver::step`] calls return `None`;
    /// call [`SlotDriver::finish`] to settle accounting and collect the
    /// [`SimResult`].
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Users still fetching or watching.
    pub fn watching(&self) -> usize {
        self.watching
    }

    /// Short name of the scheduling policy driving allocations.
    pub fn scheduler_name(&self) -> &'static str {
        self.engine.scheduler.name()
    }

    /// Switch the scheduler into its degraded (cheaper, best-effort)
    /// operating mode, if it has one — the live `Degrade` overrun
    /// policy. Returns whether the scheduler supports degradation.
    /// Engaging is idempotent and takes effect from the next slot; the
    /// switch is observable through the scheduler's degradation events
    /// in the telemetry stream.
    pub fn engage_degraded(&mut self) -> bool {
        self.engine.scheduler.engage_degraded()
    }

    /// Defer every user's arrival to "never" (`u64::MAX`): live
    /// ingestion mode, where sessions start only once a
    /// [`SlotDriver::set_arrival`] event schedules them. Only valid
    /// before the first slot of a fresh (non-resumed) run — a resumed
    /// run carries its schedule inside the checkpoint — and
    /// incompatible with feasibility admission control (whose pending
    /// queue is compiled from the planned schedule).
    pub fn defer_all_arrivals(&mut self) -> Result<(), ScenarioError> {
        if self.next_slot != 0 {
            return Err(ScenarioError::new(
                "live.defer",
                "arrivals can only be deferred before the first slot runs",
            ));
        }
        if self.engine.admission.is_some() {
            return Err(ScenarioError::new(
                "live.defer",
                "live arrival scheduling is incompatible with feasibility \
                 admission control (its pending queue is compiled from the \
                 planned arrival schedule)",
            ));
        }
        for u in &mut self.engine.users {
            u.arrival_slot = u64::MAX;
            u.departure_slot = u64::MAX;
        }
        // Live mode starts with an empty system: every user enters
        // through a later `set_arrival` event.
        self.live.clear();
        self.entered.fill(false);
        self.arrival_queue.clear();
        Ok(())
    }

    /// Schedule user `user`'s session to start at `slot` — the live form
    /// of [`crate::arrivals::ArrivalSpec::Declared`]. The engine only
    /// ever reads `arrival_slot` as `slot < arrival`, so scheduling an
    /// arrival any time before its slot executes yields bytes identical
    /// to a batch run whose declared plan carries the same final
    /// schedule.
    pub fn set_arrival(&mut self, user: usize, slot: u64) -> Result<(), ScenarioError> {
        self.check_live_mutation("live.arrive", user, slot)?;
        let next = self.next_slot;
        let u = &mut self.engine.users[user];
        if u.arrival_slot < next {
            return Err(ScenarioError::new(
                "live.arrive",
                format!("user {user} already arrived at slot {}", u.arrival_slot),
            ));
        }
        if u.departure_slot != u64::MAX && slot >= u.departure_slot {
            return Err(ScenarioError::new(
                "live.arrive",
                "arrival must precede the scheduled departure",
            ));
        }
        u.arrival_slot = slot;
        // Duplicate entries for a rescheduled arrival are harmless: the
        // drain drops (or re-queues) any entry whose due slot no longer
        // matches the user's schedule.
        self.arrival_queue.push(Reverse((slot, user)));
        Ok(())
    }

    /// Schedule user `user` to abandon their session at `slot` — live
    /// churn, the same idempotent state change the batch departure plan
    /// applies.
    pub fn set_departure(&mut self, user: usize, slot: u64) -> Result<(), ScenarioError> {
        self.check_live_mutation("live.depart", user, slot)?;
        let u = &mut self.engine.users[user];
        if u.arrival_slot != u64::MAX && slot <= u.arrival_slot {
            return Err(ScenarioError::new(
                "live.depart",
                "departure must come after the arrival",
            ));
        }
        u.departure_slot = slot;
        Ok(())
    }

    /// Install a gateway-side declared rate (e.g. DPI-extracted from the
    /// session's segment request) for user `user`: snapshots from the
    /// next slot on advertise it instead of the instantaneous session
    /// rate. Client-side playback still uses the true encoding rate.
    pub fn set_declared_rate(&mut self, user: usize, kbps: f64) -> Result<(), ScenarioError> {
        if user >= self.engine.users.len() {
            return Err(ScenarioError::new(
                "live.rate",
                format!("user {user} out of range"),
            ));
        }
        if kbps <= 0.0 || kbps.is_nan() {
            return Err(ScenarioError::new("live.rate", "rate must be positive"));
        }
        self.engine.users[user].declared_rate_kbps = Some(kbps);
        Ok(())
    }

    /// Shared validation for live schedule mutations: the user exists,
    /// the slot has not executed yet, and no feasibility admission
    /// controller owns the arrival schedule.
    fn check_live_mutation(
        &self,
        field: &'static str,
        user: usize,
        slot: u64,
    ) -> Result<(), ScenarioError> {
        if user >= self.engine.users.len() {
            return Err(ScenarioError::new(
                field,
                format!("user {user} out of range"),
            ));
        }
        if slot < self.next_slot {
            return Err(ScenarioError::new(
                field,
                format!(
                    "slot {slot} already executed (next slot is {})",
                    self.next_slot
                ),
            ));
        }
        if self.engine.admission.is_some() {
            return Err(ScenarioError::new(
                field,
                "live schedule changes are incompatible with feasibility \
                 admission control",
            ));
        }
        Ok(())
    }

    /// Clone the loop-local accumulators into a serializable snapshot.
    fn loop_ckpt(&self) -> LoopCkpt {
        LoopCkpt {
            fairness_series: self.fairness_series.clone(),
            fairness_window_series: self.fairness_window_series.clone(),
            power_series_j: self.power_series_j.clone(),
            window_delivered: self.window_delivered.clone(),
            window_need: self.window_need.clone(),
            slots_run: self.slots_run,
            watching: self.watching,
            done_watching: self.done_watching.clone(),
            retired: self.retired.clone(),
            retired_at: self.retired_at.clone(),
            live: self.live.clone(),
            raw: self.raw.clone(),
            snapshots: self.snapshots.clone(),
        }
    }

    /// Capture the full simulation state at the top of the next slot.
    /// Feeding the checkpoint to a freshly built driver (or any batch
    /// resume path) for the same scenario continues bit-identically.
    pub fn checkpoint<R: SlotRecorder>(
        &self,
        rec: &R,
    ) -> Result<EngineCheckpoint, CheckpointError> {
        self.engine.capture(self.next_slot, rec, self.loop_ckpt())
    }

    /// Execute exactly one slot of the §III pipeline. Returns the slot
    /// index it ran, or `None` once the run is finished.
    ///
    /// The body is the batch loop's slot body verbatim (the batch loop
    /// calls this method); only the loop-carried locals moved into the
    /// driver struct.
    pub fn step<R: SlotRecorder>(&mut self, rec: &mut R) -> Option<u64> {
        if self.finished {
            return None;
        }
        const FAIR_WINDOW: u64 = 10;
        let slot = self.next_slot;
        let n_users = self.engine.users.len();
        let collector_full_pass = self.collector_full_pass;
        let tables_enabled = self.tables_enabled;
        let use_soa = self.use_soa;
        let Self {
            engine: eng,
            faults,
            fairness_series,
            fairness_window_series,
            power_series_j,
            fairness_scratch,
            window_delivered,
            window_need,
            slots_run,
            watching,
            done_watching,
            retired,
            retired_at,
            live,
            arrival_queue,
            entered,
            raw,
            snapshots,
            alloc,
            deliveries,
            fault_notes,
            v_scratch,
            cap_hint,
            soa,
            ..
        } = self;

        // Admit due arrivals into the live set: pop every entry due by
        // this slot. An entry staled by an admission deferral (the
        // user's arrival moved later) re-queues at the current arrival
        // slot; a rejected user (arrival `u64::MAX`) is dropped.
        while let Some(&Reverse((due, i))) = arrival_queue.peek() {
            if due > slot {
                break;
            }
            arrival_queue.pop();
            if entered[i] {
                continue;
            }
            let arrival = eng.users[i].arrival_slot;
            if arrival <= slot {
                // Order-preserving insert keeps `live` ascending, so
                // iteration (and FP summation) order matches the
                // reference loop's plain 0..n walk.
                let pos = live.partition_point(|&j| j < i);
                live.insert(pos, i);
                entered[i] = true;
            } else if arrival != u64::MAX {
                arrival_queue.push(Reverse((arrival, i)));
            }
        }

        *slots_run = slot + 1;
        let cap = eng.capacity.capacity(slot);
        let bs_cap_units = faults.adjust_cap_units(slot, eng.units.bs_cap_units(cap, eng.cfg.tau));
        rec.begin_slot(slot, bs_cap_units);
        if faults.enabled() && rec.enabled() {
            fault_notes.clear();
            faults.notes_into(slot, fault_notes);
            for note in fault_notes.iter() {
                rec.record_fault(note);
            }
        }
        eng.receiver.ingest_slot(slot);

        // Client-side slot advance (Eq. 7/8) and ground-truth state.
        // Every live user has arrived (the gate above), and each user's
        // signal block is anchored at their final arrival slot: a user
        // entering at slot `a` refills at `a`, `a + 32`, …, so the
        // window is always current and pre-arrival slots draw no
        // samples at all.
        for &i in live.iter() {
            let u = &mut eng.users[i];
            debug_assert!(slot >= u.arrival_slot, "live user must have arrived");
            let block_off = ((slot - u.arrival_slot) % SIG_BLOCK_SLOTS as u64) as usize;
            if block_off == 0 {
                u.signal.sample_into(slot, &mut u.sig_block);
                u.sig_samples += SIG_BLOCK_SLOTS as u64;
                if tables_enabled {
                    // One batch-kernel pass per block: the next
                    // SIG_BLOCK_SLOTS slots read pure table entries.
                    eng.collector
                        .link_caps_into(&u.sig_block, v_scratch, &mut u.cap_block);
                }
            }
            u.cur_signal = u.sig_block[block_off];
            if tables_enabled {
                cap_hint[i] = u.cap_block[block_off];
            }
            if faults.enabled() {
                // Faults perturb state, never RNG streams: the raw
                // sample above already advanced the generator.
                u.cur_signal = faults.adjust_signal(slot, i, u.cur_signal);
            }
            // Gateway-advertised demand: the ABR rung rate when
            // clients are installed (single-rung = the native rate,
            // bitwise), else the declared/session rate.
            let abr_rate = eng.abr.as_ref().map(|a| a.clients[i].rate_kbps);
            if slot >= u.departure_slot || (faults.enabled() && faults.departed(slot, i)) {
                // Mid-stream departure — workload churn or the fault
                // taxonomy's perturbation form: the client abandons
                // playback and the origin stops fetching for them.
                // Both calls are idempotent, so the latched window
                // check is safe to re-apply every slot, and a
                // `u64::MAX` departure slot leaves the run untouched.
                u.session.cancel_remaining();
                u.playback.abandon();
            }
            let outcome = u.playback.begin_slot();
            if outcome.active {
                u.active_slots += 1;
            }
            raw[i] = RawUserState {
                signal: u.cur_signal,
                rate_kbps: abr_rate.unwrap_or_else(|| {
                    u.declared_rate_kbps
                        .unwrap_or_else(|| u.session.rate_at(slot))
                }),
                buffer_s: outcome.occupancy_s,
                remaining_kb: u.session.remaining_kb(),
                active: outcome.active,
                idle_s: u.rrc.idle_seconds(),
                rrc_state: u.rrc.state(),
            };
        }

        // Gateway pipeline (all writes go into the reused buffers).
        // The noise-free collector only recomputes live entries; the
        // first slot (and a noisy collector, whose RNG stream must
        // stay per-user aligned) takes the full pass.
        if collector_full_pass || snapshots.len() != n_users {
            if use_soa {
                eng.collector
                    .snapshot_into_soa(slot, raw.as_slice(), snapshots, soa);
            } else {
                eng.collector.snapshot_into(slot, raw.as_slice(), snapshots);
            }
        } else {
            eng.collector.snapshot_refresh_soa(
                slot,
                raw.as_slice(),
                live.as_slice(),
                tables_enabled.then_some(&cap_hint[..]),
                snapshots,
                use_soa.then_some(&mut *soa),
            );
        }
        let ctx = SlotContext {
            slot,
            tau: eng.cfg.tau,
            delta_kb: eng.cfg.delta_kb,
            bs_cap_units,
            users: snapshots.as_slice(),
            soa: use_soa.then_some(&*soa),
        };
        if rec.enabled() {
            let t0 = std::time::Instant::now();
            eng.scheduler.allocate_into(&ctx, alloc);
            rec.record_sched_latency_ns(t0.elapsed().as_nanos() as u64);
            rec.record_alloc(&alloc.0);
            if let Some(q) = eng.scheduler.queue_values() {
                rec.record_queues(q);
            }
            let deg = eng.scheduler.degradations();
            if !deg.is_empty() {
                rec.record_degradations(deg);
            }
        } else {
            eng.scheduler.allocate_into(&ctx, alloc);
        }
        eng.transmitter
            .transmit_into(&ctx, &*alloc, &mut eng.receiver, deliveries);

        // Device-side accounting (Eq. 3/4/5) and client delivery.
        let mut slot_energy_mj = 0.0;
        let mut in_system = 0u64;
        fairness_scratch.clear();
        let mut any_retired = false;
        for &i in live.iter() {
            let u = &mut eng.users[i];
            debug_assert!(slot >= u.arrival_slot, "live user must have arrived");
            let d = &deliveries[i];
            let r = &raw[i];
            let slot_e = if d.kb > 0.0 {
                let accepted = u.session.deliver(d.kb);
                debug_assert!(
                    (accepted - d.kb).abs() < 1e-6,
                    "transmitter should never over-deliver"
                );
                // Client playback always advances by the *true*
                // encoding rate regardless of what the gateway thinks
                // — under ABR that is the rung rate (lower rungs
                // stretch delivered KB into more playback seconds).
                if let Some(a) = eng.abr.as_mut() {
                    u.playback.deliver(accepted, a.clients[i].rate_kbps);
                    let inp = AbrInputs {
                        buffer_s: r.buffer_s,
                        predicted_kbps: snapshots[i].link_cap_units as f64 * eng.cfg.delta_kb
                            / eng.cfg.tau,
                    };
                    a.clients[i].on_delivery(
                        accepted,
                        u.session.fully_fetched(),
                        &a.spec.ladder,
                        &a.spec.policy,
                        a.native[i],
                        a.chunk_s,
                        inp,
                    );
                } else {
                    u.playback.deliver(accepted, u.session.rate_at(slot));
                }
                // One-deep memo of the Eq. (3) kernel: `P(sig)` is a
                // pure function of the block-held RSSI, so this is the
                // same product `transmission_energy` would compute.
                if u.epk_sig.value() != u.cur_signal.value() {
                    u.epk_per_kb = eng.models.power.energy_per_kb(u.cur_signal);
                    u.epk_sig = u.cur_signal;
                }
                let e = MilliJoules(u.epk_per_kb * accepted);
                if rec.enabled() {
                    u.rrc
                        .on_transmit_observed(|f, t| rec.record_rrc_transition(i, f, t));
                } else {
                    u.rrc.on_transmit();
                }
                u.meter.record_transmission(e);
                e.value()
            } else {
                let e = if rec.enabled() {
                    u.rrc
                        .on_idle_observed(eng.cfg.tau, |f, t| rec.record_rrc_transition(i, f, t))
                } else {
                    u.rrc.on_idle(eng.cfg.tau)
                };
                u.meter.record_tail(e);
                e.value()
            };
            slot_energy_mj += slot_e;
            // Running E* estimate for admission feasibility: energy
            // per arrived-and-watching user-slot (pre-update flag, so
            // the finishing slot itself still counts).
            if let Some(adm) = eng.admission.as_mut() {
                if !done_watching[i] {
                    adm.energy_mj += slot_e;
                    adm.user_slots += 1;
                }
            }
            rec.record_user(i, slot_e, u.playback.total_rebuffer_s());
            // Fairness sample over users still fetching this slot.
            // Every consumer of these samples (the per-slot Jain
            // series and the windowed one) is behind `record_series`,
            // so plain sweeps skip the divide entirely.
            if eng.cfg.record_series && r.remaining_kb > 0.0 {
                let need_kb = (eng.cfg.tau * r.rate_kbps).min(r.remaining_kb);
                if need_kb > 0.0 {
                    fairness_scratch.push(d.kb / need_kb);
                    window_delivered[i] += d.kb;
                    window_need[i] += need_kb;
                }
            }
            if !done_watching[i] && u.session.fully_fetched() && u.playback.playback_complete() {
                done_watching[i] = true;
                *watching -= 1;
                // Membership event point: the user leaves the admission
                // tick's active population for good (`done_watching`
                // never un-flips), so the incremental aggregates shed
                // them here and never again.
                if let Some(adm) = eng.admission.as_mut() {
                    adm.n_active -= 1;
                    adm.rate_sum -= adm.rates[i];
                }
            }
            // Live-population sample for open-system telemetry:
            // arrived and still watching after this slot's accounting
            // (the count is only read through `record_live`, so the
            // NullRecorder instantiation folds it away).
            if rec.enabled() && !done_watching[i] {
                in_system += 1;
            }
            // Retire once nothing remains to account: playback is over
            // and the RRC tail has fully drained, so every further
            // slot would charge exactly 0 mJ of tail energy.
            if done_watching[i] && u.rrc.state() == RrcState::Idle {
                retired[i] = true;
                retired_at[i] = slot;
                any_retired = true;
            }
        }
        // Commit staged ABR switches in ascending user order: update
        // the rung rate, re-price the unfetched tail of the session,
        // and keep the receiver's origin-side volume bound in step.
        if let Some(a) = eng.abr.as_mut() {
            for i in 0..n_users {
                if let Some(sw) = a.clients[i].apply_pending(&a.spec.ladder, a.native[i]) {
                    let delta = eng.users[i].session.rescale_remaining(sw.ratio);
                    eng.receiver.adjust_source_volume_kb(i, delta);
                    rec.record_abr_switch(i, sw.from, sw.to);
                }
            }
        }
        if any_retired {
            // Order-preserving compaction keeps iteration (and FP
            // summation) order identical to the reference loop.
            live.retain(|&i| !retired[i]);
        }

        if eng.cfg.record_series {
            if !fairness_scratch.is_empty() {
                fairness_series.push(jain_index(fairness_scratch.as_slice()));
            }
            power_series_j.push(slot_energy_mj / 1000.0);
            if (slot + 1).is_multiple_of(FAIR_WINDOW) {
                fairness_scratch.clear();
                for i in 0..n_users {
                    if window_need[i] > 0.0 {
                        fairness_scratch.push(window_delivered[i] / window_need[i]);
                    }
                }
                if !fairness_scratch.is_empty() {
                    fairness_window_series.push(jain_index(fairness_scratch.as_slice()));
                }
                window_delivered.fill(0.0);
                window_need.fill(0.0);
            }
        }
        if rec.enabled() {
            rec.record_live(in_system);
        }
        // Rule on arrivals planned for the next slot, now that this
        // slot's capacity and energy accounting are final.
        if let Some(adm) = eng.admission.as_mut() {
            admission_tick(
                adm,
                &mut eng.users,
                done_watching,
                watching,
                rec,
                slot,
                bs_cap_units,
                eng.cfg.tau,
                eng.cfg.delta_kb,
            );
        }
        rec.end_slot();

        self.next_slot = slot + 1;
        // The batch loop's exit conditions: nothing left to schedule,
        // watch, or drain — or the horizon was reached.
        if self.watching == 0 || self.next_slot >= self.engine.cfg.slots {
            self.finished = true;
        }
        Some(slot)
    }

    /// Settle end-of-run accounting and fold the final [`SimResult`] —
    /// the driver form of the batch loop's epilogue. Callable at any
    /// point; finishing early yields the result of the slots run so
    /// far.
    pub fn finish<R: SlotRecorder>(self, rec: &mut R) -> SimResult {
        rec.end_run();
        let Self {
            mut engine,
            fairness_series,
            fairness_window_series,
            power_series_j,
            slots_run,
            retired,
            retired_at,
            ..
        } = self;
        // Settle the idle slots the retired users sat out: each would
        // have recorded a zero-energy tail slot per remaining loop
        // iteration.
        for i in 0..engine.users.len() {
            if retired[i] {
                engine.users[i]
                    .meter
                    .record_saturated_idle_slots(slots_run - 1 - retired_at[i]);
            }
        }
        let mut result = engine.finish(
            slots_run,
            fairness_series,
            fairness_window_series,
            power_series_j,
        );
        result.telemetry = rec.summary();
        result
    }
}

/// Pop every pending arrival due by `next_slot`, in ascending
/// (slot, user) order — deterministic across runs and run paths —
/// dropping entries staled by a later reschedule or rejection.
fn admission_candidates(
    adm: &mut AdmissionRuntime,
    users: &[UserSim],
    next_slot: u64,
) -> Vec<usize> {
    let mut candidates: Vec<usize> = Vec::new();
    while let Some(&Reverse((due, j))) = adm.pending.peek() {
        if due > next_slot {
            break;
        }
        adm.pending.pop();
        // Stale guard: a user rejected or re-scheduled since the entry
        // was pushed carries a mismatched arrival slot.
        if users[j].arrival_slot == due {
            candidates.push(j);
        }
    }
    candidates
}

/// The running per-user-slot E* estimate (0 until any user-slot has been
/// charged — optimistic start).
fn admission_e_star(adm: &AdmissionRuntime) -> f64 {
    if adm.user_slots == 0 {
        0.0
    } else {
        adm.energy_mj / adm.user_slots as f64
    }
}

/// Rule on one candidate given the active population *with the candidate
/// admitted* (`n_active` users whose rates sum to `rate_sum`). This is
/// the single decision expression both the O(1) incremental tick and the
/// full-rescan reference evaluate, so the two paths can only diverge
/// through their population aggregates.
fn admission_decide(
    adm: &mut AdmissionRuntime,
    j: usize,
    n_active: usize,
    rate_sum: f64,
    e_star_user: f64,
    c_kbps: f64,
    tau: f64,
) -> AdmissionDecision {
    let n = n_active as f64;
    let r_bar = rate_sum / n;
    // Per-user service slack ε̂ = τ·(C/(n·r̄) − 1): seconds of
    // playback headroom per user-slot under an even capacity split.
    let eps_s = tau * (c_kbps / (n * r_bar) - 1.0);
    // Theorem 1 bound estimates with the candidate counted in; the
    // aggregate forms take Σ-quantities, so the per-user estimates
    // are scaled up by n going in and back down coming out.
    let b = drift_bound_b(n_active, tau, tau);
    let phi_hat = energy_upper_bound(e_star_user * n, b, adm.v) / n;
    let omega_hat = if eps_s > 0.0 {
        rebuffer_upper_bound(b, adm.v, e_star_user * n, n * eps_s) / n
    } else {
        // Non-positive slack: Theorem 1's bound does not exist.
        f64::INFINITY
    };
    let ctx = AdmissionContext {
        eps_s,
        omega_hat_s: omega_hat,
        phi_hat_mj: phi_hat,
    };
    adm.ctl.decide(j, &ctx)
}

/// Apply one admission ruling to the schedule: deferred users are pushed
/// back a slot, rejected users are cancelled before ever going live (the
/// radio stays cold and they stop counting toward the watch count).
/// Rejected users were never in the active population, so the aggregates
/// are untouched here; the admit arm is aggregate-maintained by the
/// incremental tick itself.
fn admission_apply(
    adm: &mut AdmissionRuntime,
    users: &mut [UserSim],
    done_watching: &mut [bool],
    watching: &mut usize,
    j: usize,
    next_slot: u64,
    decision: AdmissionDecision,
) {
    match decision {
        AdmissionDecision::Admit => {}
        AdmissionDecision::Defer => {
            users[j].arrival_slot = next_slot + 1;
            adm.pending.push(Reverse((next_slot + 1, j)));
        }
        AdmissionDecision::Reject => {
            users[j].arrival_slot = u64::MAX;
            users[j].session.cancel_remaining();
            users[j].playback.abandon();
            done_watching[j] = true;
            *watching -= 1;
        }
    }
}

/// One end-of-slot admission pass: rule on every planned arrival due at
/// the next slot, evaluating each candidate against the Lyapunov bound
/// estimates *as they would be with the candidate admitted* (candidates
/// this pass already admitted count toward later candidates' load).
///
/// Runs in the serial end-of-slot region of every loop (the driver's
/// step, the sharded loop's phase D), right before `end_slot`, so the
/// decision uses the slot's final capacity and energy accounting and its
/// records land on the decision slot. Each candidate costs O(1): the
/// active population is read off the incrementally maintained
/// `n_active`/`rate_sum` aggregates instead of a per-candidate rescan
/// (the reference loop runs the rescan form,
/// [`admission_tick_reference`], pinned equal by the admission property
/// pack).
#[allow(clippy::too_many_arguments)]
fn admission_tick<R: SlotRecorder>(
    adm: &mut AdmissionRuntime,
    users: &mut [UserSim],
    done_watching: &mut [bool],
    watching: &mut usize,
    rec: &mut R,
    slot: u64,
    bs_cap_units: u64,
    tau: f64,
    delta_kb: f64,
) {
    let next_slot = slot + 1;
    let candidates = admission_candidates(adm, users, next_slot);
    if candidates.is_empty() {
        return;
    }
    // Slot-s capacity in KB/s.
    let c_kbps = bs_cap_units as f64 * delta_kb / tau;
    let e_star_user = admission_e_star(adm);
    for j in candidates {
        // Population with the candidate admitted: the maintained active
        // population (which already includes the candidates this pass
        // admitted) plus `j` itself — `j` is never a member yet, since
        // its arrival slot is the next slot.
        let n_active = adm.n_active + 1;
        let rate_sum = adm.rate_sum + adm.rates[j];
        let decision = admission_decide(adm, j, n_active, rate_sum, e_star_user, c_kbps, tau);
        if decision == AdmissionDecision::Admit {
            // Arrival commit: the event point where `j` joins the
            // active population (and counts toward later candidates).
            adm.n_active += 1;
            adm.rate_sum += adm.rates[j];
        }
        admission_apply(adm, users, done_watching, watching, j, next_slot, decision);
        rec.record_admission(j, decision);
    }
}

/// The full-rescan population count the incremental aggregates replace:
/// users in the system at `next_slot` (arrived, not finished) plus the
/// candidates this pass already admitted (the `admitted` mask), plus the
/// candidate `j` itself. O(n_users) per candidate — kept as the
/// executable specification for `n_active`/`rate_sum`, run by the
/// reference loop and pinned against the incremental path by the
/// admission property pack.
fn admission_aggregates_reference(
    adm: &AdmissionRuntime,
    users: &[UserSim],
    done_watching: &[bool],
    admitted: &[bool],
    j: usize,
    next_slot: u64,
) -> (usize, f64) {
    let mut n_active = 1usize;
    let mut rate_sum = adm.rates[j];
    for (i, u) in users.iter().enumerate() {
        if i == j || done_watching[i] {
            continue;
        }
        if u.arrival_slot < next_slot || admitted[i] {
            n_active += 1;
            rate_sum += adm.rates[i];
        }
    }
    (n_active, rate_sum)
}

/// [`admission_tick`] in full-rescan form — identical drain order and
/// decision expression, but each candidate's population aggregates come
/// from [`admission_aggregates_reference`] instead of the running
/// counters (which this form does not maintain). The reference slot loop
/// runs this, keeping the O(n_users) rescan alive as the specification
/// the hot paths are pinned against.
#[allow(clippy::too_many_arguments)]
fn admission_tick_reference<R: SlotRecorder>(
    adm: &mut AdmissionRuntime,
    users: &mut [UserSim],
    done_watching: &mut [bool],
    watching: &mut usize,
    rec: &mut R,
    slot: u64,
    bs_cap_units: u64,
    tau: f64,
    delta_kb: f64,
) {
    let next_slot = slot + 1;
    let candidates = admission_candidates(adm, users, next_slot);
    if candidates.is_empty() {
        return;
    }
    let c_kbps = bs_cap_units as f64 * delta_kb / tau;
    let e_star_user = admission_e_star(adm);
    // Per-tick admitted mask: O(1) membership for the rescan instead of
    // the linear `admitted_now.contains` scan the old tick carried.
    let mut admitted = vec![false; users.len()];
    for j in candidates {
        let (n_active, rate_sum) =
            admission_aggregates_reference(adm, users, done_watching, &admitted, j, next_slot);
        let decision = admission_decide(adm, j, n_active, rate_sum, e_star_user, c_kbps, tau);
        if decision == AdmissionDecision::Admit {
            admitted[j] = true;
        }
        admission_apply(adm, users, done_watching, watching, j, next_slot, decision);
        rec.record_admission(j, decision);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;
    use crate::telemetry::TraceRecorder;
    use jmso_gateway::bs::ConstantCapacity;
    use jmso_gateway::{CollectorSpec, OriginModel};
    use jmso_media::VideoSession;
    use jmso_radio::signal::ConstantSignal;
    use jmso_radio::{KbPerSec, LinearRssiThroughput};
    use jmso_sched::DefaultMax;

    fn small_engine(
        n: usize,
        video_kb: f64,
        rate: f64,
        sig: f64,
        cap_kbps: f64,
        slots: u64,
        scheduler: Box<dyn Scheduler>,
    ) -> Engine {
        let models = CrossLayerModels::paper();
        let cfg = EngineConfig {
            tau: 1.0,
            delta_kb: 50.0,
            slots,
            record_series: true,
        };
        let signals: Vec<SignalKind> = (0..n)
            .map(|_| SignalKind::Constant(ConstantSignal(Dbm(sig))))
            .collect();
        let sessions: Vec<VideoSession> =
            (0..n).map(|_| VideoSession::cbr(video_kb, rate)).collect();
        let receiver = DataReceiver::new(n, OriginModel::Infinite, cfg.tau);
        let collector = InformationCollector::new(
            CollectorSpec::perfect(),
            LinearRssiThroughput::paper(),
            UnitParams::new(cfg.delta_kb),
            cfg.tau,
            n,
            1,
        );
        Engine::new(
            signals,
            sessions,
            scheduler,
            Box::new(ConstantCapacity(KbPerSec(cap_kbps))),
            receiver,
            collector,
            models,
            cfg,
        )
    }

    /// Single user, ample capacity: fetches everything, watches everything,
    /// stalls only at startup (shard usable next slot ⇒ exactly 1 s).
    #[test]
    fn single_user_happy_path() {
        let r = small_engine(
            1,
            5_000.0,
            500.0,
            -70.0,
            20_000.0,
            200,
            Box::new(DefaultMax::new()),
        )
        .run();
        let u = &r.per_user[0];
        assert!(u.playback_complete, "10 s video in 200 slots");
        assert!((u.fetched_kb - 5_000.0).abs() < 1e-6);
        assert!((u.watched_s - 10.0).abs() < 1e-9);
        // Startup stall: slot 0 has no data (delivered during slot 0,
        // playable slot 1).
        assert!((u.rebuffer_s - 1.0).abs() < 1e-9);
        assert!(r.slots_run < 200, "early exit after completion");
    }

    /// Byte conservation: fetched ≤ video size; watched ≤ fetched/rate.
    #[test]
    fn conservation() {
        let r = small_engine(
            3,
            2_000.0,
            400.0,
            -80.0,
            1_000.0,
            300,
            Box::new(DefaultMax::new()),
        )
        .run();
        for u in &r.per_user {
            assert!(u.fetched_kb <= u.video_kb + 1e-6);
            assert!(u.watched_s <= u.fetched_kb / u.rate_kbps + 1e-6);
        }
    }

    /// Starved capacity ⇒ rebuffering accrues; energy split contains tail.
    #[test]
    fn starvation_accrues_rebuffering() {
        // 2 users needing 400 KB/s each through a 300 KB/s BS.
        let r = small_engine(
            2,
            20_000.0,
            400.0,
            -80.0,
            300.0,
            150,
            Box::new(DefaultMax::new()),
        )
        .run();
        assert!(r.total_rebuffer_s() > 10.0, "must stall hard");
        // User order bias: user 0 gets served first every slot.
        assert!(r.per_user[0].rebuffer_s < r.per_user[1].rebuffer_s);
        // The starved user idles some slots ⇒ tail energy present.
        assert!(r.per_user[1].energy.tail.value() > 0.0);
    }

    /// Energy accounting matches Eq. (3) for a deterministic run.
    #[test]
    fn transmission_energy_matches_eq3() {
        let r = small_engine(
            1,
            1_000.0,
            500.0,
            -80.0,
            20_000.0,
            50,
            Box::new(DefaultMax::new()),
        )
        .run();
        let u = &r.per_user[0];
        // All 1000 KB at −80 dBm: P = −0.167 + 1560/2303 mJ/KB.
        let p = -0.167 + 1560.0 / 2303.0;
        assert!((u.energy.transmission.value() - p * 1_000.0).abs() < 1e-6);
    }

    /// Tail saturates after the session: an idle horizon costs at most one
    /// full tail (Pd·T1 + Pf·T2 ≈ 3974 mJ).
    #[test]
    fn tail_saturates_after_session() {
        let r = small_engine(
            1,
            500.0,
            500.0,
            -70.0,
            20_000.0,
            1_000,
            Box::new(DefaultMax::new()),
        )
        .run();
        let u = &r.per_user[0];
        let full_tail = 732.83 * 3.29 + 388.88 * 4.02;
        assert!(u.energy.tail.value() <= full_tail + 1e-6);
    }

    /// Series recording produces bounded fairness samples and positive
    /// power samples.
    #[test]
    fn series_are_sane() {
        let r = small_engine(
            4,
            3_000.0,
            450.0,
            -80.0,
            900.0,
            100,
            Box::new(DefaultMax::new()),
        )
        .run();
        assert!(!r.fairness_series.is_empty());
        for f in &r.fairness_series {
            assert!((0.0..=1.0 + 1e-9).contains(f));
        }
        assert_eq!(r.power_series_j.len() as u64, r.slots_run);
        assert!(r.power_series_j.iter().all(|p| *p >= 0.0));
    }

    /// The active-slot counter equals playback duration + stalls for a
    /// completing user.
    #[test]
    fn active_slots_consistent() {
        let r = small_engine(
            1,
            5_000.0,
            500.0,
            -70.0,
            20_000.0,
            200,
            Box::new(DefaultMax::new()),
        )
        .run();
        let u = &r.per_user[0];
        // Active slots cover watching + stalling: ⌈10 s watched + 1 s stall⌉.
        assert_eq!(u.active_slots, 11);
    }

    /// Pause-and-resume at a mid-run slot reproduces the straight run's
    /// per-user results exactly.
    #[test]
    fn pause_resume_matches_straight_run() {
        let mk = || {
            small_engine(
                2,
                10_000.0,
                400.0,
                -80.0,
                700.0,
                150,
                Box::new(DefaultMax::new()),
            )
        };
        let straight = mk().run();
        let paused = mk()
            .run_core(
                &mut NullRecorder,
                &NoFaults,
                None,
                CkptMode::PauseAt { slot: 17 },
            )
            .expect("pause run");
        let ck = match paused {
            RunOutcome::Paused(ck) => ck,
            RunOutcome::Done(_) => unreachable!("must pause before the early exit"),
        };
        assert_eq!(ck.slot(), 17);
        // Round-trip through JSON like the sidecar file would.
        let ck = EngineCheckpoint::from_json(&ck.to_json().expect("serialize")).expect("parse");
        let resumed = mk()
            .resume_with(&mut NullRecorder, &NoFaults, &ck)
            .expect("resume run");
        assert_eq!(straight.slots_run, resumed.slots_run);
        for (a, b) in straight.per_user.iter().zip(&resumed.per_user) {
            assert_eq!(a.rebuffer_s, b.rebuffer_s);
            assert_eq!(a.fetched_kb, b.fetched_kb);
            assert_eq!(a.energy.total().value(), b.energy.total().value());
            assert_eq!(a.idle_slots, b.idle_slots);
        }
        assert_eq!(straight.power_series_j, resumed.power_series_j);
        assert_eq!(straight.fairness_series, resumed.fairness_series);
    }

    /// A rejected checkpoint (wrong user count) surfaces a typed restore
    /// error instead of panicking.
    #[test]
    fn resume_rejects_wrong_shape() {
        let paused = small_engine(
            2,
            3_000.0,
            400.0,
            -80.0,
            700.0,
            120,
            Box::new(DefaultMax::new()),
        )
        .run_core(
            &mut NullRecorder,
            &NoFaults,
            None,
            CkptMode::PauseAt { slot: 5 },
        )
        .expect("pause run");
        let ck = match paused {
            RunOutcome::Paused(ck) => ck,
            RunOutcome::Done(_) => unreachable!("must pause"),
        };
        let err = small_engine(
            3,
            3_000.0,
            400.0,
            -80.0,
            700.0,
            120,
            Box::new(DefaultMax::new()),
        )
        .resume_with(&mut NullRecorder, &NoFaults, &ck)
        .expect_err("shape mismatch must be rejected");
        assert!(err.to_string().contains("restore"));
    }

    /// The sharded runner reproduces the serial loop bit-for-bit — results
    /// *and* full trace bytes — at every width, including the degenerate
    /// width-1 clamp (the shard_properties suite widens this to churny
    /// open-system scenarios).
    #[test]
    fn sharded_matches_serial_bitwise() {
        // Scheduler-latency quantiles are wall-clock measurements; zero
        // them so the equality below covers every deterministic field.
        fn scrub(mut r: SimResult) -> SimResult {
            if let Some(t) = r.telemetry.as_mut() {
                t.sched_ns_p50 = 0;
                t.sched_ns_p95 = 0;
                t.sched_ns_p99 = 0;
                t.sched_ns_max = 0;
            }
            r
        }
        let mk = || {
            small_engine(
                5,
                4_000.0,
                400.0,
                -80.0,
                900.0,
                200,
                Box::new(DefaultMax::new()),
            )
        };
        let mut rec = TraceRecorder::new().with_live_counts();
        let serial = scrub(mk().run_with(&mut rec));
        let serial_trace = rec.into_trace("DefaultMax").to_jsonl();
        let pool = crate::pool::WorkerPool::new(3);
        for shards in [1usize, 2, 4] {
            let mut rec = TraceRecorder::new().with_live_counts();
            let sharded = scrub(mk().run_sharded_on(&pool, shards, &mut rec));
            assert_eq!(serial, sharded, "width {shards}");
            assert_eq!(
                serial_trace,
                rec.into_trace("DefaultMax").to_jsonl(),
                "trace bytes at width {shards}"
            );
        }
    }
}
