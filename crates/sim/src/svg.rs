//! SVG line charts: render a [`crate::report::Table`] as a
//! self-contained SVG figure (`repro --svg` writes one per figure next to
//! the CSV). No external dependencies — the markup is assembled directly.
//!
//! Layout: the first column is the x-axis, every further column a polyline
//! series with a color from a fixed palette, a legend at the top right,
//! and min/max tick labels on both axes. This is deliberately a plotting
//! *utility*, not a plotting *library*: enough to eyeball every figure the
//! harness produces.

use crate::report::Table;
use std::fmt::Write as _;

/// Series colors (dark-on-white friendly).
const COLORS: &[&str] = &[
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#e377c2", "#17becf",
];

const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 30.0;
const MARGIN_B: f64 = 45.0;

/// Render `table` as an SVG document of `width`×`height` pixels with the
/// given title. Returns an empty string when there is nothing to draw
/// (fewer than two rows or no series).
pub fn svg_chart(table: &Table, title: &str, width: u32, height: u32) -> String {
    let n_series = table.columns.len().saturating_sub(1);
    if table.rows.len() < 2 || n_series == 0 {
        return String::new();
    }
    let w = width as f64;
    let h = height as f64;
    let plot_w = w - MARGIN_L - MARGIN_R;
    let plot_h = h - MARGIN_T - MARGIN_B;
    if plot_w < 10.0 || plot_h < 10.0 {
        return String::new();
    }

    let xs: Vec<f64> = table.rows.iter().map(|r| r[0]).collect();
    let (x_lo, x_hi) = bounds(&xs);
    let mut y_lo = f64::INFINITY;
    let mut y_hi = f64::NEG_INFINITY;
    for row in &table.rows {
        for v in &row[1..] {
            y_lo = y_lo.min(*v);
            y_hi = y_hi.max(*v);
        }
    }
    if !(y_lo.is_finite() && y_hi.is_finite()) {
        return String::new();
    }
    // Pad a flat series so it draws mid-plot instead of on the border.
    if (y_hi - y_lo).abs() < f64::MIN_POSITIVE {
        y_lo -= 1.0;
        y_hi += 1.0;
    }
    let x_span = (x_hi - x_lo).max(f64::MIN_POSITIVE);
    let y_span = y_hi - y_lo;

    let px = |x: f64| MARGIN_L + (x - x_lo) / x_span * plot_w;
    let py = |y: f64| MARGIN_T + (1.0 - (y - y_lo) / y_span) * plot_h;

    let mut svg = String::new();
    let _ = write!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"##
    );
    let _ = write!(
        svg,
        r##"<rect width="{width}" height="{height}" fill="white"/>"##
    );
    // Title.
    let _ = write!(
        svg,
        r##"<text x="{:.1}" y="18" font-family="sans-serif" font-size="13" fill="#222">{}</text>"##,
        MARGIN_L,
        escape(title)
    );
    // Plot frame.
    let _ = write!(
        svg,
        r##"<rect x="{MARGIN_L:.1}" y="{MARGIN_T:.1}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="#999"/>"##
    );
    // Axis tick labels (min/max on each axis).
    let _ = write!(
        svg,
        r##"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="11" fill="#444" text-anchor="end">{}</text>"##,
        MARGIN_L - 5.0,
        MARGIN_T + 10.0,
        fmt_tick(y_hi)
    );
    let _ = write!(
        svg,
        r##"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="11" fill="#444" text-anchor="end">{}</text>"##,
        MARGIN_L - 5.0,
        MARGIN_T + plot_h,
        fmt_tick(y_lo)
    );
    let _ = write!(
        svg,
        r##"<text x="{MARGIN_L:.1}" y="{:.1}" font-family="sans-serif" font-size="11" fill="#444">{}</text>"##,
        h - MARGIN_B + 18.0,
        fmt_tick(x_lo)
    );
    let _ = write!(
        svg,
        r##"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="11" fill="#444" text-anchor="end">{}</text>"##,
        MARGIN_L + plot_w,
        h - MARGIN_B + 18.0,
        fmt_tick(x_hi)
    );
    // X-axis label from the first column name.
    let _ = write!(
        svg,
        r##"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="12" fill="#222" text-anchor="middle">{}</text>"##,
        MARGIN_L + plot_w / 2.0,
        h - 8.0,
        escape(&table.columns[0])
    );

    // Series polylines + point markers.
    for s in 0..n_series {
        let color = COLORS[s % COLORS.len()];
        let mut points = String::new();
        for row in &table.rows {
            let _ = write!(points, "{:.2},{:.2} ", px(row[0]), py(row[1 + s]));
        }
        let _ = write!(
            svg,
            r##"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"##,
            points.trim_end()
        );
        for row in &table.rows {
            let _ = write!(
                svg,
                r##"<circle cx="{:.2}" cy="{:.2}" r="2.6" fill="{color}"/>"##,
                px(row[0]),
                py(row[1 + s])
            );
        }
        // Legend entry.
        let ly = MARGIN_T + 14.0 + 16.0 * s as f64;
        let lx = MARGIN_L + plot_w - 150.0;
        let _ = write!(
            svg,
            r##"<line x1="{lx:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/>"##,
            lx + 18.0
        );
        let _ = write!(
            svg,
            r##"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="11" fill="#222">{}</text>"##,
            lx + 24.0,
            ly + 4.0,
            escape(&table.columns[1 + s])
        );
    }

    svg.push_str("</svg>");
    svg
}

fn bounds(values: &[f64]) -> (f64, f64) {
    values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
            (lo.min(*v), hi.max(*v))
        })
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["users", "default", "rtma"]);
        t.push(vec![20.0, 80.0, 2.0]);
        t.push(vec![30.0, 150.0, 5.0]);
        t.push(vec![40.0, 220.0, 11.0]);
        t
    }

    #[test]
    fn produces_wellformed_svg() {
        let svg = svg_chart(&sample(), "Fig 5a", 640, 360);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2, "one per series");
        assert_eq!(svg.matches("<circle").count(), 6, "one marker per point");
        assert!(svg.contains("Fig 5a"));
        assert!(svg.contains("default"));
        assert!(svg.contains("rtma"));
        assert!(svg.contains("users"), "x-axis label");
    }

    #[test]
    fn escapes_markup_in_labels() {
        let mut t = Table::new(vec!["x", "a<b&\"c\">"]);
        t.push(vec![0.0, 1.0]);
        t.push(vec![1.0, 2.0]);
        let svg = svg_chart(&t, "T<itle>", 400, 300);
        assert!(!svg.contains("a<b"), "raw angle bracket must not survive");
        assert!(svg.contains("a&lt;b&amp;"));
        assert!(svg.contains("T&lt;itle&gt;"));
    }

    #[test]
    fn degenerate_inputs_yield_empty() {
        let empty = Table::new(vec!["x", "y"]);
        assert!(svg_chart(&empty, "t", 640, 360).is_empty());
        assert!(svg_chart(&sample(), "t", 40, 30).is_empty(), "too small");
    }

    #[test]
    fn flat_series_padded_not_panicking() {
        let mut t = Table::new(vec!["x", "flat"]);
        t.push(vec![0.0, 7.0]);
        t.push(vec![1.0, 7.0]);
        let svg = svg_chart(&t, "flat", 400, 300);
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn coordinates_inside_viewbox() {
        let svg = svg_chart(&sample(), "t", 640, 360);
        // Every circle coordinate must be inside the canvas.
        for cap in svg.split("<circle ").skip(1) {
            let cx: f64 = cap
                .split("cx=\"")
                .nth(1)
                .unwrap()
                .split('"')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            let cy: f64 = cap
                .split("cy=\"")
                .nth(1)
                .unwrap()
                .split('"')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!((0.0..=640.0).contains(&cx));
            assert!((0.0..=360.0).contains(&cy));
        }
    }
}
